"""Fig 5 / Lesson 5: Legion's polling thread — communicators vs endpoints.

The paper: "Legion's polling thread processes events 1.63x slower with
communicators than with endpoints." The bench sweeps the task-thread count
(= communicator count the polling thread must iterate over) and reports
the polling thread's cost per processed event.
"""

from _common import bench_once, ratio

from repro.apps.legion import LegionConfig, run_legion
from repro.bench import Table, write_results

THREADS = (4, 8, 12, 16)


def _run(mech, nthreads):
    # Keep the aggregate event rate at the polling thread constant across
    # thread counts (non-saturated regime, as measured in the paper).
    return run_legion(LegionConfig(
        num_nodes=3, task_threads=nthreads, msgs_per_thread=10,
        mechanism=mech, task_work=1.25e-6 * nthreads * 2))


def test_fig5_polling(benchmark) -> None:
    """Regenerate Fig 5: polling-thread cost per event by mechanism."""
    rows = {}
    for n in THREADS:
        rows[n] = {m: _run(m, n)
                   for m in ("original", "communicators", "endpoints")}

    table = Table("Fig 5: polling-thread cost per event (ns)",
                  ["task threads", "original", "communicators", "endpoints",
                   "comm/ep", "probes/evt comm", "probes/evt ep"],
                  widths=[13, 10, 14, 10, 8, 16, 14])
    for n, r in rows.items():
        table.add(n,
                  f"{r['original'].polling_cost_per_event * 1e9:.0f}",
                  f"{r['communicators'].polling_cost_per_event * 1e9:.0f}",
                  f"{r['endpoints'].polling_cost_per_event * 1e9:.0f}",
                  f"{ratio(r['communicators'].polling_cost_per_event, r['endpoints'].polling_cost_per_event):.2f}x",
                  f"{r['communicators'].probes_per_event:.1f}",
                  f"{r['endpoints'].probes_per_event:.1f}")
    path = write_results("fig5_polling", table.render())
    print(table.render())
    print(f"[written to {path}]")

    assert all(r.correct for byn in rows.values() for r in byn.values())
    ratios = [ratio(rows[n]["communicators"].polling_cost_per_event,
                    rows[n]["endpoints"].polling_cost_per_event)
              for n in THREADS]
    # Paper's 1.63x sits inside our observed band at moderate thread
    # counts, and the penalty grows with the communicator count.
    assert any(1.3 < x < 2.2 for x in ratios)
    assert ratios[-1] > ratios[0]
    # The iteration is visible in raw probe counts too.
    for n in THREADS:
        assert rows[n]["communicators"].probes_per_event \
            > rows[n]["endpoints"].probes_per_event

    benchmark.extra_info["comm_over_ep"] = [round(x, 2) for x in ratios]
    bench_once(benchmark, lambda: _run("endpoints", 8))
