"""Ablation (Lesson 14): partitioned shared-request synchronization, and
how far double buffering goes.

"Application developers could use multiple partitioned operations (e.g.,
double buffering) to dampen the overhead resulting from the semantic
limitation, but they cannot eliminate them in a manner like the other two
designs can."

The bench streams C cycles of a T-partition message from one node to
another:

- ``partitioned B=1`` — one request: every cycle ends in the
  single-thread Waitall+restart + barrier;
- ``partitioned B=2`` — double buffering: the wait for a buffer happens
  one cycle behind, overlapping communication with the next cycle;
- ``endpoints`` — T fully independent per-thread sends: no shared state
  at all (the upper bound).

Reported: time per cycle and the contention on the shared request lock.
"""

import numpy as np
from _common import bench_once, ratio

from repro.bench import Table, write_results
from repro.mpi.endpoints import comm_create_endpoints
from repro.mpi.partitioned import precv_init, psend_init
from repro.runtime import World
from repro.sim.sync import Barrier

T = 8            # threads / partitions
COUNT = 256      # elements per partition
CYCLES = 12


def _run_partitioned(buffers: int):
    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=T)
    stats = {}

    def sender(proc):
        buf = np.zeros(T * COUNT)
        reqs = [psend_init(proc.comm_world, buf, T, COUNT, dest=1, tag=b)
                for b in range(buffers)]
        for r in reqs:
            yield from r.start()
        barrier = Barrier(proc.sim, T)

        def thread(tid):
            for c in range(CYCLES):
                b = c % buffers
                if c >= buffers:
                    # reuse of buffer b: it must have completed cycle c-B
                    yield from barrier.wait()
                    if tid == 0:
                        yield from reqs[b].wait()
                        yield from reqs[b].start()
                    yield from barrier.wait()
                yield from reqs[b].pready(tid)

        threads = [proc.spawn(thread(tid)) for tid in range(T)]
        yield proc.sim.all_of(threads)
        for b in range(min(buffers, CYCLES)):
            yield from reqs[b].wait()
        stats["lock"] = sum(r.shared_lock.stats.contended_acquisitions
                            for r in reqs)
        return proc.sim.now

    def receiver(proc):
        buf = np.zeros(T * COUNT)
        reqs = [precv_init(proc.comm_world, buf, T, COUNT, source=0, tag=b)
                for b in range(buffers)]
        for r in reqs:
            yield from r.start()
        done = 0
        c = 0
        while done < CYCLES:
            b = c % buffers
            yield from reqs[b].wait()
            done += 1
            c += 1
            if done + buffers - 1 < CYCLES:
                yield from reqs[b].start()
        return proc.sim.now

    tasks = [world.procs[0].spawn(sender(world.procs[0])),
             world.procs[1].spawn(receiver(world.procs[1]))]
    ends = world.run_all(tasks, max_steps=None)
    return max(ends) / CYCLES, stats["lock"]


def _run_endpoints():
    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=T)

    def node(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, T)
        is_sender = proc.rank == 0

        def thread(ep, tid):
            peer = (ep.rank + T) % (2 * T)
            data = np.zeros(COUNT)
            for c in range(CYCLES):
                if is_sender:
                    req = yield from ep.Isend(data, peer, tag=0)
                else:
                    req = yield from ep.Irecv(data, peer, tag=0)
                yield from req.wait()

        threads = [proc.spawn(thread(ep, i)) for i, ep in enumerate(eps)]
        yield proc.sim.all_of(threads)
        return proc.sim.now

    tasks = [world.procs[r].spawn(node(world.procs[r])) for r in range(2)]
    return max(world.run_all(tasks, max_steps=None)) / CYCLES


def test_ablation_partitioned(benchmark) -> None:
    """Partitioned-sync ablation: buffering depth vs full independence."""
    t1, lock1 = _run_partitioned(1)
    t2, lock2 = _run_partitioned(2)
    t3, lock3 = _run_partitioned(3)
    tep = _run_endpoints()

    table = Table("Lesson 14: partitioned sync overhead per cycle (us)",
                  ["variant", "time/cycle", "vs endpoints",
                   "contended lock acq."],
                  widths=[18, 11, 13, 20])
    for name, t, lk in (("partitioned B=1", t1, lock1),
                        ("partitioned B=2", t2, lock2),
                        ("partitioned B=3", t3, lock3),
                        ("endpoints", tep, 0)):
        table.add(name, f"{t * 1e6:.2f}", f"{ratio(t, tep):.2f}x", lk)
    path = write_results("ablation_partitioned", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # Double buffering dampens the synchronization overhead...
    assert t2 < t1
    # ...but none of the buffered variants reach endpoint independence.
    for t in (t1, t2, t3):
        assert t > 1.1 * tep
    # Threads really do contend on the shared request (Lesson 14).
    assert lock1 > 0

    benchmark.extra_info["per_cycle_us"] = {
        "B1": round(t1 * 1e6, 2), "B2": round(t2 * 1e6, 2),
        "B3": round(t3 * 1e6, 2), "endpoints": round(tep * 1e6, 2)}
    bench_once(benchmark, lambda: _run_partitioned(2))
