"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper: it
sweeps the experiment, writes the series to ``benchmarks/results/<id>.txt``,
asserts the paper's qualitative shape, and times one representative run
through pytest-benchmark (wall-clock of the simulator itself).

Sweep points are independent simulations, so modules can fan them across
worker processes with :func:`sweep_points`; set ``REPRO_BENCH_JOBS=N`` to
opt in (the default stays serial so per-point host timings are clean).
Simulated results are identical either way.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.bench import default_jobs, run_points


def bench_once(benchmark, fn: Callable[[], Any]) -> None:
    """Time ``fn`` once per round with pytest-benchmark (2 rounds)."""
    benchmark.pedantic(fn, rounds=2, iterations=1, warmup_rounds=0)


def ratio(a: float, b: float) -> float:
    return a / b if b else float("inf")


def sweep_points(fn: Callable[..., Any], points: Sequence[dict],
                 jobs: int | None = None) -> list[Any]:
    """Run independent sweep points, honouring ``REPRO_BENCH_JOBS``.

    Returns results in point order (deterministic regardless of worker
    count). ``fn`` must be a module-level callable so worker processes can
    receive it.
    """
    if jobs is None:
        jobs = default_jobs()
    return run_points(fn, points, jobs=jobs)
