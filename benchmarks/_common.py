"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper: it
sweeps the experiment, writes the series to ``benchmarks/results/<id>.txt``,
asserts the paper's qualitative shape, and times one representative run
through pytest-benchmark (wall-clock of the simulator itself).
"""

from __future__ import annotations


def bench_once(benchmark, fn):
    """Time ``fn`` once per round with pytest-benchmark (2 rounds)."""
    benchmark.pedantic(fn, rounds=2, iterations=1, warmup_rounds=0)


def ratio(a: float, b: float) -> float:
    return a / b if b else float("inf")
