"""Fig 6 / Lesson 16: NWChem get-compute-update over RMA.

Windows constrain atomic parallelism: with default ordering every
accumulate serializes on the window's channel; relaxing
``accumulate_ordering`` lets the library hash over channels (collisions);
endpoints within the window give parallelism *and* atomicity.
"""

from _common import bench_once, ratio

from repro.apps.nwchem import NwchemConfig, run_nwchem
from repro.bench import Table, write_results

MECHS = ("window", "window-relaxed", "endpoints")
THREADS = (4, 8, 16)


def _run(mech, nthreads):
    return run_nwchem(NwchemConfig(
        num_nodes=3, threads_per_proc=nthreads, tiles_per_proc=16,
        tile_dim=12, tasks_per_thread=6, mechanism=mech))


def test_fig6_rma(benchmark) -> None:
    """Regenerate Fig 6: RMA get-compute-update wall time by mechanism."""
    rows = {(m, n): _run(m, n) for m in MECHS for n in THREADS}

    table = Table("Fig 6: get-compute-update wall time (us)",
                  ["threads"] + list(MECHS)
                  + ["win/ep", "imbalance rel", "imbalance ep"],
                  widths=[8, 12, 15, 12, 8, 14, 13])
    for n in THREADS:
        table.add(n,
                  *[f"{rows[(m, n)].wall_time * 1e6:.1f}" for m in MECHS],
                  f"{ratio(rows[('window', n)].wall_time, rows[('endpoints', n)].wall_time):.2f}x",
                  f"{rows[('window-relaxed', n)].channel_imbalance:.2f}",
                  f"{rows[('endpoints', n)].channel_imbalance:.2f}")
    path = write_results("fig6_rma", table.render())
    print(table.render())
    print(f"[written to {path}]")

    assert all(r.correct for r in rows.values())
    for n in THREADS:
        # Serialized window loses to endpoints; the gap grows with threads.
        assert rows[("window", n)].wall_time \
            > rows[("endpoints", n)].wall_time
        # Relaxed hashing sits between serialized and endpoint-perfect.
        assert rows[("window-relaxed", n)].wall_time \
            <= rows[("window", n)].wall_time
        assert rows[("endpoints", n)].wall_time \
            <= rows[("window-relaxed", n)].wall_time * 1.1
    assert ratio(rows[("window", 16)].wall_time,
                 rows[("endpoints", 16)].wall_time) \
        > ratio(rows[("window", 4)].wall_time,
                rows[("endpoints", 4)].wall_time)

    benchmark.extra_info["win_over_ep"] = {
        n: round(ratio(rows[("window", n)].wall_time,
                       rows[("endpoints", n)].wall_time), 2)
        for n in THREADS}
    bench_once(benchmark, lambda: _run("endpoints", 8))
