"""Table I: summary of design choices, plus the usability accounting.

The scope matrix is generated from the capability metadata in
``repro.analysis.scope`` and cross-checked against the *behaviour* of the
implementation (partitioned receives reject wildcards; endpoint windows
spread atomics; the hierarchical collective exists for endpoints).
"""

import numpy as np
import pytest
from _common import bench_once

from repro.analysis import (
    render_table,
    render_usability,
    scope_matrix,
    stencil_usability,
)
from repro.bench import write_results
from repro.errors import MpiUsageError
from repro.mapping import STENCIL_2D_5PT, StencilGeometry
from repro.mpi import ANY_TAG
from repro.mpi.partitioned import precv_init
from repro.runtime import World


def test_table1_scope(benchmark) -> None:
    """Table I: mechanism scope matrix, checked behaviourally."""
    matrix = scope_matrix()
    text = render_table()
    geom = StencilGeometry((3, 3), (3, 3), STENCIL_2D_5PT)
    usability = render_usability(stencil_usability(geom))
    out = ("Table I: design choices to expose logically parallel "
           "communication\n\n" + text
           + "\n\nUsability accounting (2D 5-pt stencil, 3x3 threads):\n"
           + usability)
    path = write_results("table1_scope", out)
    print(out)
    print(f"[written to {path}]")

    # --- Table I's structure ---------------------------------------------
    # Endpoints cover every operation type with one concept.
    for op in ("point-to-point", "rma", "collective"):
        assert matrix[(op, "endpoints")].supported
    # Partitioned RMA/collectives are TBD in MPI 4.0.
    assert matrix[("rma", "partitioned")].status == "tbd"
    assert matrix[("collective", "partitioned")].status == "tbd"
    # Existing-mechanism collectives need user-side work (Lesson 18).
    assert matrix[("collective", "existing")].user_side_work

    # --- behavioural cross-checks -----------------------------------------
    # Partitioned wildcard polling really is rejected by the library.
    world = World(num_nodes=2, procs_per_node=1)
    with pytest.raises(MpiUsageError):
        precv_init(world.comm_world(0), np.zeros(4), 2, 2, source=0,
                   tag=ANY_TAG)
    assert not matrix[("wildcard-polling", "partitioned")].supported

    bench_once(benchmark, lambda: render_table())
