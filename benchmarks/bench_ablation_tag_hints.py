"""Ablation (Lessons 7-9): dissecting the tag-hint bundle.

Message rate with the hint bundle progressively enabled:

1. no hints ("original") — one VCI;
2. ``allow_overtaking`` only — sends spread, receives funnel;
3. no-wildcard assertions with the default *hash* policy — both sides
   spread, but hash collisions cost throughput (Lesson 7: "at the mercy
   of how MPICH hashes the tags");
4. the full Listing 2 one-to-one bundle — optimal, but built from four
   implementation-specific hints (the portability cost of Lesson 8).
"""

from _common import bench_once, ratio

from repro.bench import MsgRateConfig, Table, run_msgrate, write_results

STAGES = ("threads-original", "threads-overtaking", "threads-tags-hash",
          "threads-tags")
LABELS = {"threads-original": "no hints",
          "threads-overtaking": "+allow_overtaking",
          "threads-tags-hash": "+no-wildcards (hash)",
          "threads-tags": "full Listing 2 (1:1)"}
CORES = (8, 16)


def test_ablation_tag_hints(benchmark) -> None:
    """Tag-hint ablation: each Listing 2 ingredient's contribution."""
    rates = {}
    for stage in STAGES:
        for cores in CORES:
            r = run_msgrate(MsgRateConfig(mode=stage, cores=cores,
                                          msgs_per_core=64))
            rates[(stage, cores)] = r.rate

    table = Table("Tag-hint ablation: message rate (M msg/s)",
                  ["hint stage"] + [f"{c} cores" for c in CORES],
                  widths=[22, 10, 10])
    for stage in STAGES:
        table.add(LABELS[stage],
                  *[f"{rates[(stage, c)] / 1e6:.2f}" for c in CORES])
    path = write_results("ablation_tag_hints", table.render())
    print(table.render())
    print(f"[written to {path}]")

    for c in CORES:
        # The full bundle dominates the hash policy, which dominates the
        # single-channel baseline.
        assert rates[("threads-tags", c)] > 1.3 * rates[("threads-tags-hash", c)]
        assert rates[("threads-tags-hash", c)] > 1.5 * rates[("threads-original", c)]
        # Overtaking alone does NOT deliver receive-side parallelism: the
        # rate stays within ~2x of the baseline, far from the full bundle
        # (Section II-A: relaxed sends, unrelaxed receives).
        assert rates[("threads-overtaking", c)] \
            < 0.5 * rates[("threads-tags", c)]

    benchmark.extra_info["rate_Mmsgs_16c"] = {
        LABELS[s]: round(rates[(s, 16)] / 1e6, 2) for s in STAGES}
    bench_once(benchmark, lambda: run_msgrate(
        MsgRateConfig(mode="threads-tags", cores=8, msgs_per_core=32)))
