"""Lesson 3: communicator resource requirements and the Omni-Path effect.

Two parts:

1. the paper's closed-form arithmetic — communicators required vs channels
   needed for 3D 27-pt stencils over thread-grid sizes, reproducing the
   headline 808 vs 56 (14.4x) for [4,4,4];
2. a simulation of the consequence: with Omni-Path's 160 hardware contexts
   (and a scarcer variant), the communicator mechanism's VCIs oversubscribe
   the NIC while endpoints use only what the pattern needs — the paper
   reports hypre's communication 2x slower with communicators there.
"""

from _common import bench_once, ratio

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import Table, write_results
from repro.mapping import (
    communicator_overhead_ratio_3d27,
    communicators_required_3d27,
    min_channels_3d27,
)
from repro.netsim import NetworkConfig

GRIDS = ((2, 2, 2), (3, 3, 3), (4, 4, 4), (6, 6, 6), (8, 8, 8))


def _sim(mech, net, comm_map="mirrored"):
    # The paper's exact scenario: a 3D 27-pt stencil with a [4,4,4] thread
    # grid per process (64-core node) — 800+ communicators vs 56-64
    # endpoint channels on Omni-Path's 160 hardware contexts.
    cfg = StencilConfig(proc_grid=(2, 2, 2), thread_grid=(4, 4, 4),
                        pnx=3, pny=3, pnz=3, stencil_points=27, iters=2,
                        mechanism=mech, comm_map=comm_map)
    return run_stencil(cfg, net=net, max_vcis_per_proc=1024)


def test_lesson3_closed_form(benchmark) -> None:
    """Lesson 3: closed-form communicator vs channel counts."""
    table = Table("Lesson 3: communicators vs channels, 3D 27-pt stencil",
                  ["thread grid", "communicators", "channels", "ratio"],
                  widths=[12, 14, 10, 8])
    for g in GRIDS:
        table.add("x".join(map(str, g)), communicators_required_3d27(*g),
                  min_channels_3d27(*g),
                  f"{communicator_overhead_ratio_3d27(*g):.1f}x")
    path = write_results("lesson3_closed_form", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # The paper's exact numbers.
    assert communicators_required_3d27(4, 4, 4) == 808
    assert min_channels_3d27(4, 4, 4) == 56
    assert 14.4 < communicator_overhead_ratio_3d27(4, 4, 4) < 14.5
    # The overhead never goes away as grids grow.
    for g in GRIDS:
        assert communicator_overhead_ratio_3d27(*g) > 5

    bench_once(benchmark, lambda: [communicators_required_3d27(*g)
                                   for g in GRIDS])


def test_lesson3_hardware_context_pressure(benchmark) -> None:
    """Lesson 3: hardware-context oversubscription slows the halo."""
    # Omni-Path's 160 contexts sit between the 64 endpoints and the 868
    # communicators the mirrored map commits: exactly Lesson 3's squeeze.
    nets = {"abundant": NetworkConfig.abundant(),
            "omnipath-160": NetworkConfig.omnipath(),
            "contexts-64": NetworkConfig.scarce(64)}
    rows = {}
    for name, net in nets.items():
        r_comm = _sim("communicators", net)
        r_ep = _sim("endpoints", net)
        rows[name] = (r_comm, r_ep)

    table = Table("Lesson 3: halo time (us) under NIC context pressure "
                  "(2x2x2 procs x [4,4,4] threads, 3D 27-pt)",
                  ["contexts", "comm halo", "ep halo", "comm/ep",
                   "comm oversub", "ep oversub"],
                  widths=[14, 11, 11, 9, 13, 11])
    for name, (rc, re_) in rows.items():
        table.add(name, f"{rc.halo_time * 1e6:.1f}",
                  f"{re_.halo_time * 1e6:.1f}",
                  f"{ratio(rc.halo_time, re_.halo_time):.2f}x",
                  f"{rc.nic_oversubscription:.1f}",
                  f"{re_.nic_oversubscription:.1f}")
    path = write_results("lesson3_context_pressure", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # Correctness everywhere.
    assert all(r.correct for pair in rows.values() for r in pair)
    # Scarce contexts punish the communicator mechanism hardest (the
    # paper: >2x on Omni-Path for hypre).
    scarce_gap = ratio(rows["omnipath-160"][0].halo_time,
                       rows["omnipath-160"][1].halo_time)
    abundant_gap = ratio(rows["abundant"][0].halo_time,
                         rows["abundant"][1].halo_time)
    assert scarce_gap > abundant_gap
    # The paper: hypre's communication is >2x slower with communicators
    # than endpoints on Omni-Path.
    assert scarce_gap > 2.0
    # Endpoints never oversubscribe more than communicators.
    for rc, re_ in rows.values():
        assert re_.nic_oversubscription <= rc.nic_oversubscription

    benchmark.extra_info["comm_over_ep"] = {
        name: round(ratio(rc.halo_time, re_.halo_time), 2)
        for name, (rc, re_) in rows.items()}
    bench_once(benchmark,
               lambda: _sim("endpoints", NetworkConfig.omnipath()))
