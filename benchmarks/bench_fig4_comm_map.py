"""Fig 4 + Lessons 1-2: communicator maps for the 2D 9-point stencil.

Regenerates the content of Fig 4 quantitatively: for the naive (Lesson 2),
mirrored (Listing 1) and corner-optimized (Fig 4) maps, the number of
communicators, the parallelism each exposes, and the simulated halo time
when the maps actually drive the exchange.
"""

from _common import bench_once, ratio

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import Table, write_results
from repro.mapping import (
    STENCIL_2D_9PT,
    CornerOptimizedCommMap,
    MirroredCommMap,
    NaiveCommMap,
    StencilGeometry,
    analyze_map,
)

MAPS = (("naive", NaiveCommMap), ("mirrored", MirroredCommMap),
        ("corner", CornerOptimizedCommMap))


def _simulate(map_kind):
    cfg = StencilConfig(proc_grid=(3, 3), thread_grid=(3, 3), pnx=5, pny=5,
                        stencil_points=9, iters=3, mechanism="communicators",
                        comm_map=map_kind)
    return run_stencil(cfg, max_vcis_per_proc=128)


def test_fig4_comm_map(benchmark) -> None:
    """Regenerate Fig 4: communicator maps vs exposed parallelism."""
    geom = StencilGeometry((3, 3), (3, 3), STENCIL_2D_9PT)
    reports = {name: analyze_map(cls(geom)) for name, cls in MAPS}
    sims = {name: _simulate(name) for name, _ in MAPS}

    table = Table("Fig 4: communicator maps, 3x3 procs x 3x3 threads, 9-pt",
                  ["map", "comms", "par.eff", "max-share", "halo(us)",
                   "correct"],
                  widths=[10, 8, 9, 10, 10, 8])
    for name, _ in MAPS:
        r, s = reports[name], sims[name]
        table.add(name, r.num_communicators,
                  f"{r.min_parallel_efficiency:.2f}",
                  r.max_threads_per_label,
                  f"{s.halo_time * 1e6:.1f}", s.correct)
    path = write_results("fig4_comm_map", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # Lesson 1/Fig 4: the mirrored map exposes ALL the parallelism...
    assert reports["mirrored"].min_parallel_efficiency == 1.0
    # ...at a high communicator cost (Lesson 3's trend).
    assert reports["mirrored"].num_communicators \
        > 4 * reports["naive"].num_communicators
    # Lesson 2: the intuitive map loses at least half the parallelism.
    assert reports["naive"].min_parallel_efficiency <= 0.5
    # Fig 4's corner optimization reduces communicators vs mirrored.
    assert reports["corner"].num_communicators \
        < reports["mirrored"].num_communicators
    # All variants remain matching-correct end to end.
    assert all(s.correct for s in sims.values())

    benchmark.extra_info["comms"] = {
        name: reports[name].num_communicators for name, _ in MAPS}
    bench_once(benchmark, lambda: _simulate("mirrored"))
