"""Fig 1(b): stencil application (hypre/Uintah pattern) — original vs
logically parallel MPI+threads.

Paper: on KNL + Omni-Path, Uintah's hypre solve gains from logically
parallel communication. The bench runs the 2D 9-pt halo exchange with
increasing thread counts and reports halo-exchange time per mechanism.
"""

from _common import bench_once, ratio

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import Table, write_results
from repro.netsim import NetworkConfig

GRIDS = ((2, 2), (3, 3), (4, 4))          # thread grids: 4, 9, 16 threads
MECHS = ("original", "tags", "communicators", "endpoints")


def _run(mech, tg):
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=tg, pnx=6, pny=6,
                        stencil_points=9, iters=4, mechanism=mech)
    return run_stencil(cfg, net=NetworkConfig.omnipath())


def test_fig1b_stencil(benchmark) -> None:
    """Regenerate Fig 1(b) and assert the halo-time ordering."""
    results = {(m, tg): _run(m, tg) for m in MECHS for tg in GRIDS}

    table = Table("Fig 1(b): 2D 9-pt halo time (us) vs threads/process",
                  ["threads"] + list(MECHS) + ["orig/ep"],
                  widths=[8] + [15] * (len(MECHS) + 1))
    for tg in GRIDS:
        halo = {m: results[(m, tg)].halo_time for m in MECHS}
        table.add(tg[0] * tg[1],
                  *[f"{halo[m] * 1e6:.1f}" for m in MECHS],
                  f"{ratio(halo['original'], halo['endpoints']):.2f}x")
    path = write_results("fig1b_stencil", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # Shape: every run is data-correct; the original mode loses to every
    # logically-parallel mechanism, and the gap grows with thread count.
    assert all(r.correct for r in results.values())
    gaps = [ratio(results[("original", tg)].halo_time,
                  results[("endpoints", tg)].halo_time) for tg in GRIDS]
    assert gaps[-1] > 1.3
    assert gaps[-1] > gaps[0]
    # Existing mechanisms with hints keep up with endpoints (the paper's
    # companion quantitative result).
    for tg in GRIDS:
        assert ratio(results[("tags", tg)].halo_time,
                     results[("endpoints", tg)].halo_time) < 1.3

    benchmark.extra_info["orig_over_ep_16t"] = round(gaps[-1], 2)
    bench_once(benchmark, lambda: _run("endpoints", (3, 3)))
