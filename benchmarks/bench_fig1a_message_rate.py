"""Fig 1(a): message rate vs cores — MPI everywhere vs MPI+threads.

Paper series (Skylake + Omni-Path): "MPI everywhere" and the logically
parallel MPI+threads variants scale together; "MPI+threads (Original)"
stays flat. This bench regenerates the same series on the simulated
Omni-Path-like fabric and asserts the shape.
"""

from _common import bench_once, ratio, sweep_points

from repro.bench import MsgRateConfig, Table, run_msgrate, write_results
from repro.netsim import NetworkConfig

CORES = (1, 2, 4, 8, 16, 32, 64)
MODES = ("everywhere", "threads-original", "threads-tags",
         "threads-comms", "threads-endpoints")


def _point(mode, cores):
    r = run_msgrate(MsgRateConfig(mode=mode, cores=cores, msgs_per_core=64),
                    net=NetworkConfig.omnipath())
    return r.rate


def _sweep():
    points = [{"mode": m, "cores": c} for m in MODES for c in CORES]
    results = sweep_points(_point, points)
    return {(p["mode"], p["cores"]): rate
            for p, rate in zip(points, results)}


def test_fig1a_message_rate(benchmark) -> None:
    """Regenerate Fig 1(a) and assert the paper's scaling shape."""
    rates = _sweep()

    table = Table("Fig 1(a): aggregate message rate (M msg/s) vs cores",
                  ["cores"] + list(MODES),
                  widths=[6] + [19] * len(MODES))
    for cores in CORES:
        table.add(cores, *[f"{rates[(m, cores)] / 1e6:.2f}" for m in MODES])
    path = write_results("fig1a_message_rate", table.render())
    print(table.render())
    print(f"[written to {path}]")

    # --- the paper's shape ------------------------------------------------
    # 1. MPI everywhere scales with cores.
    assert rates[("everywhere", 32)] > 10 * rates[("everywhere", 1)]
    # 2. The original MPI+threads mode stays flat (< 2x from 1 to 32 cores).
    assert rates[("threads-original", 32)] < 2 * rates[("threads-original", 1)]
    # 3. Tags-with-hints and endpoints match MPI everywhere (within 15%).
    for mode in ("threads-tags", "threads-endpoints"):
        assert abs(ratio(rates[(mode, 32)], rates[("everywhere", 32)]) - 1) \
            < 0.15
    # 4. At scale, logically parallel communication is an order of
    #    magnitude above the original mode.
    assert rates[("threads-endpoints", 32)] > 5 * rates[("threads-original", 32)]
    # 5. The node's aggregate injection ceiling flattens the curve at the
    #    top end (a plateau, not unbounded linear scaling).
    assert rates[("everywhere", 64)] < 1.6 * rates[("everywhere", 32)]

    benchmark.extra_info["rate_Mmsgs"] = {
        f"{m}/{c}": round(rates[(m, c)] / 1e6, 2)
        for m in MODES for c in (1, 32, 64)}
    bench_once(benchmark, lambda: run_msgrate(
        MsgRateConfig(mode="threads-endpoints", cores=8, msgs_per_core=32),
        net=NetworkConfig.omnipath()))
