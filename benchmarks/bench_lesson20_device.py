"""Lesson 20: device-initiated communication.

"Out of the three designs, partitioned operations are best suited for
high-speed device-initiated point-to-point operations" — the serial setup
runs on the CPU before launch, and GPU thread blocks trigger partitions
with lightweight Pready/Parrived. The bench also shows the residual cost
the paper warns about: control still returns to the CPU for MPI_Wait each
step.
"""

from _common import bench_once, ratio

from repro.apps.device import DeviceConfig, DeviceParams, run_device
from repro.bench import Table, write_results

MECHS = ("host-driven", "device-partitioned", "device-mpi")
BLOCKS = (4, 8, 16)


def _run(mech, blocks):
    return run_device(DeviceConfig(mechanism=mech, blocks=blocks,
                                   timesteps=6))


def test_lesson20_device(benchmark) -> None:
    """Lesson 20: device-initiated communication proxy shapes."""
    rows = {(m, b): _run(m, b) for m in MECHS for b in BLOCKS}

    table = Table("Lesson 20: GPU-offload proxy, time per step (us)",
                  ["blocks"] + list(MECHS) + ["host/part", "launches h/p"],
                  widths=[8, 13, 20, 12, 10, 13])
    for b in BLOCKS:
        t = {m: rows[(m, b)].time_per_step for m in MECHS}
        table.add(b, *[f"{t[m] * 1e6:.2f}" for m in MECHS],
                  f"{ratio(t['host-driven'], t['device-partitioned']):.2f}x",
                  f"{rows[('host-driven', b)].kernel_launches}/"
                  f"{rows[('device-partitioned', b)].kernel_launches}")
    path = write_results("lesson20_device", table.render())
    print(table.render())
    print(f"[written to {path}]")

    assert all(r.correct for r in rows.values())
    for b in BLOCKS:
        # Partitioned triggers beat per-step host round trips...
        assert rows[("device-partitioned", b)].time_per_step \
            < rows[("host-driven", b)].time_per_step
        # ...and full device-side MPI pays the matching-engine tax.
        assert rows[("device-mpi", b)].time_per_step \
            > rows[("device-partitioned", b)].time_per_step
        # Persistent kernels: one launch instead of one per step.
        assert rows[("device-partitioned", b)].kernel_launches == 1
        assert rows[("host-driven", b)].kernel_launches == 6

    # The residual host synchronization (MPI_Wait per step) keeps the
    # partitioned variant well above a pure-compute lower bound — the
    # paper's "re-introduce device runtime overheads" caveat.
    p = DeviceParams()
    compute_floor = p.block_compute
    assert rows[("device-partitioned", 8)].time_per_step \
        > compute_floor + p.host_sync

    benchmark.extra_info["host_over_partitioned"] = {
        b: round(ratio(rows[("host-driven", b)].time_per_step,
                       rows[("device-partitioned", b)].time_per_step), 2)
        for b in BLOCKS}
    bench_once(benchmark, lambda: _run("device-partitioned", 8))
