"""Fig 7 / Lessons 18-19: multithreaded collectives (the VASP pattern).

Compares the funneled baseline against the user-driven "existing
mechanisms" approach, one-step endpoints, and the prospective partitioned
collective — over message sizes — and reports the Lesson 19 buffer
duplication.

Also sweeps allreduce algorithm × interconnect topology
(``test_fig7_topology_crossover``): on the flat single-hop fabric the
ring is the large-message winner, but on a ``fat_tree(k=4)`` the same
communicator's ring schedule serializes every step through shared
D-mod-k up/down planes — per-link FIFO queueing the flat fabric cannot
express — and recursive doubling wins instead. One global size
threshold cannot pick the right algorithm on both fabrics; selection
must be per-communicator (``set_coll_algorithm`` / Info hints). See
docs/topology.md and the Fig 7 note in EXPERIMENTS.md.
"""

import numpy as np
from _common import bench_once, ratio

from repro.apps.vasp import VaspConfig, run_vasp
from repro.bench import Table, write_results
from repro.netsim import ClusterSpec
from repro.runtime import World

MECHS = ("funneled", "existing", "endpoints", "partitioned")
SIZES = (1 << 12, 1 << 15, 1 << 18)          # 32 KiB .. 2 MiB of float64


def _run(mech, elems):
    return run_vasp(VaspConfig(num_nodes=4, threads_per_proc=8,
                               elems=elems, repeats=2, mechanism=mech))


def test_fig7_collectives(benchmark) -> None:
    """Regenerate Fig 7: multithreaded allreduce by mechanism."""
    rows = {(m, s): _run(m, s) for m in MECHS for s in SIZES}

    table = Table("Fig 7: multithreaded allreduce time (us) vs size",
                  ["KiB"] + list(MECHS) + ["funneled/existing"],
                  widths=[8] + [12] * len(MECHS) + [18])
    for s in SIZES:
        table.add(s * 8 // 1024,
                  *[f"{rows[(m, s)].time_per_allreduce * 1e6:.1f}"
                    for m in MECHS],
                  f"{ratio(rows[('funneled', s)].time_per_allreduce, rows[('existing', s)].time_per_allreduce):.2f}x")
    dup = Table("Lesson 19: result-buffer bytes per node",
                ["mechanism", "KiB/node"], widths=[14, 10])
    for m in MECHS:
        dup.add(m, rows[(m, SIZES[1])].result_bytes_per_node // 1024)
    text = table.render() + "\n\n" + dup.render()
    path = write_results("fig7_collectives", text)
    print(text)
    print(f"[written to {path}]")

    assert all(r.correct for r in rows.values())
    for s in SIZES:
        # The VASP result: parallel segmented allreduce beats funneled,
        # with the advantage growing with size (paper: >2x).
        assert rows[("funneled", s)].time_per_allreduce \
            > rows[("existing", s)].time_per_allreduce
        # Endpoints and the prospective partitioned collective stay close
        # to the hand-rolled approach while being one-step for the user.
        assert rows[("endpoints", s)].time_per_allreduce \
            < rows[("funneled", s)].time_per_allreduce
        assert rows[("partitioned", s)].time_per_allreduce \
            <= rows[("existing", s)].time_per_allreduce * 1.05
    gaps = [ratio(rows[("funneled", s)].time_per_allreduce,
                  rows[("existing", s)].time_per_allreduce) for s in SIZES]
    # The advantage is strongest at small/medium sizes (rate-bound regime)
    # and narrows once the node link bandwidth dominates.
    assert max(gaps) > 1.5
    assert min(gaps) > 1.3
    big_gap = gaps[-1]
    # Lesson 19: endpoints duplicate the result buffer T times.
    assert rows[("endpoints", SIZES[1])].result_bytes_per_node \
        == 8 * rows[("existing", SIZES[1])].result_bytes_per_node

    benchmark.extra_info["funneled_over_existing_2MiB"] = round(big_gap, 2)
    bench_once(benchmark, lambda: _run("existing", SIZES[0]))


# ---------------------------------------------------------------------------
# allreduce algorithm × topology: the congestion-induced ranking change
# ---------------------------------------------------------------------------
EAGER = 16 * 1024                     # FabricParams.eager_threshold
TOPO_SIZES = (96 * 1024, 192 * 1024)  # bytes; rendezvous-regime payloads
#: Allreduce members: two edge-switch pairs across pods 0 and 1 of
#: fat_tree(k=4). Ring neighbors 0-1 and 4-5 stay edge-local, but every
#: ring step is gated by a 6-hop cross-pod chunk on the a0/core0 planes.
MEMBERS = (0, 1, 4, 5)
#: Background senders -> targets, chosen so the D-mod-k paths 2->4 and
#: 6->0 overlap the ring's cross-pod planes link-for-link. On the
#: ``direct`` fabric the same flows only share the targets' NIC ingress.
CONGEST = {2: 4, 6: 0}


def run_topology_allreduce(topology: str, algorithm: str, nbytes: int,
                           background: bool):
    """One allreduce among MEMBERS, optionally under background load.

    Returns ``(wall_seconds, correct, link_queue_delay_seconds)`` where
    the queue delay sums every topology link's FIFO wait (0.0 on the
    single-hop ``direct`` fabric, which has no links to queue on).
    """
    params = {"k": 4} if topology == "fat_tree" else {}
    world = World(cluster=ClusterSpec(nodes=16, topology=topology,
                                      **params), seed=0)
    n_bg, gap = 80, 0.3 * EAGER / world.cfg.fabric.bandwidth
    elems = nbytes // 8
    walls, outs = {}, {}

    def member(proc):
        comm = proc.comm_world
        sub = yield from comm.Split(0, MEMBERS.index(proc.rank))
        sub.set_coll_algorithm("allreduce", algorithm)
        out = np.zeros(elems)
        t0 = proc.sim.now
        yield from sub.Allreduce(np.full(elems, float(proc.rank + 1)), out)
        walls[proc.rank] = proc.sim.now - t0
        outs[proc.rank] = out
        if background and proc.rank in CONGEST.values():
            buf = np.zeros(EAGER // 8)
            for _ in range(n_bg):
                yield from comm.Recv(buf, source=-1, tag=99)

    def congestor(proc):
        comm = proc.comm_world
        yield from comm.Split(1, proc.rank)
        payload = np.zeros(EAGER // 8)
        for _ in range(n_bg):
            yield from comm.Send(payload, dest=CONGEST[proc.rank], tag=99)
            yield proc.compute(gap)

    def idle(proc):
        yield from proc.comm_world.Split(1, proc.rank)

    def role(rank):
        if rank in MEMBERS:
            return member
        if background and rank in CONGEST:
            return congestor
        return idle

    world.run_all([world.procs[r].spawn(role(r)(world.procs[r]))
                   for r in range(16)], max_steps=None)
    expected = sum(r + 1 for r in MEMBERS)
    correct = all(np.allclose(outs[r], expected) for r in MEMBERS)
    queue_delay = 0.0
    if world.topology is not None:
        queue_delay = sum(link.server.stats.total_queue_delay
                          for link in world.topology.links())
    return max(walls.values()), correct, queue_delay


def test_fig7_topology_crossover(benchmark) -> None:
    """Large-message allreduce ranking flips between direct and fat-tree.

    Acceptance demonstration: at rendezvous-regime sizes the flat fabric
    picks the ring, but on fat_tree(k=4) the ring's synchronized steps
    queue on shared D-mod-k planes (nonzero per-link FIFO delay) and
    recursive doubling wins — background traffic on those planes deepens
    the queueing without changing the verdict.
    """
    rows = {}
    for nbytes in TOPO_SIZES:
        for topo in ("direct", "fat_tree"):
            for algo in ("recursive_doubling", "ring"):
                for background in (False, True):
                    rows[(nbytes, topo, algo, background)] = \
                        run_topology_allreduce(topo, algo, nbytes,
                                               background)

    table = Table("Fig 7 addendum: allreduce time (us) by algorithm x "
                  "topology (4 ranks, quiet / congested)",
                  ["KiB", "fabric", "recursive_doubling", "ring",
                   "winner", "ring queue delay (us)"],
                  widths=[6, 10, 20, 18, 8, 22])
    for nbytes in TOPO_SIZES:
        for topo in ("direct", "fat_tree"):
            cells = {}
            for algo in ("recursive_doubling", "ring"):
                quiet = rows[(nbytes, topo, algo, False)][0]
                busy = rows[(nbytes, topo, algo, True)][0]
                cells[algo] = f"{quiet * 1e6:.1f} / {busy * 1e6:.1f}"
            t_rd = rows[(nbytes, topo, "recursive_doubling", True)][0]
            t_ring = rows[(nbytes, topo, "ring", True)][0]
            q_quiet = rows[(nbytes, topo, "ring", False)][2]
            q_busy = rows[(nbytes, topo, "ring", True)][2]
            table.add(nbytes // 1024, topo, cells["recursive_doubling"],
                      cells["ring"],
                      "RD" if t_rd < t_ring else "ring",
                      f"{q_quiet * 1e6:.1f} / {q_busy * 1e6:.1f}")
    text = table.render()
    path = write_results("fig7_topology_crossover", text)
    print(text)
    print(f"[written to {path}]")

    assert all(r[1] for r in rows.values()), "allreduce result corrupted"
    for nbytes in TOPO_SIZES:
        for background in (False, True):
            t_rd_d = rows[(nbytes, "direct", "recursive_doubling",
                           background)][0]
            t_ring_d = rows[(nbytes, "direct", "ring", background)][0]
            t_rd_f = rows[(nbytes, "fat_tree", "recursive_doubling",
                           background)][0]
            t_ring_f = rows[(nbytes, "fat_tree", "ring", background)][0]
            # the ranking change: ring wins flat, RD wins the fat tree
            assert t_ring_d < t_rd_d, (nbytes, background)
            assert t_rd_f < t_ring_f, (nbytes, background)
        # the flip is congestion: the fat-tree ring run queues on links
        # (the direct fabric has no links, so its queue delay is 0.0)
        assert rows[(nbytes, "direct", "ring", False)][2] == 0.0
        q_quiet = rows[(nbytes, "fat_tree", "ring", False)][2]
        q_busy = rows[(nbytes, "fat_tree", "ring", True)][2]
        assert q_quiet > 0.0
        assert q_busy > q_quiet  # background load deepens the queueing

    flip = rows[(TOPO_SIZES[0], "fat_tree", "ring", True)][0] \
        / rows[(TOPO_SIZES[0], "fat_tree", "recursive_doubling", True)][0]
    benchmark.extra_info["fat_tree_ring_over_rd_96KiB"] = round(flip, 2)
    bench_once(benchmark, lambda: run_topology_allreduce(
        "fat_tree", "ring", TOPO_SIZES[0], False))
