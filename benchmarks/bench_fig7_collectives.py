"""Fig 7 / Lessons 18-19: multithreaded collectives (the VASP pattern).

Compares the funneled baseline against the user-driven "existing
mechanisms" approach, one-step endpoints, and the prospective partitioned
collective — over message sizes — and reports the Lesson 19 buffer
duplication.
"""

from _common import bench_once, ratio

from repro.apps.vasp import VaspConfig, run_vasp
from repro.bench import Table, write_results

MECHS = ("funneled", "existing", "endpoints", "partitioned")
SIZES = (1 << 12, 1 << 15, 1 << 18)          # 32 KiB .. 2 MiB of float64


def _run(mech, elems):
    return run_vasp(VaspConfig(num_nodes=4, threads_per_proc=8,
                               elems=elems, repeats=2, mechanism=mech))


def test_fig7_collectives(benchmark) -> None:
    """Regenerate Fig 7: multithreaded allreduce by mechanism."""
    rows = {(m, s): _run(m, s) for m in MECHS for s in SIZES}

    table = Table("Fig 7: multithreaded allreduce time (us) vs size",
                  ["KiB"] + list(MECHS) + ["funneled/existing"],
                  widths=[8] + [12] * len(MECHS) + [18])
    for s in SIZES:
        table.add(s * 8 // 1024,
                  *[f"{rows[(m, s)].time_per_allreduce * 1e6:.1f}"
                    for m in MECHS],
                  f"{ratio(rows[('funneled', s)].time_per_allreduce, rows[('existing', s)].time_per_allreduce):.2f}x")
    dup = Table("Lesson 19: result-buffer bytes per node",
                ["mechanism", "KiB/node"], widths=[14, 10])
    for m in MECHS:
        dup.add(m, rows[(m, SIZES[1])].result_bytes_per_node // 1024)
    text = table.render() + "\n\n" + dup.render()
    path = write_results("fig7_collectives", text)
    print(text)
    print(f"[written to {path}]")

    assert all(r.correct for r in rows.values())
    for s in SIZES:
        # The VASP result: parallel segmented allreduce beats funneled,
        # with the advantage growing with size (paper: >2x).
        assert rows[("funneled", s)].time_per_allreduce \
            > rows[("existing", s)].time_per_allreduce
        # Endpoints and the prospective partitioned collective stay close
        # to the hand-rolled approach while being one-step for the user.
        assert rows[("endpoints", s)].time_per_allreduce \
            < rows[("funneled", s)].time_per_allreduce
        assert rows[("partitioned", s)].time_per_allreduce \
            <= rows[("existing", s)].time_per_allreduce * 1.05
    gaps = [ratio(rows[("funneled", s)].time_per_allreduce,
                  rows[("existing", s)].time_per_allreduce) for s in SIZES]
    # The advantage is strongest at small/medium sizes (rate-bound regime)
    # and narrows once the node link bandwidth dominates.
    assert max(gaps) > 1.5
    assert min(gaps) > 1.3
    big_gap = gaps[-1]
    # Lesson 19: endpoints duplicate the result buffer T times.
    assert rows[("endpoints", SIZES[1])].result_bytes_per_node \
        == 8 * rows[("existing", SIZES[1])].result_bytes_per_node

    benchmark.extra_info["funneled_over_existing_2MiB"] = round(big_gap, 2)
    bench_once(benchmark, lambda: _run("existing", SIZES[0]))
