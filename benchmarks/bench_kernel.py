"""Host-performance microbenchmarks: the simulator as the artifact.

Unlike the ``bench_fig*`` modules, which regenerate the paper's *simulated*
results, this suite measures how fast the simulator itself runs on the
host — the "runs as fast as the hardware allows" axis of the roadmap. It
writes ``benchmarks/results/BENCH_kernel.json`` with:

- ``events_per_sec`` — raw kernel throughput (timeout churn through the
  scheduler, free-list and callback dispatch) under the calendar-queue
  engine, with ``events_per_sec_heap`` for the legacy binary-heap
  reference and ``calendar_vs_heap`` as the measured speedup;
- ``matches_per_sec`` — indexed matching-engine throughput at depth, with
  the linear reference engine's throughput and the resulting speedup;
- ``messages_per_sec`` — end-to-end simulated messages per host second
  through the full MPI + fabric stack (``run_msgrate``);
- ``checker`` — the same workload with ``repro.check`` off vs on: the
  off point must track ``messages_per_sec`` (disabled checker = one
  ``is not None`` test on the hot paths), the on point prices the
  hooks, and the simulated message rate is asserted identical both
  ways (observer-only invariant);
- ``analyzer`` — static-analyzer throughput (``repro analyze``) over
  the shipped driver corpus: files/sec and findings scanned, gated at
  the same >30% budget when present in the baseline;
- ``fig1a_sweep`` — wall-clock of the full Fig 1(a) mode×cores sweep,
  serial and across ``--jobs`` worker processes, each point annotated
  with the host CPU count (sub-unity speedups with ``jobs > cpu_count``
  are flagged ``expected_on_host`` — oversubscription, not regression);
- ``fat_tree_collectives`` — host throughput of a 16-host
  ``fat_tree(k=4)`` allreduce through the routed topology layer
  (gated at the same >30% budget when present in the baseline);
- ``memo_sweep`` — the warm-prefix memoized Fig 1(a) executor, cold
  (empty cache) then warm (populated cache): the cold points/sec is
  gated at the 30% budget, and the warm pass must re-simulate exactly
  zero warm-ups (a hard invariant, not a tolerance);
- ``serve`` — a small sweep job submitted through a real forked
  service (``repro serve``: orchestrator + HTTP + workers): served
  points/sec cold is gated at the 30% budget, and resubmitting the
  identical job must hit the warm result cache 100% (invariant).

Standalone (this is what CI's perf-smoke job runs)::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        --out benchmarks/results/BENCH_kernel.json \
        --check-against benchmarks/baselines/bench_kernel_baseline.json

``--check-against`` fails (exit 1) if ``events_per_sec`` regressed more
than 30% against the committed baseline. ``--quick`` shrinks every
workload for smoke runs.

See ``docs/performance.md`` for how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

import numpy as np

#: Committed reference numbers (see --check-against).
BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "baselines", "bench_kernel_baseline.json")
RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "results", "BENCH_kernel.json")

#: Maximum tolerated events/sec regression vs the baseline (fraction).
REGRESSION_BUDGET = 0.30


# ---------------------------------------------------------------------------
# events/sec: raw kernel throughput
# ---------------------------------------------------------------------------
def bench_events(n_procs: int = 8, timeouts_per_proc: int = 50_000,
                 repeats: int = 3, engine: Optional[str] = None) -> float:
    """Time raw kernel event throughput (timeout churn).

    ``engine`` selects the event-loop implementation (``"calendar"`` —
    the default engine — or ``"heap"``, the legacy reference); ``None``
    follows ``REPRO_SIM_ENGINE``.
    """
    from repro.sim.calendar import make_simulator

    def ping(sim, n):
        for _ in range(n):
            yield sim.timeout(1e-9)

    best = 0.0
    for _ in range(repeats):
        sim = make_simulator(engine)
        for _ in range(n_procs):
            sim.spawn(ping(sim, timeouts_per_proc))
        t0 = time.perf_counter()
        sim.run()
        best = max(best, sim.steps / (time.perf_counter() - t0))
    return best


# ---------------------------------------------------------------------------
# matches/sec: matching-engine throughput at queue depth
# ---------------------------------------------------------------------------
def _matching_workload(engine_cls, depth: int, rounds: int) -> float:
    """Post ``depth`` receives, then ``rounds`` arrivals that match the
    queue *tail* (the linear engine's worst case); returns ops/sec."""
    from repro.mpi.matching import PostedRecv
    from repro.netsim.message import MessageKind, WireMessage

    engine = engine_cls()
    buf = np.zeros(1, dtype=np.uint8)

    def post(tag):
        engine.post_recv(PostedRecv(req=None, buf=buf, count=1,
                                    context_id=0, source=0, tag=tag,
                                    dst_addr=0))

    def arrive(tag):
        return engine.incoming(WireMessage(
            kind=MessageKind.EAGER, src_node=0, dst_node=0, src_rank=0,
            dst_rank=0, context_id=0, tag=tag, size=1, payload=None,
            meta={"src_addr": 0, "dst_addr": 0}))

    for tag in range(depth):
        post(tag)
    tail = depth - 1  # each round matches the newest post, then re-posts
    ops = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        entry, scanned = arrive(tail)
        assert entry is not None and scanned == depth
        post(tail)
        ops += 2
    return ops / (time.perf_counter() - t0)


def bench_matching(depth: int = 512, rounds: int = 2_000,
                   repeats: int = 3) -> dict:
    """Time the matching engines on a synthetic post/match stream."""
    from repro.mpi.matching import LinearMatchingEngine, MatchingEngine

    indexed = max(_matching_workload(MatchingEngine, depth, rounds)
                  for _ in range(repeats))
    linear = max(_matching_workload(LinearMatchingEngine, depth, rounds)
                 for _ in range(repeats))
    return {"depth": depth,
            "matches_per_sec": round(indexed),
            "linear_matches_per_sec": round(linear),
            "indexed_vs_linear": round(indexed / linear, 2)}


# ---------------------------------------------------------------------------
# messages/sec: the full stack
# ---------------------------------------------------------------------------
def bench_messages(cores: int = 8, msgs_per_core: int = 256,
                   repeats: int = 3) -> float:
    """Time end-to-end message delivery through the full stack."""
    from repro.bench import MsgRateConfig, run_msgrate
    from repro.netsim import NetworkConfig

    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = run_msgrate(MsgRateConfig(mode="threads-endpoints", cores=cores,
                                      msgs_per_core=msgs_per_core),
                        net=NetworkConfig.omnipath())
        best = max(best, r.messages / (time.perf_counter() - t0))
    return best


# ---------------------------------------------------------------------------
# checker overhead: host cost of repro.check, zero simulated-time cost
# ---------------------------------------------------------------------------
def bench_checker(cores: int = 8, msgs_per_core: int = 256,
                  repeats: int = 3) -> dict:
    """Host throughput of the message workload with the correctness
    checker off vs on.

    With the checker off the hot paths test a single ``is not None`` —
    the off point must track ``messages_per_sec``. The on point measures
    the real host cost of the vector-clock and semantics hooks. Either
    way the *simulated* result must be byte-identical (observer-only
    invariant); this benchmark asserts it on every repeat.
    """
    from repro.bench import MsgRateConfig, run_msgrate
    from repro.check import CheckConfig, checking
    from repro.netsim import NetworkConfig

    cfg = MsgRateConfig(mode="threads-endpoints", cores=cores,
                        msgs_per_core=msgs_per_core)
    net = NetworkConfig.omnipath()

    best_off = best_on = 0.0
    rate_off = rate_on = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        r = run_msgrate(cfg, net=net)
        best_off = max(best_off, r.messages / (time.perf_counter() - t0))
        rate_off = r.rate

        t0 = time.perf_counter()
        with checking(CheckConfig(emit_warnings=False)) as session:
            r = run_msgrate(cfg, net=net)
        best_on = max(best_on, r.messages / (time.perf_counter() - t0))
        rate_on = r.rate
        assert session.report().clean, session.report().render()
        # observer-only invariant: identical simulated message rate
        assert rate_on == rate_off, (rate_on, rate_off)

    return {"messages_per_sec_off": round(best_off),
            "messages_per_sec_on": round(best_on),
            "host_overhead": round(best_off / best_on, 2),
            "simulated_rate_identical": rate_on == rate_off}


# ---------------------------------------------------------------------------
# analyzer throughput: repro analyze over the shipped corpus
# ---------------------------------------------------------------------------
def bench_analyzer(repeats: int = 3) -> dict:
    """Host throughput of the static analyzer over the driver corpus.

    Analyzes every ``repro.apps``/``repro.bench`` source (the same set
    the CI ``analyze-corpus`` job gates) and reports files and source
    lines per host second. The corpus must stay clean — a finding here
    is a correctness regression, not a perf number.
    """
    import glob

    import repro.apps as apps_pkg
    import repro.bench as bench_pkg
    from repro.check import analyze_paths

    paths = []
    for pkg in (apps_pkg, bench_pkg):
        pkg_dir = os.path.dirname(os.path.abspath(pkg.__file__))
        paths += sorted(glob.glob(os.path.join(pkg_dir, "**", "*.py"),
                                  recursive=True))
    lines = sum(len(open(p, "rb").read().splitlines()) for p in paths)

    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = analyze_paths(paths)
        best = max(best, len(paths) / (time.perf_counter() - t0))
        assert report.clean, report.render()
    return {"files": len(paths),
            "source_lines": lines,
            "files_per_sec": round(best, 2),
            "lines_per_sec": round(lines * best / len(paths))}


# ---------------------------------------------------------------------------
# fig1a sweep wall-clock, serial and fanned out
# ---------------------------------------------------------------------------
def _fig1a_point(mode: str, cores: int, msgs_per_core: int) -> float:
    from repro.bench import MsgRateConfig, run_msgrate
    from repro.netsim import NetworkConfig

    return run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                     msgs_per_core=msgs_per_core),
                       net=NetworkConfig.omnipath()).rate


def bench_fig1a_sweep(jobs_list=(1, 2, 4), msgs_per_core: int = 64) -> dict:
    """Time the fig1a sweep at increasing --jobs fan-out."""
    from repro.bench import scaling_run

    modes = ("everywhere", "threads-original", "threads-tags",
             "threads-comms", "threads-endpoints")
    cores = (1, 2, 4, 8, 16, 32, 64)
    points = [{"mode": m, "cores": c, "msgs_per_core": msgs_per_core}
              for m in modes for c in cores]
    walls = scaling_run(_fig1a_point, points, jobs_list)
    serial = walls.get(1, walls[min(walls)])["wall_sec"]
    speedups = {j: serial / rec["wall_sec"] for j, rec in walls.items()}
    # Sub-unity speedup with more workers than CPUs is the host's fault,
    # not a scaling regression — flag it so the CI gate ignores it.
    expected = {j: speedups[j] < 1.0 and j > rec["cpu_count"]
                for j, rec in walls.items()}
    return {"points": len(points),
            "wall_sec": {str(j): round(rec["wall_sec"], 3)
                         for j, rec in walls.items()},
            "speedup_vs_serial": {str(j): round(s, 2)
                                  for j, s in speedups.items()},
            "expected_on_host": {str(j): flag
                                 for j, flag in expected.items() if flag},
            "cpu_count": {str(j): rec["cpu_count"]
                          for j, rec in walls.items()}}


# ---------------------------------------------------------------------------
# fat-tree collectives: host throughput of the routed-topology stack
# ---------------------------------------------------------------------------
def bench_fat_tree_collectives(elems: int = 1 << 13, repeats: int = 3) -> dict:
    """Host performance of a 16-host fat_tree(k=4) allreduce.

    Times how fast the host simulates ring and recursive-doubling
    allreduces through the hop-by-hop routed fabric (link FIFOs, D-mod-k
    next-hop walks). The simulated times are reported too, as a
    determinism cross-check for the topology layer; the regression gate
    tracks only the host rate.
    """
    from repro.netsim import ClusterSpec
    from repro.runtime import World

    def simulate(algorithm: str) -> float:
        world = World(cluster=ClusterSpec(nodes=16, topology="fat_tree",
                                          k=4), seed=0)

        def node(proc):
            comm = proc.comm_world
            comm.set_coll_algorithm("allreduce", algorithm)
            out = np.zeros(elems)
            yield from comm.Allreduce(
                np.full(elems, float(proc.rank)), out)

        world.run_all([p.spawn(node(p)) for p in world.procs])
        return world.sim.now

    best = 0.0
    sim_times = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        for algorithm in ("ring", "recursive_doubling"):
            sim_times[algorithm] = simulate(algorithm)
        best = max(best, 2 / (time.perf_counter() - t0))
    return {"allreduces_per_sec": round(best, 2),
            "sim_us_ring": round(sim_times["ring"] * 1e6, 3),
            "sim_us_recursive_doubling":
                round(sim_times["recursive_doubling"] * 1e6, 3)}


def bench_memo_sweep(msgs_list=(16, 32, 64), cores: int = 4) -> dict:
    """Time the warm-prefix memoized Fig 1(a) executor, cold then warm.

    The cold pass simulates one warm-up per unique (mode, cores) prefix
    and forks per point; the warm pass replays the identical sweep
    against the populated cache and must re-simulate **zero** warm-ups
    (``warm_resimulated_warmups`` is gated at exactly 0, not a
    percentage — it is an invariant, not a throughput).
    """
    import shutil
    import tempfile

    from repro.bench.memo import MemoStats, fig1a_executor

    modes = ("everywhere", "threads-tags", "threads-endpoints")
    points = [{"mode": m, "cores": cores, "msgs_per_core": n}
              for m in modes for n in msgs_list]
    cache = tempfile.mkdtemp(prefix="bench-memo-")
    try:
        cold_stats = MemoStats()
        t0 = time.perf_counter()
        cold = fig1a_executor(cache_dir=cache).run(points, stats=cold_stats)
        cold_sec = time.perf_counter() - t0
        warm_stats = MemoStats()
        t0 = time.perf_counter()
        warm = fig1a_executor(cache_dir=cache).run(points, stats=warm_stats)
        warm_sec = time.perf_counter() - t0
        assert warm == cold, "memoized sweep results changed across runs"
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    return {"points": len(points),
            "points_per_sec_cold": round(len(points) / cold_sec, 2),
            "points_per_sec_warm": round(len(points) / warm_sec, 2),
            "warm_speedup": round(cold_sec / warm_sec, 2),
            "warm_resimulated_warmups": warm_stats.warmups_simulated,
            "cold": cold_stats.as_dict(),
            "warm": warm_stats.as_dict()}


def bench_serve(msgs_list=(8, 16, 24), workers: int = 2) -> dict:
    """Host throughput of the serve pipeline (served points/sec).

    Spawns a real service (orchestrator + HTTP API + forked workers) on
    a throwaway state dir, submits a small Fig 1(a)-style sweep job and
    times submit-to-done — the full protocol round-trip per point. A
    resubmission of the identical job must then be answered entirely
    from the warm result cache (``warm_hit_rate`` is gated at exactly
    1.0, an invariant like the memo sweep's zero re-warm-ups).
    """
    import shutil
    import tempfile

    from repro.serve.service import spawn_service

    spec = {"params": {"mode": ["everywhere", "threads-tags"],
                       "cores": [1, 2],
                       "msgs_per_core": list(msgs_list),
                       "window": [4]}}
    state = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        handle = spawn_service(state, workers=workers, oversubscribe=True,
                               heartbeat=0.2, heartbeat_timeout=10.0)
        try:
            client = handle.client()
            t0 = time.perf_counter()
            job = client.submit("sweep", spec)
            client.wait(job["job_id"], timeout=600)
            cold_sec = time.perf_counter() - t0
            total = job["total"]
            t0 = time.perf_counter()
            again = client.submit("sweep", spec)
            warm_sec = time.perf_counter() - t0
            assert again["status"] == "done", again
            hits = again["cache_hits"]
        finally:
            handle.stop()
    finally:
        shutil.rmtree(state, ignore_errors=True)
    return {"points": total,
            "workers": workers,
            "points_per_sec_cold": round(total / cold_sec, 2),
            "points_per_sec_warm": round(total / max(warm_sec, 1e-9), 2),
            "warm_hit_rate": round(hits / total, 2)}


def bench_campaign(n: int = 12, repeats: int = 2) -> dict:
    """Host throughput of the chaos-campaign executor (scenarios/sec).

    Runs the first ``n`` sampled scenarios of a fixed seed through
    ``run_scenario`` (analyzer + snapshot recorder + classification, no
    checkpointing). The sampled mix exercises every app driver, the
    fault injector and the background-traffic module, so this point
    tracks the end-to-end cost the campaign runner pays per scenario.
    The digest of the outcome stream doubles as a determinism check.
    """
    import hashlib

    from repro.scenarios import run_scenario, sample_scenarios

    specs = sample_scenarios(1, n)
    best = 0.0
    digest = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        outcomes = [run_scenario(spec) for spec in specs]
        best = max(best, n / (time.perf_counter() - t0))
        blob = json.dumps(outcomes, sort_keys=True).encode()
        this = hashlib.sha256(blob).hexdigest()[:16]
        assert digest is None or digest == this, \
            "campaign outcomes changed across identical repeats"
        digest = this
    statuses = sorted({o["status"] for o in outcomes})
    return {"scenarios_per_sec": round(best, 2),
            "outcome_digest": digest,
            "statuses": statuses}


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
def run_suite(quick: bool = False, jobs_list=(1, 2, 4)) -> dict:
    """Run every micro-bench and render the results table."""
    scale = 10 if quick else 1
    events = bench_events(timeouts_per_proc=50_000 // scale,
                          repeats=2 if quick else 3, engine="calendar")
    events_heap = bench_events(timeouts_per_proc=50_000 // scale,
                               repeats=2 if quick else 3, engine="heap")
    matching = bench_matching(rounds=2_000 // scale,
                              repeats=2 if quick else 3)
    messages = bench_messages(msgs_per_core=256 // scale,
                              repeats=2 if quick else 3)
    checker = bench_checker(msgs_per_core=256 // scale,
                            repeats=2 if quick else 3)
    analyzer = bench_analyzer(repeats=2 if quick else 3)
    sweep = bench_fig1a_sweep(jobs_list=jobs_list,
                              msgs_per_core=64 // (scale if quick else 1))
    memo = bench_memo_sweep(msgs_list=(16, 32) if quick else (16, 32, 64))
    fat_tree = bench_fat_tree_collectives(elems=(1 << 13) // scale,
                                          repeats=2 if quick else 3)
    campaign = bench_campaign(n=6 if quick else 12,
                              repeats=2 if quick else 3)
    serve = bench_serve(msgs_list=(8, 16) if quick else (8, 16, 24))
    return {
        "schema": 2,
        "python": sys.version.split()[0],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "engine": "calendar",
        "events_per_sec": round(events),
        "events_per_sec_heap": round(events_heap),
        "calendar_vs_heap": round(events / events_heap, 2),
        "matching": matching,
        "messages_per_sec": round(messages),
        "checker": checker,
        "analyzer": analyzer,
        "fig1a_sweep": sweep,
        "memo_sweep": memo,
        "fat_tree_collectives": fat_tree,
        "campaign": campaign,
        "serve": serve,
    }


def check_against(result: dict, baseline_path: str) -> bool:
    """True when events/sec is within the regression budget of baseline."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    ref = baseline["events_per_sec"]
    got = result["events_per_sec"]
    floor = ref * (1.0 - REGRESSION_BUDGET)
    ok = got >= floor
    print(f"events/sec: measured {got:,} vs baseline {ref:,} "
          f"(floor {floor:,.0f}) -> {'OK' if ok else 'REGRESSION'}")
    if "fat_tree_collectives" in baseline:
        ref_ft = baseline["fat_tree_collectives"]["allreduces_per_sec"]
        got_ft = result["fat_tree_collectives"]["allreduces_per_sec"]
        floor_ft = ref_ft * (1.0 - REGRESSION_BUDGET)
        ok_ft = got_ft >= floor_ft
        print(f"fat-tree allreduces/sec: measured {got_ft:,} vs baseline "
              f"{ref_ft:,} (floor {floor_ft:,.2f}) -> "
              f"{'OK' if ok_ft else 'REGRESSION'}")
        ok = ok and ok_ft
    if "campaign" in baseline:
        ref_cp = baseline["campaign"]["scenarios_per_sec"]
        got_cp = result["campaign"]["scenarios_per_sec"]
        floor_cp = ref_cp * (1.0 - REGRESSION_BUDGET)
        ok_cp = got_cp >= floor_cp
        print(f"campaign scenarios/sec: measured {got_cp:,} vs baseline "
              f"{ref_cp:,} (floor {floor_cp:,.2f}) -> "
              f"{'OK' if ok_cp else 'REGRESSION'}")
        ok = ok and ok_cp
    if "analyzer" in baseline:
        ref_an = baseline["analyzer"]["files_per_sec"]
        got_an = result["analyzer"]["files_per_sec"]
        floor_an = ref_an * (1.0 - REGRESSION_BUDGET)
        ok_an = got_an >= floor_an
        print(f"analyzer files/sec: measured {got_an:,} vs baseline "
              f"{ref_an:,} (floor {floor_an:,.2f}) -> "
              f"{'OK' if ok_an else 'REGRESSION'}")
        ok = ok and ok_an
    if "memo_sweep" in baseline:
        ref_ms = baseline["memo_sweep"]["points_per_sec_cold"]
        got_ms = result["memo_sweep"]["points_per_sec_cold"]
        floor_ms = ref_ms * (1.0 - REGRESSION_BUDGET)
        ok_ms = got_ms >= floor_ms
        print(f"memo sweep points/sec (cold): measured {got_ms:,} vs "
              f"baseline {ref_ms:,} (floor {floor_ms:,.2f}) -> "
              f"{'OK' if ok_ms else 'REGRESSION'}")
        # Invariant, not a throughput: a warm cache must never re-simulate.
        resim = result["memo_sweep"]["warm_resimulated_warmups"]
        ok_warm = resim == 0
        print(f"memo sweep warm re-simulated warm-ups: {resim} "
              f"-> {'OK' if ok_warm else 'CACHE BROKEN'}")
        ok = ok and ok_ms and ok_warm
    if "serve" in baseline:
        ref_sv = baseline["serve"]["points_per_sec_cold"]
        got_sv = result["serve"]["points_per_sec_cold"]
        floor_sv = ref_sv * (1.0 - REGRESSION_BUDGET)
        ok_sv = got_sv >= floor_sv
        print(f"served points/sec (cold): measured {got_sv:,} vs "
              f"baseline {ref_sv:,} (floor {floor_sv:,.2f}) -> "
              f"{'OK' if ok_sv else 'REGRESSION'}")
        # Invariant: resubmitting an identical job executes nothing.
        hit_rate = result["serve"]["warm_hit_rate"]
        ok_hits = hit_rate == 1.0
        print(f"served warm hit rate: {hit_rate} "
              f"-> {'OK' if ok_hits else 'CACHE BROKEN'}")
        ok = ok and ok_sv and ok_hits
    return ok


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: run the kernel micro-bench suite."""
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--out", default=RESULTS,
                    help="where to write BENCH_kernel.json")
    ap.add_argument("--check-against", metavar="PATH", default=None,
                    help="baseline JSON; exit 1 if events/sec regressed "
                         f">{REGRESSION_BUDGET:.0%}")
    ap.add_argument("--quick", action="store_true",
                    help="shrink workloads ~10x (CI smoke)")
    ap.add_argument("--jobs", nargs="+", type=int, default=[1, 2, 4],
                    help="worker counts to time the fig1a sweep at")
    args = ap.parse_args(argv)

    result = run_suite(quick=args.quick, jobs_list=tuple(args.jobs))
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"[written to {args.out}]")
    if args.check_against:
        return 0 if check_against(result, args.check_against) else 1
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (quick variant, so `pytest benchmarks/` covers it)
# ---------------------------------------------------------------------------
def test_kernel_microbench(benchmark, tmp_path) -> None:
    """Pytest wrapper: the micro-bench suite runs and reports."""
    out = tmp_path / "BENCH_kernel.json"
    assert main(["--quick", "--jobs", "1", "2",
                 "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["events_per_sec"] > 0
    assert data["matching"]["indexed_vs_linear"] > 1.0
    assert data["messages_per_sec"] > 0
    assert data["checker"]["simulated_rate_identical"]
    assert data["checker"]["messages_per_sec_on"] > 0
    assert data["analyzer"]["files_per_sec"] > 0
    assert data["analyzer"]["files"] > 10
    assert data["fat_tree_collectives"]["allreduces_per_sec"] > 0
    assert data["campaign"]["scenarios_per_sec"] > 0
    assert data["campaign"]["outcome_digest"]
    assert data["events_per_sec_heap"] > 0
    assert data["calendar_vs_heap"] > 0
    serve = data["serve"]
    assert serve["points_per_sec_cold"] > 0
    assert serve["warm_hit_rate"] == 1.0
    memo = data["memo_sweep"]
    assert memo["warm_resimulated_warmups"] == 0
    assert memo["points_per_sec_cold"] > 0
    assert memo["cold"]["warmups_simulated"] == \
        memo["cold"]["unique_prefixes"]
    # topology layer stays deterministic: ring != RD schedules
    assert data["fat_tree_collectives"]["sim_us_ring"] \
        != data["fat_tree_collectives"]["sim_us_recursive_doubling"]
    sweep = data["fig1a_sweep"]
    for j, flag in sweep.get("expected_on_host", {}).items():
        assert flag and sweep["speedup_vs_serial"][j] < 1.0
        assert int(j) > sweep["cpu_count"][j]
    benchmark.extra_info["events_per_sec"] = data["events_per_sec"]
    benchmark.pedantic(bench_events, kwargs={"timeouts_per_proc": 5_000,
                                             "repeats": 1},
                       rounds=2, iterations=1, warmup_rounds=0)


if __name__ == "__main__":
    sys.exit(main())
