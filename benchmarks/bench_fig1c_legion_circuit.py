"""Fig 1(c): Legion-based circuit simulation — original vs logically
parallel MPI+threads.

The event-runtime proxy ships per-timestep voltage updates to remote
polling threads. In the original mode, every task thread *and* the polling
thread funnel through one VCI; logically parallel modes give each its own
channel.
"""

from _common import bench_once, ratio

from repro.apps.legion import CircuitConfig, run_circuit
from repro.bench import Table, write_results

MECHS = ("original", "communicators", "endpoints")
THREADS = (4, 8, 12)


def _run(mech, nthreads):
    return run_circuit(CircuitConfig(num_nodes=3, task_threads=nthreads,
                                     timesteps=5, wires_per_thread=16,
                                     compute_per_step=1e-6, mechanism=mech))


def test_fig1c_legion_circuit(benchmark) -> None:
    """Regenerate Fig 1(c): circuit proxy, original vs parallel comm."""
    results = {(m, n): _run(m, n) for m in MECHS for n in THREADS}

    table = Table("Fig 1(c): circuit proxy, time per timestep (us)",
                  ["task threads"] + list(MECHS) + ["orig/ep"],
                  widths=[13] + [15] * (len(MECHS) + 1))
    for n in THREADS:
        step = {m: results[(m, n)].time_per_step for m in MECHS}
        table.add(n, *[f"{step[m] * 1e6:.1f}" for m in MECHS],
                  f"{ratio(step['original'], step['endpoints']):.2f}x")
    path = write_results("fig1c_legion_circuit", table.render())
    print(table.render())
    print(f"[written to {path}]")

    assert all(r.correct for r in results.values())
    for n in THREADS:
        # original is consistently slower than the parallel modes. The
        # magnitude is modest here because a single polling thread is the
        # floor for every mechanism (see EXPERIMENTS.md).
        assert results[("original", n)].time_per_step \
            > 1.08 * results[("endpoints", n)].time_per_step

    benchmark.extra_info["orig_over_ep"] = {
        n: round(ratio(results[("original", n)].time_per_step,
                       results[("endpoints", n)].time_per_step), 2)
        for n in THREADS}
    bench_once(benchmark, lambda: _run("endpoints", 8))
