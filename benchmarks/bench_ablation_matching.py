"""Ablation (Section II-C): message-matching cost — O(n) shared vs O(1)
partitioned.

"If n threads use the same communicator, the overhead of message matching
grows by O(n). Since partitioned operations share a persistent message,
they incur a message matching overhead of only O(1)."

The bench drives a 2D 5-pt halo exchange with growing thread counts and
reports the total matching-queue elements scanned per delivered message —
measured inside the matching engines, not inferred from time.
"""

from _common import bench_once, ratio

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import Table, write_results


def test_ablation_matching(benchmark) -> None:
    """Matching ablation: O(n) shared matching vs persistent channels."""
    grids = ((2, 2), (4, 4), (6, 6), (8, 8))
    rows = {}
    for tg in grids:
        for mech in ("original", "partitioned", "endpoints"):
            cfg = StencilConfig(proc_grid=(2, 2), thread_grid=tg, pnx=4,
                                pny=4, stencil_points=5, iters=3,
                                mechanism=mech)
            rows[(mech, tg)] = run_stencil(cfg)

    table = Table("Matching ablation: halo time (us) vs threads, 5-pt",
                  ["threads", "original", "partitioned", "endpoints",
                   "orig/part"],
                  widths=[8, 10, 12, 10, 10])
    for tg in grids:
        n = tg[0] * tg[1]
        o = rows[("original", tg)].halo_time
        p = rows[("partitioned", tg)].halo_time
        e = rows[("endpoints", tg)].halo_time
        table.add(n, f"{o * 1e6:.1f}", f"{p * 1e6:.1f}", f"{e * 1e6:.1f}",
                  f"{ratio(o, p):.2f}x")
    path = write_results("ablation_matching", table.render())
    print(table.render())
    print(f"[written to {path}]")

    assert all(r.correct for r in rows.values())
    # The original/partitioned ratio grows steadily with thread count (the
    # O(n) matching term) and crosses over at scale — partitioned matches
    # once, but its shared-request synchronization also grows (Lesson 14),
    # so the win over "original" is modest...
    big = grids[-1]
    ratios = [ratio(rows[("original", g)].halo_time,
                    rows[("partitioned", g)].halo_time) for g in grids]
    assert all(b >= a * 0.98 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 0.99
    # ...while fully independent endpoints beat both decisively — complete
    # independence is something partitioned semantics cannot offer.
    assert rows[("endpoints", big)].halo_time \
        < 0.5 * rows[("partitioned", big)].halo_time
    assert rows[("endpoints", big)].halo_time \
        < 0.5 * rows[("original", big)].halo_time

    benchmark.extra_info["orig_over_part"] = [round(x, 2) for x in ratios]
    bench_once(benchmark, lambda: run_stencil(StencilConfig(
        proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
        stencil_points=5, iters=2, mechanism="partitioned")))
