#!/usr/bin/env python3
"""Topology-aware collectives: the same allreduce, two interconnects.

Builds two 16-host clusters with the ClusterSpec API — a flat single-hop
``direct`` fabric and a ``fat_tree(k=4)`` with D-mod-k routing — and
times a 96 KiB allreduce among four ranks spread across two pods, once
per algorithm (``comm.set_coll_algorithm``). On the flat fabric the
bandwidth-optimal ring wins; on the fat tree every ring step serializes
through shared up/down planes (real per-link FIFO queueing, printed
below) and recursive doubling wins. One global size threshold cannot
serve both fabrics — selection must be per-communicator.

Run:  python examples/fat_tree_collectives.py
See:  docs/topology.md, benchmarks/bench_fig7_collectives.py
"""

import numpy as np

from repro.netsim import ClusterSpec
from repro.runtime import World

MEMBERS = (0, 1, 4, 5)   # two edge-switch pairs across pods 0 and 1
NBYTES = 96 * 1024


def time_allreduce(spec: ClusterSpec, algorithm: str) -> tuple[float, float]:
    """Simulated allreduce seconds among MEMBERS, plus link queue delay."""
    world = World(cluster=spec, seed=0)
    elems = NBYTES // 8
    walls = {}

    def member(proc):
        sub = yield from proc.comm_world.Split(0, MEMBERS.index(proc.rank))
        sub.set_coll_algorithm("allreduce", algorithm)
        out = np.zeros(elems)
        t0 = proc.sim.now
        yield from sub.Allreduce(np.full(elems, float(proc.rank + 1)), out)
        walls[proc.rank] = proc.sim.now - t0
        assert np.allclose(out, sum(r + 1 for r in MEMBERS))

    def idle(proc):
        yield from proc.comm_world.Split(1, proc.rank)

    world.run_all([p.spawn((member if p.rank in MEMBERS else idle)(p))
                   for p in world.procs])
    queued = 0.0
    if world.topology is not None:
        queued = sum(link.server.stats.total_queue_delay
                     for link in world.topology.links())
    return max(walls.values()), queued


def main() -> None:
    """Compare allreduce algorithms on a flat fabric vs a fat tree."""
    specs = {
        "direct": ClusterSpec(nodes=16),
        "fat_tree(k=4)": ClusterSpec(nodes=16, topology="fat_tree", k=4),
    }
    print(f"== 96 KiB allreduce among ranks {MEMBERS} of 16 hosts ==")
    for name, spec in specs.items():
        times = {}
        for algo in ("recursive_doubling", "ring"):
            times[algo], queued = time_allreduce(spec, algo)
            print(f"  {name:14s} {algo:18s} {times[algo] * 1e6:7.1f} us"
                  f"   (link queueing {queued * 1e6:.1f} us)")
        winner = min(times, key=times.get)
        print(f"  {name:14s} winner: {winner}")
    print("""
 - The ring is bandwidth-optimal per host, so it wins the flat fabric.
 - On the fat tree, each ring step is gated by a 6-hop cross-pod chunk
   queueing on shared D-mod-k planes; recursive doubling needs only
   log2(P) rounds and wins. Pick per communicator, not globally.""")


if __name__ == "__main__":
    main()
