#!/usr/bin/env python3
"""NWChem-style get-compute-update over RMA (Fig 6, Lesson 16).

Threads Get remote tiles, multiply them, and Accumulate the product into a
destination tile. Atomicity forces one window; the example compares how
each channel strategy maps the independent atomics onto network
parallelism.

Run:  python examples/nwchem_rma.py
"""

from repro.apps.nwchem import NwchemConfig, run_nwchem


def main():
    """Run the NWChem-style RMA example end to end."""
    print("== block-sparse matmul: get -> compute -> accumulate ==")
    base = dict(num_nodes=3, threads_per_proc=8, tiles_per_proc=16,
                tile_dim=12, tasks_per_thread=6)
    rows = {}
    for mech in ("window", "window-relaxed", "endpoints"):
        r = run_nwchem(NwchemConfig(mechanism=mech, **base))
        rows[mech] = r
        print(f"  {r}  correct={r.correct}")
    print(f"""
Reading the table (Lesson 16):
 - 'window'          : default accumulate ordering pins every atomic to the
                       window's base VCI -> few channels, serialized.
 - 'window-relaxed'  : accumulate_ordering=none lets the library hash ops
                       over VCIs -- more channels but collisions
                       (imbalance {rows['window-relaxed'].channel_imbalance:.2f}).
 - 'endpoints'       : one channel per endpoint, atomicity preserved --
                       parallel and balanced
                       (imbalance {rows['endpoints'].channel_imbalance:.2f}).""")


if __name__ == "__main__":
    main()
