#!/usr/bin/env python3
"""Multithreaded collectives (Fig 7, Lessons 18-19, the VASP pattern).

Every thread holds a private contribution; the program needs the global
elementwise sum available to all threads. Compares the funneled baseline,
the user-driven "existing mechanisms" approach (manual intranode step +
per-thread communicators), one-step endpoints, and a prospective
partitioned collective.

Run:  python examples/vasp_collectives.py
"""

from repro.apps.vasp import VaspConfig, run_vasp


def main():
    """Run the VASP-style multithreaded allreduce example."""
    print("== multithreaded allreduce, 4 nodes x 8 threads, 256 KiB ==")
    base = dict(num_nodes=4, threads_per_proc=8, elems=1 << 15, repeats=2)
    results = {}
    for mech in ("funneled", "existing", "endpoints", "partitioned"):
        r = run_vasp(VaspConfig(mechanism=mech, **base))
        results[mech] = r
        print(f"  {r}  correct={r.correct}")

    speedup = (results["funneled"].time_per_allreduce
               / results["existing"].time_per_allreduce)
    print(f"""
 - 'existing' (VASP's segmented approach) is {speedup:.2f}x faster than the
   funneled baseline (the paper reports >2x for VASP), but the user had to
   hand-roll the intranode reduction (Lesson 18).
 - 'endpoints' is one library call per thread... at the cost of one full
   result buffer per endpoint: {results['endpoints'].result_bytes_per_node // 1024} KiB/node
   vs {results['existing'].result_bytes_per_node // 1024} KiB/node (Lesson 19).
 - 'partitioned' models the TBD partitioned collective of Table I: one-step
   like endpoints, single result buffer like existing mechanisms.""")


if __name__ == "__main__":
    main()
