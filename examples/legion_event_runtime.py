#!/usr/bin/env python3
"""Event-driven runtime (Legion pattern): communicators vs endpoints.

Reproduces the Fig 5 scenario: task threads message remote nodes while a
polling thread absorbs incoming events with wildcard receives. With
communicators, the polling thread must iterate over every task thread's
communicator (the paper measured 1.63x slower event processing); with
endpoints it owns one wildcard channel.

Run:  python examples/legion_event_runtime.py
"""

from repro.apps.legion import CircuitConfig, LegionConfig, run_circuit, run_legion


def main():
    """Run the Legion event-runtime polling example end to end."""
    print("== Fig 5: polling-thread cost per event ==")
    base = dict(num_nodes=3, task_threads=8, msgs_per_thread=12)
    results = {}
    for mech in ("original", "communicators", "endpoints"):
        r = run_legion(LegionConfig(mechanism=mech, **base))
        results[mech] = r
        print(f"  {r}")
    ratio = (results["communicators"].polling_cost_per_event
             / results["endpoints"].polling_cost_per_event)
    print(f"\n  communicators / endpoints polling cost: {ratio:.2f}x "
          "(paper: 1.63x)")

    print("\n== Fig 1(c): Legion circuit proxy, time per timestep ==")
    cbase = dict(num_nodes=3, task_threads=8, timesteps=5,
                 wires_per_thread=16, compute_per_step=1e-6)
    for mech in ("original", "communicators", "endpoints"):
        r = run_circuit(CircuitConfig(mechanism=mech, **cbase))
        print(f"  {r}")
    print("\nPartitioned communication is absent by design: the polling "
          "thread\nrelies on wildcards and dynamic targets (Lesson 15).")


if __name__ == "__main__":
    main()
