#!/usr/bin/env python3
"""Halo exchange with all five mechanisms (Section III-A of the paper).

Runs a 2D 9-point MPI+threads stencil (the hypre/Smilei/Pencil pattern)
with every design the paper compares, verifying data correctness against a
sequential reference and printing time + resource metrics, then shows the
Lesson 3 resource arithmetic for the 3D 27-point case.

Run:  python examples/stencil_halo_exchange.py
"""

from repro.apps.stencil import StencilConfig, run_stencil
from repro.mapping import (
    communicator_overhead_ratio_3d27,
    communicators_required_3d27,
    min_channels_3d27,
)


def main():
    """Run the stencil halo-exchange example end to end."""
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=6, pny=6,
                iters=4)
    print("== 2D 9-point stencil, 2x2 processes x 3x3 threads ==")
    print(f"{'mechanism':15s} {'wall':>10} {'halo':>10} {'resources':>10} "
          f"{'vcis':>6} {'correct':>8}")
    for mech in ("original", "tags", "communicators", "endpoints"):
        cfg = StencilConfig(mechanism=mech, stencil_points=9, **base)
        r = run_stencil(cfg)
        print(f"{mech:15s} {r.wall_time * 1e6:9.1f}u {r.halo_time * 1e6:9.1f}u "
              f"{r.resources_created:10d} {r.vcis_used:6d} {str(r.correct):>8}")

    # Partitioned communication supports face exchanges only (Lesson 15):
    # run it on the 5-point variant next to the others for context.
    print("\n== 2D 5-point stencil (partitioned-capable) ==")
    for mech in ("original", "tags", "endpoints", "partitioned"):
        cfg = StencilConfig(mechanism=mech, stencil_points=5, **base)
        r = run_stencil(cfg)
        print(f"{mech:15s} {r.wall_time * 1e6:9.1f}u {r.halo_time * 1e6:9.1f}u "
              f"{r.resources_created:10d} {r.vcis_used:6d} {str(r.correct):>8}")

    print("\n== Lesson 3: resources for a 3D 27-pt stencil, [4,4,4] "
          "threads (64-core node) ==")
    comms = communicators_required_3d27(4, 4, 4)
    chans = min_channels_3d27(4, 4, 4)
    print(f"communicators required : {comms}")
    print(f"channels actually needed: {chans}  (= communicating threads; "
          "what endpoints create)")
    print(f"overhead               : {communicator_overhead_ratio_3d27(4, 4, 4):.1f}x"
          "  (the paper's 14.4x)")


if __name__ == "__main__":
    main()
