#!/usr/bin/env python3
"""Device-initiated communication (Lesson 20, Section III-D).

A GPU-accelerated two-node exchange compared three ways: host-driven
(control returns to the CPU every step), device-triggered partitioned
communication (persistent kernel + lightweight Pready/Parrived), and
hypothetical full device-side MPI (expensive matching on the GPU).

Run:  python examples/device_offload.py
"""

from repro.apps.device import DeviceConfig, DeviceParams, run_device


def main():
    """Run the device-offload example end to end."""
    print("== GPU-offload proxy: 8 thread blocks, 6 timesteps ==")
    for mech in ("host-driven", "device-partitioned", "device-mpi"):
        r = run_device(DeviceConfig(mechanism=mech, blocks=8, timesteps=6))
        print(f"  {r}  correct={r.correct}")

    print("""
Lesson 20 in action:
 - 'device-partitioned' wins: Psend/Precv_init ran on the CPU before the
   (single) kernel launch; GPU threads only ring lightweight triggers.
 - 'host-driven' pays a kernel launch + sync every step.
 - 'device-mpi' pays the GPU matching-engine cost on every call [45].
 - The caveat the paper highlights is also visible: even the partitioned
   variant returns control to the host once per step for MPI_Wait/Start.""")

    print("== sensitivity: 4x slower kernel launch ==")
    slow = DeviceParams(kernel_launch=32e-6)
    for mech in ("host-driven", "device-partitioned"):
        r = run_device(DeviceConfig(mechanism=mech, blocks=8, timesteps=6,
                                    params=slow))
        print(f"  {r}")
    print("\nPersistent kernels amortize the launch; per-step launches "
          "do not.")


if __name__ == "__main__":
    main()
