#!/usr/bin/env python3
"""Quickstart: the simulated MPI library in five minutes.

Builds a two-node world, exchanges a message, runs a collective, creates
endpoints, and finishes with a miniature Fig 1(a): message rate with the
"original" MPI_THREAD_MULTIPLE approach vs user-visible endpoints.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench import MsgRateConfig, run_msgrate
from repro.mpi.endpoints import comm_create_endpoints
from repro.netsim import ClusterSpec
from repro.runtime import World


def main():
    """Run the five-minute tour of the simulated MPI library."""
    # ------------------------------------------------------------------
    # 1. A world: 2 nodes, 1 MPI process each, described declaratively by
    #    a ClusterSpec (topology="direct" is the default single-hop
    #    fabric; see examples/fat_tree_collectives.py for a routed one).
    #    Application code is written as generators ("simulated threads");
    #    blocking calls use `yield from`, compute time is charged with
    #    `yield proc.compute(...)`.
    # ------------------------------------------------------------------
    world = World(cluster=ClusterSpec(nodes=2, procs_per_node=1))

    def rank0(proc):
        comm = proc.comm_world
        data = np.arange(8, dtype=np.float64)
        yield from comm.Send(data, dest=1, tag=42)

        total = np.zeros(8)
        yield from comm.Allreduce(data, total)
        print(f"  rank 0: allreduce -> {total[:4]} ... "
              f"(simulated t={proc.sim.now * 1e6:.2f} us)")

    def rank1(proc):
        comm = proc.comm_world
        buf = np.zeros(8)
        status = yield from comm.Recv(buf, source=0, tag=42)
        print(f"  rank 1: received {buf[:4]} ... from rank "
              f"{status.source} (tag {status.tag})")
        yield from comm.Allreduce(buf, np.zeros(8))

    print("== point-to-point + collective ==")
    tasks = [world.procs[0].spawn(rank0(world.procs[0])),
             world.procs[1].spawn(rank1(world.procs[1]))]
    world.run_all(tasks)

    # ------------------------------------------------------------------
    # 2. Endpoints: each thread drives its own endpoint — addressed like
    #    MPI-everywhere ranks (Listing 3 of the paper).
    # ------------------------------------------------------------------
    print("\n== user-visible endpoints ==")
    world2 = World(cluster=ClusterSpec(nodes=2, threads_per_proc=3))

    def node(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 3)

        def thread(ep):
            peer = (ep.rank + 3) % 6  # partner endpoint on the other node
            out = np.zeros(4)
            rreq = yield from ep.Irecv(out, peer, tag=0)
            sreq = yield from ep.Isend(np.full(4, float(ep.rank)), peer, 0)
            yield from rreq.wait()
            yield from sreq.wait()
            print(f"  endpoint {ep.rank} <- endpoint {peer}: {out[0]:.0f}")

        yield proc.sim.all_of([proc.spawn(thread(ep)) for ep in eps])

    world2.run_all([p.spawn(node(p)) for p in world2.procs])

    # ------------------------------------------------------------------
    # 3. Mini Fig 1(a): why logically parallel communication matters.
    # ------------------------------------------------------------------
    print("\n== message rate, 8 cores (mini Fig 1a) ==")
    for mode in ("everywhere", "threads-original", "threads-endpoints"):
        r = run_msgrate(MsgRateConfig(mode=mode, cores=8, msgs_per_core=64))
        print(f"  {r}")
    print("\n'threads-original' funnels everything through one VCI and "
          "stays flat;\nendpoints match MPI everywhere — the paper's core "
          "observation.")


if __name__ == "__main__":
    main()
