"""Canonical state capture: every layer's mutable state as one JSON tree.

:func:`capture_state` walks a :class:`~repro.runtime.world.World` and
returns a plain-JSON tree covering the sim kernel (clock, step count,
event heap, live tasks), the RNG streams, every rank's MPI library
(counters, rendezvous handshakes, per-VCI locks/servers/matching queues
including tombstone bookkeeping), the netsim (NIC hardware contexts,
in-flight fabric packets, reliable-transport flows), the fault injector's
decision stream, and the metrics/trace instruments.

The tree is *canonical*: identical simulations at the same step produce
byte-identical :func:`canonical_json` encodings, so :func:`state_digest`
equality is the project's definition of "the same state". Two rules make
that work:

- nothing host-dependent enters the tree — object ids, host clocks and
  the process-global ``Request``/``WireMessage`` allocation counters are
  all excluded (messages are identified by their protocol fields, which
  are a pure function of the simulation);
- floats are serialized by ``repr`` (shortest round-trip form), so digest
  equality is exact float equality, never tolerance-based.

Dict keys are stringified with :func:`canon_key` and every mapping is
emitted sorted, so insertion order never leaks into the digest.
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from collections import deque
from dataclasses import is_dataclass
from typing import Any, Iterable, Optional

import numpy as np

from ..mpi.matching import LinearMatchingEngine, MatchingEngine, PostedRecv
from ..mpi.request import Request
from ..netsim.message import WireMessage
from ..sim.core import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["capture_state", "canonical_json", "state_digest",
           "diff_states", "prune_state", "canon_key", "describe_value",
           "STATE_FORMAT_VERSION"]

#: Version of the state-tree layout itself (bumped whenever the shape of
#: the captured tree changes; see docs/snapshot.md).
#: v2: added the ``topology`` subtree (per-link queue/counter state on
#: worlds built over a routed interconnect; None on direct fabrics).
STATE_FORMAT_VERSION = 2

#: Depth cap for user payload description — deep enough for every wire
#: payload the library produces, shallow enough to stop runaway graphs.
_MAX_DEPTH = 8


def canon_key(key: Any) -> str:
    """Deterministic string form for an arbitrary mapping key."""
    if isinstance(key, str):
        return key
    if isinstance(key, (bool, int, float)) or key is None:
        return repr(key)
    if isinstance(key, enum.Enum):
        return f"{type(key).__name__}.{key.name}"
    if isinstance(key, tuple):
        return "(" + ",".join(canon_key(k) for k in key) + ")"
    return f"<{type(key).__name__}>"


def describe_value(value: Any, depth: int = 0) -> Any:
    """Reduce an arbitrary simulation value to canonical JSON-able form."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if depth >= _MAX_DEPTH:
        return {"__deep__": type(value).__name__}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {"__ndarray__": [list(value.shape), str(value.dtype),
                                hashlib.sha256(data.tobytes()).hexdigest()]}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": [len(value),
                              hashlib.sha256(bytes(value)).hexdigest()]}
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, WireMessage):
        return describe_message(value, depth + 1)
    if isinstance(value, PostedRecv):
        return describe_posted(value, depth + 1)
    if isinstance(value, Request):
        return {"__request__": {"kind": value.kind,
                                "completed": value._completed,
                                "vci": getattr(value.vci, "index", None)}}
    if isinstance(value, Process):
        return {"__task__": {"pid": value._pid, "name": value.name,
                             "alive": value.is_alive}}
    if isinstance(value, Event):
        return {"__event__": {"kind": type(value).__name__,
                              "triggered": value._triggered,
                              "processed": value._processed}}
    if isinstance(value, (list, tuple, deque)):
        return [describe_value(v, depth + 1) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canon_key(v) for v in value)}
    if isinstance(value, dict):
        return {canon_key(k): describe_value(v, depth + 1)
                for k, v in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        fields = {f: describe_value(getattr(value, f), depth + 1)
                  for f in value.__dataclass_fields__}
        return {"__dataclass__": type(value).__name__, "fields": fields}
    return {"__obj__": type(value).__name__}


def describe_message(msg: WireMessage, depth: int = 0) -> dict[str, Any]:
    """Canonical description of one wire message.

    The process-global allocation counter ``msg.seq`` is deliberately
    omitted: it numbers messages across *all* worlds ever built in the
    host process, so two identical simulations constructed at different
    times disagree on it while agreeing on every simulated fact. The
    per-flow ``stream_seq``/``rel_seq`` orderings are pure functions of
    the simulation and identify the message exactly. The rendezvous
    correlation handle ``meta["rid"]`` is a request id from the same
    process-global counter and is omitted for the same reason.
    """
    meta = msg.meta
    if isinstance(meta, dict) and "rid" in meta:
        meta = {k: v for k, v in meta.items() if k != "rid"}
    return {
        "kind": msg.kind.value,
        "src_node": msg.src_node, "dst_node": msg.dst_node,
        "src_rank": msg.src_rank, "dst_rank": msg.dst_rank,
        "context_id": msg.context_id, "tag": msg.tag, "size": msg.size,
        "src_vci": msg.src_vci, "dst_vci": msg.dst_vci,
        "stream_seq": msg.stream_seq,
        "payload": describe_value(msg.payload, depth + 1),
        "meta": describe_value(meta, depth + 1),
        "rel_flow": canon_key(msg.rel_flow) if msg.rel_flow is not None
                    else None,
        "rel_seq": msg.rel_seq,
        "checksum": msg.checksum,
    }


def describe_posted(entry: PostedRecv, depth: int = 0) -> dict[str, Any]:
    """Canonical description of one posted receive (``req.rid`` omitted —
    it comes from the same process-global counter as ``msg.seq``)."""
    return {
        "context_id": entry.context_id, "source": entry.source,
        "tag": entry.tag, "dst_addr": entry.dst_addr, "seq": entry.seq,
        "count": entry.count,
        "buf": describe_value(entry.buf, depth + 1),
    }


def _callback_name(fn: Any) -> str:
    """Stable name for an event callback (bound methods dominate)."""
    owner = getattr(fn, "__self__", None)
    name = getattr(getattr(fn, "__func__", fn), "__qualname__",
                   type(fn).__name__)
    if owner is not None and "." not in name:
        name = f"{type(owner).__name__}.{name}"
    return name


def _describe_heap_event(event: Event) -> dict[str, Any]:
    desc: dict[str, Any] = {"kind": type(event).__name__,
                            "triggered": event._triggered}
    if isinstance(event, Timeout):
        desc["delay"] = event.delay
    if isinstance(event, Process):
        desc["task"] = {"pid": event._pid, "name": event.name}
    if event._exc is not None:
        desc["exc"] = type(event._exc).__name__
    if event._value is not None:
        desc["value"] = describe_value(event._value, 1)
    if event.callbacks:
        desc["callbacks"] = [_callback_name(fn) for fn in event.callbacks]
    return desc


def _kernel_state(sim: Any) -> dict[str, Any]:
    # ``pending_entries()`` is the engine-agnostic schedule view: both the
    # heap and the calendar engine (REPRO_SIM_ENGINE) yield identical
    # (when, prio, seq, event) entries here, which is what makes state
    # digests comparable across engines.
    heap = [[when, prio, seq, _describe_heap_event(ev)]
            for when, prio, seq, ev in sim.pending_entries()]
    tasks = {}
    for pid, proc in sorted(sim._processes.items()):
        target = proc._waiting_on
        if target is None:
            waiting = "unresumed"
        elif isinstance(target, Process):
            waiting = f"join:{target.name}"
        else:
            waiting = type(target).__name__
        tasks[str(pid)] = {"name": proc.name, "waiting_on": waiting}
    return {"now": sim._now, "steps": sim.steps, "seq": sim._seq,
            "next_pid": sim._next_pid, "heap": heap, "tasks": tasks}


def _server_state(server: Any) -> dict[str, Any]:
    stats = server.stats
    return {"free_at": server._free_at, "requests": stats.requests,
            "busy_time": stats.busy_time,
            "total_queue_delay": stats.total_queue_delay}


def _lock_state(lock: Any) -> dict[str, Any]:
    stats = lock.stats
    return {"locked": lock.locked, "waiters": len(lock._waiters),
            "acquisitions": stats.acquisitions,
            "contended": stats.contended_acquisitions,
            "total_wait_time": stats.total_wait_time,
            "total_hold_time": stats.total_hold_time,
            "max_queue_length": stats.max_queue_length}


def _indexed_queue(records: Iterable[list]) -> list[Any]:
    """Live records of an indexed bucket map, in engine-sequence order."""
    live = [rec for rec in records if rec[2]]
    live.sort(key=lambda rec: rec[0])
    return [describe_value(rec[1], 1) for rec in live]


def engine_state(engine: Any) -> dict[str, Any]:
    """Canonical matching-engine state, comparable across implementations.

    The logical queues (live posted receives and unexpected messages in
    FIFO order) and the analytic counters are identical between the
    indexed and linear engines by PR 3's equivalence property, so they
    form the comparable core; implementation-private bookkeeping
    (tombstone counts, wildcard side-index state) goes under
    ``internals`` where :func:`repro.snap.bisect.first_divergence` can
    exclude it when comparing different engine configurations.
    """
    state: dict[str, Any] = {
        "max_posted_depth": engine.max_posted_depth,
        "max_unexpected_depth": engine.max_unexpected_depth,
        "total_scans": engine.total_scans,
    }
    if isinstance(engine, MatchingEngine):
        posted: list[list] = []
        for bucket in engine._po_buckets.values():
            posted.extend(rec for rec in bucket if rec[2])
        posted.sort(key=lambda rec: rec[0])
        unexpected: list[list] = []
        for bucket in engine._ux_full.values():
            unexpected.extend(rec for rec in bucket if rec[2])
        unexpected.sort(key=lambda rec: rec[0])
        state["posted"] = [describe_value(rec[1], 1) for rec in posted]
        state["unexpected"] = [describe_value(rec[1], 1)
                               for rec in unexpected]
        state["internals"] = {
            "impl": "indexed",
            "po_seq": engine._po_seq, "ux_seq": engine._ux_seq,
            "po_dead": engine._po_dead, "ux_dead": engine._ux_dead,
            "po_wild": [engine._po_w_src, engine._po_w_tag,
                        engine._po_w_both],
            "ux_wild": engine._ux_wild,
        }
    elif isinstance(engine, LinearMatchingEngine):
        state["posted"] = [describe_value(e, 1) for e in engine.posted]
        state["unexpected"] = [describe_value(m, 1)
                               for m in engine.unexpected]
        state["internals"] = {"impl": "linear", "po_seq": engine._po_seq}
    else:  # future engines degrade to their public queue depths
        state["posted"] = [{"__depth__": engine.posted_depth}]
        state["unexpected"] = [{"__depth__": engine.unexpected_depth}]
        state["internals"] = {"impl": type(engine).__name__}
    return state


def _transport_state(transport: Any) -> Optional[dict[str, Any]]:
    if transport is None:
        return None
    inflight = {}
    for flow, pending in transport._inflight.items():
        inflight[canon_key(flow)] = [
            [seq, rec.retries, rec.acked, describe_message(rec.msg, 1)]
            for seq, rec in sorted(pending.items())]
    recv = {}
    for flow, st in transport._recv.items():
        recv[canon_key(flow)] = {
            "next_seq": st.next_seq,
            "buffer": [[seq, describe_message(m, 1)]
                       for seq, m in sorted(st.buffer.items())]}
    return {
        "send_seq": {canon_key(f): s
                     for f, s in transport._send_seq.items()},
        "inflight": inflight, "recv": recv,
        "data_sent": transport.data_sent,
        "retransmits": transport.retransmits,
        "acks_sent": transport.acks_sent,
        "acks_received": transport.acks_received,
        "dup_suppressed": transport.dup_suppressed,
        "corrupt_dropped": transport.corrupt_dropped,
        "ooo_buffered": transport.ooo_buffered,
    }


def _context_state(ctx: Any) -> dict[str, Any]:
    return {"index": ctx.index, "messages_issued": ctx.messages_issued,
            "bytes_issued": ctx.bytes_issued, "sharers": ctx.sharers,
            "jitter_state": ctx._jitter_state,
            "failovers_in": ctx.failovers_in,
            "stall_waits": ctx.stall_waits,
            "injector": _server_state(ctx.injector),
            "doorbell": _lock_state(ctx.doorbell_lock)}


def _proc_state(proc: Any) -> dict[str, Any]:
    lib = proc.lib
    vcis = {}
    for index in sorted(lib.vci_pool._vcis):
        vci = lib.vci_pool._vcis[index]
        vcis[str(index)] = {
            "sends": vci.sends, "recvs": vci.recvs,
            "lock": _lock_state(vci.lock),
            "match_server": _server_state(vci.match_server),
            "hw_context": vci.hw_context.index,
            "engine": engine_state(vci.engine),
        }
    return {
        "sends_posted": lib.sends_posted,
        "recvs_posted": lib.recvs_posted,
        "recvs_completed": lib.recvs_completed,
        "bytes_sent": lib.bytes_sent,
        "next_ep_vci": lib._next_ep_vci,
        "rndv_sends": [describe_value(st, 1)
                       for st in lib._rndv_sends.values()],
        "rndv_recvs": [describe_posted(entry, 1)
                       for entry in lib._rndv_recvs.values()],
        "vcis": vcis,
        "transport": _transport_state(lib.transport),
    }


def _rng_state(rng: Any) -> dict[str, Any]:
    streams = {}
    for name in sorted(rng._streams):
        st = rng._streams[name].bit_generator.state
        streams[name] = describe_value(st, 1)
    return {"seed": rng.seed, "streams": streams}


def _trace_state(tracer: Any) -> Optional[dict[str, Any]]:
    if not tracer.enabled:
        return None
    digest = hashlib.sha256()
    for rec in tracer.records:
        payload = rec.payload
        if isinstance(payload, dict) and "seq" in payload:
            # The wire sequence number (fault-injector payloads) is a
            # process-global counter spanning all worlds, like the ids
            # describe_message() omits — drop it so trace digests compare
            # across builds within one process.
            payload = {k: v for k, v in payload.items() if k != "seq"}
        entry = [rec.time, rec.category.name, describe_value(payload, 1)]
        digest.update(canonical_json(entry).encode("utf-8"))
        digest.update(b"\n")
    return {"records": len(tracer.records), "span_seq": tracer._span_seq,
            "records_digest": digest.hexdigest()}


def _topology_state(topology: Any) -> Optional[dict[str, Any]]:
    """Per-link queue and counter state of a routed interconnect.

    ``None`` for direct (single-hop) worlds, keeping their trees — and
    digests — identical whether built through ``ClusterSpec`` or the
    legacy ``cfg=`` path.
    """
    if topology is None:
        return None
    return {
        "name": topology.name,
        "num_hosts": topology.num_hosts,
        "links": {link.name: {"messages": link.messages,
                              "bytes": link.bytes,
                              **_server_state(link.server)}
                  for link in topology.links()},
    }


def capture_state(world: Any) -> dict[str, Any]:
    """The full canonical state tree of a world at the current step.

    Pure observation: captures between kernel steps schedule no events,
    advance no sequence numbers, and touch no RNG, so a run interleaved
    with captures is byte-identical to an uninterrupted one.
    """
    match = re.match(r"count\((\d+)", repr(world._next_context))
    meetings = {canon_key(k): {"arrived": m.arrived, "expected": m.expected}
                for k, m in world._meetings.items()}
    state: dict[str, Any] = {
        "format": STATE_FORMAT_VERSION,
        "kernel": _kernel_state(world.sim),
        "rng": _rng_state(world.rng),
        "world": {
            "num_nodes": world.num_nodes,
            "procs_per_node": world.procs_per_node,
            "threads_per_proc": world.threads_per_proc,
            "max_vcis_per_proc": world.max_vcis_per_proc,
            "next_context": int(match.group(1)) if match else None,
            "meetings": meetings,
        },
        "procs": {str(p.rank): _proc_state(p) for p in world.procs},
        "nics": {str(node.node_id): {
                     "next": node.nic._next,
                     "contexts": [_context_state(c)
                                  for c in node.nic.contexts]}
                 for node in world.nodes},
        "fabric": {
            "messages_delivered": world.fabric.messages_delivered,
            "bytes_delivered": world.fabric.bytes_delivered,
            "ingress": {str(n): _server_state(s)
                        for n, s in sorted(world.fabric._ingress.items())},
            "egress": {str(n): _server_state(s)
                       for n, s in sorted(world.fabric._egress.items())},
        },
        "topology": _topology_state(getattr(world.fabric, "topology", None)),
        "faults": None, "metrics": None, "trace": None, "check": None,
    }
    if world.injector is not None:
        inj = world.injector
        state["faults"] = {"rng_state": inj._state, "seed": inj.seed,
                           **inj.summary()}
    # Conditional, like the topology subtree's None: worlds without
    # background traffic keep their pre-traffic trees and digests.
    if getattr(world, "traffic", None) is not None:
        state["traffic"] = {"seed": world.traffic.seed,
                            "flow_table": [list(f) for f in
                                           world.traffic.flow_table],
                            **world.traffic.summary()}
    if world.metrics.enabled:
        state["metrics"] = describe_value(world.metrics.snapshot(), 1)
    state["trace"] = _trace_state(world.tracer)
    if world.checker is not None:
        chk = world.checker
        state["check"] = {
            "violations": [[v.rule_id, v.time, v.task]
                           for v in chk.violations],
            "dropped": chk.dropped,
        }
    return state


def canonical_json(state: Any) -> str:
    """The byte-stable encoding the digest is computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def state_digest(state: Any) -> str:
    """SHA-256 over :func:`canonical_json`; equality == identical state."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def diff_states(a: Any, b: Any, prefix: str = "",
                limit: int = 40) -> list[str]:
    """Paths at which two state trees differ (bounded, depth-first)."""
    out: list[str] = []
    _diff(a, b, prefix or "$", out, limit)
    return out


def _diff(a: Any, b: Any, path: str, out: list[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path}: {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: only in b")
            elif key not in b:
                out.append(f"{path}.{key}: only in a")
            else:
                _diff(a[key], b[key], f"{path}.{key}", out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (va, vb) in enumerate(zip(a, b)):
            _diff(va, vb, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
        return
    if a != b and not (a != a and b != b):  # NaN == NaN for our purposes
        out.append(f"{path}: {a!r} != {b!r}")


def prune_state(state: Any, ignore: Iterable[str],
                _path: str = "$") -> Any:
    """Copy of a state tree with any path containing an ``ignore``
    substring removed — the comparison projection used by bisect."""
    ignore = tuple(ignore)
    if not ignore:
        return state
    if isinstance(state, dict):
        out = {}
        for key, value in state.items():
            path = f"{_path}.{key}"
            if any(tok in path for tok in ignore):
                continue
            out[key] = prune_state(value, ignore, path)
        return out
    if isinstance(state, list):
        return [prune_state(v, ignore, f"{_path}[{i}]")
                for i, v in enumerate(state)]
    return state
