"""Restore: rebuild from the recipe, fast-forward, verify byte-identity.

Python generators cannot be serialized, so a snapshot cannot reload task
frames directly. Restore instead exploits the kernel's determinism: the
builder re-creates the world exactly as the original run did (same
config, same seed, same spawned workload), :func:`fast_forward` replays
the event loop to the snapshot's kernel step, and the re-captured state
must match the snapshot digest byte-for-byte — otherwise
:class:`~repro.errors.SnapshotMismatchError` names the divergent paths.
Within one ``repro replay`` invocation, :mod:`repro.snap.fork` keeps
*live* checkpoints instead, which resume without re-executing the prefix.
"""

from __future__ import annotations

import gc
from typing import Any, Callable, Optional

from ..errors import SnapshotMismatchError
from .snapshot import Snapshot
from .state import capture_state, diff_states, state_digest

__all__ = ["fast_forward", "restore_snapshot"]

#: Events per fast-forward slice; boundaries are invisible to the
#: simulation so the size only tunes host-side loop overhead.
_FF_CHUNK = 8192


def fast_forward(world: Any, step: int,
                 clock: Optional[float] = None) -> None:
    """Advance a freshly built world to exactly ``step`` kernel steps.

    ``clock`` re-applies the horizon clamp of ``run(until=<time>)``: a
    snapshot taken after such a run can hold a clock strictly beyond the
    last processed event, which replaying events alone cannot reproduce.
    """
    sim = world.sim
    if sim.steps > step:
        raise SnapshotMismatchError(
            f"world already at step {sim.steps}, past snapshot step {step} "
            "(restore needs a freshly built world)")
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while sim.steps < step:
            n = sim.run_steps(min(_FF_CHUNK, step - sim.steps))
            if n == 0:
                raise SnapshotMismatchError(
                    f"simulation ran out of events at step {sim.steps}, "
                    f"before snapshot step {step} — the rebuilt workload "
                    "does not match the snapshot's recipe")
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect(0)
    if clock is not None and clock > sim._now:
        sim._now = clock


def restore_snapshot(snap: Snapshot, build: Callable[[], Any],
                     verify: bool = True) -> Any:
    """Rebuild via ``build()``, fast-forward, and verify the digest.

    ``build`` must return a world with the original workload already
    spawned (tasks pending on the heap) — exactly the state the original
    builder produced before its first ``run``. Returns the restored
    world, positioned at ``snap.step`` and proven byte-identical to the
    captured state; with ``verify=False`` the (cheaper) capture/compare
    pass is skipped.
    """
    world = build()
    fast_forward(world, snap.step, snap.clock)
    if verify:
        state = capture_state(world)
        digest = state_digest(state)
        if digest != snap.digest:
            paths = diff_states(snap.state, state)
            detail = "\n  ".join(paths[:12]) or "(no structural diff)"
            raise SnapshotMismatchError(
                f"restored state diverges from snapshot at step "
                f"{snap.step}: digest {digest[:12]} != {snap.digest[:12]}"
                f"\n  {detail}", paths=paths)
    return world
