"""First-divergence search between two simulation configurations.

:func:`first_divergence` runs two freshly built worlds in lockstep,
comparing canonical state digests at interval boundaries; when a window
diverges it rebuilds both and walks that window one kernel step at a
time, returning the exact first step whose states differ and the state
paths that differ there. Typical uses: linear vs indexed matching
engines (pass ``ignore=("engine.internals",)`` to compare the logical
queues only), faults-on vs faults-off, or two seeds of the same config.

Builders must be repeatable: each call returns a new world with the
workload already spawned (tasks pending on the heap, nothing run yet) —
the refinement pass rebuilds both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .state import capture_state, diff_states, prune_state, state_digest

__all__ = ["Divergence", "first_divergence"]


@dataclass
class Divergence:
    """The first kernel step at which two configurations differ."""

    step: int                 # first step whose post-state differs
    clock_a: float
    clock_b: float
    digest_a: str
    digest_b: str
    paths: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human report."""
        lines = [f"first divergence after kernel step {self.step}",
                 f"  clock a={self.clock_a:.9f}s b={self.clock_b:.9f}s",
                 f"  digest a={self.digest_a[:16]} b={self.digest_b[:16]}"]
        lines.extend(f"  {p}" for p in self.paths[:16])
        if len(self.paths) > 16:
            lines.append(f"  ... and {len(self.paths) - 16} more paths")
        return "\n".join(lines)


def _capture(world: Any, ignore: tuple[str, ...]) -> tuple[str, dict]:
    state = prune_state(capture_state(world), ignore)
    return state_digest(state), state


def _advance_to(world: Any, step: int) -> None:
    sim = world.sim
    while sim.steps < step:
        if sim.run_steps(min(8192, step - sim.steps)) == 0:
            break


def first_divergence(build_a: Callable[[], Any],
                     build_b: Callable[[], Any], *,
                     interval: int = 256,
                     max_steps: int = 1_000_000,
                     ignore: Iterable[str] = ()) -> Optional[Divergence]:
    """Locate the first step at which the two configs' states differ.

    Returns ``None`` when both runs complete (or ``max_steps`` is hit)
    with byte-identical pruned states throughout. ``ignore`` drops state
    paths containing any given substring before comparison.
    """
    if interval < 1:
        raise ValueError("interval must be >= 1")
    ignore = tuple(ignore)
    world_a, world_b = build_a(), build_b()
    digest_a, state_a = _capture(world_a, ignore)
    digest_b, state_b = _capture(world_b, ignore)
    if digest_a != digest_b:
        return Divergence(step=0, clock_a=world_a.sim._now,
                          clock_b=world_b.sim._now, digest_a=digest_a,
                          digest_b=digest_b,
                          paths=diff_states(state_a, state_b))
    agreed = 0  # both sides byte-identical after this many steps
    while agreed < max_steps:
        span = min(interval, max_steps - agreed)
        n_a = world_a.sim.run_steps(span)
        n_b = world_b.sim.run_steps(span)
        digest_a, _ = _capture(world_a, ignore)
        digest_b, _ = _capture(world_b, ignore)
        if n_a != n_b or digest_a != digest_b:
            break
        if n_a == 0:
            return None  # both complete, never diverged
        agreed += n_a
    else:
        return None  # max_steps reached while still identical
    # Refine: rebuild, replay the agreed prefix, then single-step.
    world_a, world_b = build_a(), build_b()
    _advance_to(world_a, agreed)
    _advance_to(world_b, agreed)
    while True:
        n_a = world_a.sim.run_steps(1)
        n_b = world_b.sim.run_steps(1)
        digest_a, state_a = _capture(world_a, ignore)
        digest_b, state_b = _capture(world_b, ignore)
        if n_a != n_b or digest_a != digest_b:
            paths = diff_states(state_a, state_b)
            if n_a != n_b:
                paths.insert(0, f"$.completion: a ran {n_a} event(s), "
                                f"b ran {n_b}")
            return Divergence(step=world_a.sim.steps,
                              clock_a=world_a.sim._now,
                              clock_b=world_b.sim._now,
                              digest_a=digest_a, digest_b=digest_b,
                              paths=paths)
        if n_a == 0:  # should not happen: the window diverged above
            return None
