"""Snapshot/restore and deterministic record-replay.

The robustness primitive behind long deterministic campaigns (see
docs/snapshot.md): capture the full canonical state of a running
simulation (:func:`capture_state`), persist it versioned
(:class:`Snapshot`), prove restores byte-identical
(:func:`restore_snapshot`), jump a live run back to a parked fork
checkpoint (``python -m repro replay``), and locate the first step at
which two configurations diverge (:func:`first_divergence`).
"""

from .bisect import Divergence, first_divergence
from .replay import ReplayController, ReplayResult, ReplayStop, run_replay
from .restore import fast_forward, restore_snapshot
from .session import (
    SnapController,
    default_snap_controller,
    recording,
    set_default_snap_controller,
)
from .snapshot import (
    SNAP_VERSION,
    Snapshot,
    load_snapshot,
    save_snapshot,
    take_snapshot,
)
from .state import (
    STATE_FORMAT_VERSION,
    capture_state,
    canonical_json,
    diff_states,
    prune_state,
    state_digest,
)

__all__ = [
    "SNAP_VERSION", "STATE_FORMAT_VERSION",
    "Snapshot", "take_snapshot", "save_snapshot", "load_snapshot",
    "capture_state", "canonical_json", "state_digest", "diff_states",
    "prune_state",
    "fast_forward", "restore_snapshot",
    "SnapController", "recording", "default_snap_controller",
    "set_default_snap_controller",
    "ReplayController", "ReplayResult", "ReplayStop", "run_replay",
    "Divergence", "first_divergence",
]
