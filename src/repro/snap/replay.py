"""Record-replay: run a program, checkpoint it live, jump to a target.

``python -m repro replay <prog> --until T`` (or ``--to-finding CHK###``)
runs an unmodified program under a :class:`ReplayController`: worlds
execute in slices, a forked live checkpoint is parked at every interval
boundary, and when the target is reached the *nearest* checkpoint is
woken and re-executes deterministically to the exact target step — never
from t=0. The woken child captures the state there, saves it as a
versioned snapshot, and the parent verifies the reproduction:

- ``--until``: the child's state digest must equal the parent's at the
  same step (byte-identity of the replay);
- ``--to-finding``: the same checker rule must re-fire at the same step
  in the child (the finding is reproduced from the checkpoint).
"""

from __future__ import annotations

import runpy
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

from .fork import ForkCheckpoints, fork_available
from .session import SnapController, recording
from .snapshot import Snapshot, save_snapshot, take_snapshot
from .state import capture_state, state_digest

__all__ = ["ReplayStop", "ReplayResult", "ReplayController", "run_replay"]


class ReplayStop(BaseException):
    """Raised to unwind the replayed program once the target is resolved.

    A ``BaseException`` so application-level ``except Exception`` blocks
    in the program cannot swallow it.
    """


@dataclass
class ReplayResult:
    """What the replay established (one per resolved target)."""

    reason: str                       # "until" | "finding"
    step: int                         # target kernel step
    clock: float                      # simulated time there
    resumed_from_step: Optional[int]  # checkpoint step, None = ran from 0
    steps_replayed: int               # events the woken child re-executed
    digest: str                       # state digest at the target
    verified: bool                    # reproduction proof (see module doc)
    finding: Optional[dict[str, Any]] = None
    snapshot_path: Optional[str] = None
    detail: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Multi-line human report."""
        lines = [f"replay target: {self.reason} at step {self.step} "
                 f"(t={self.clock:.9f}s)"]
        if self.resumed_from_step is None:
            lines.append("resumed from: start of run (no earlier "
                         "checkpoint)")
        else:
            lines.append(f"resumed from: live checkpoint at step "
                         f"{self.resumed_from_step} "
                         f"({self.steps_replayed} of {self.step} events "
                         "re-executed)")
        if self.finding is not None:
            lines.append(f"finding: {self.finding.get('rule')} "
                         f"\"{self.finding.get('message', '')}\" "
                         f"[task={self.finding.get('task')}]")
        lines.append(f"state digest: {self.digest[:16]}")
        lines.append(f"reproduction verified: {self.verified}")
        if self.snapshot_path:
            lines.append(f"snapshot written: {self.snapshot_path}")
        return "\n".join(lines)


class ReplayController(SnapController):
    """Drives the recorded run and resolves the replay target."""

    def __init__(self, until: Optional[float] = None,
                 to_finding: Optional[str] = None,
                 interval: int = 20_000, keep: int = 8,
                 snapshot_path: Optional[str] = None,
                 recipe: Optional[dict[str, Any]] = None,
                 live: bool = True):
        super().__init__(interval=interval)
        if (until is None) == (to_finding is None):
            raise ValueError(
                "replay needs exactly one of until= / to_finding=")
        self.until = until
        self.to_finding = to_finding.upper() if to_finding else None
        self.stop_horizon = until
        self.snapshot_path = snapshot_path
        self.recipe = dict(recipe or {})
        self.live = live and fork_available()
        self.keep = keep
        self.result: Optional[ReplayResult] = None
        self._forks: Optional[ForkCheckpoints] = None
        self._world = None
        self._finding: Optional[dict[str, Any]] = None

    # -- wiring ----------------------------------------------------------
    def attach(self, world) -> None:
        super().attach(world)
        if self.to_finding is not None and world.checker is not None:
            prev = world.checker.on_violation

            def observe(violation, _prev=prev, _world=world):
                if _prev is not None:
                    _prev(violation)
                self._note_violation(_world, violation)

            world.checker.on_violation = observe

    def _note_violation(self, world, violation) -> None:
        if self._finding is not None or self.result is not None:
            return
        if violation.rule_id.upper() != self.to_finding:
            return
        self._finding = {"rule": violation.rule_id,
                         "message": violation.message,
                         "task": violation.task,
                         "time": violation.time,
                         "step": world.sim.steps}

    # -- drive hooks -------------------------------------------------------
    def drive(self, world, until=None, max_steps=None) -> Any:
        # Checkpoints park per driven run: a program that builds several
        # worlds gets a fresh recording for each until one resolves.
        if self.result is None:
            if self._forks is not None:
                self._forks.discard_all()
            self._forks = ForkCheckpoints(self.keep) if self.live else None
            self._world = world
            self._finding = None
            if self._forks is not None:
                # Park an initial checkpoint so even a target inside the
                # first interval resumes from a fork, not a re-run.
                self._forks.take(world.sim.steps,
                                 lambda cmd: self._serve_child(world, cmd))
        return super().drive(world, until, max_steps)

    def on_boundary(self, world) -> None:
        super().on_boundary(world)
        if self._forks is not None and world is self._world \
                and self.result is None:
            self._forks.take(world.sim.steps,
                             lambda cmd: self._serve_child(world, cmd))

    def after_slice(self, world) -> None:
        if self._finding is not None and self.result is None:
            self._resolve(world, self._finding["step"], "finding")

    def on_stop_horizon(self, world) -> None:
        if self.result is None:
            self._resolve(world, world.sim.steps, "until")

    # -- resolution --------------------------------------------------------
    def _resolve(self, world, target_step: int, reason: str) -> None:
        original_finding = self._finding
        parent_digest = None
        if reason == "until":
            # Parent stopped exactly at the target step; its digest is the
            # reference the replayed child must reproduce.
            parent_digest = state_digest(capture_state(world))
        checkpoint = self._forks.nearest(target_step) \
            if self._forks is not None else None
        checkpoint_steps = self._forks.steps \
            if self._forks is not None else []
        if checkpoint is not None:
            child = self._forks.resume(checkpoint, {
                "target_step": target_step, "reason": reason})
            if "error" in child:
                self._forks.discard_all()
                raise RuntimeError(f"replay child failed: {child['error']}")
            resumed_from: Optional[int] = checkpoint.step
            clock, digest = child["clock"], child["digest"]
            replayed = child["steps_replayed"]
            path = child.get("snapshot_path")
            if reason == "until":
                verified = digest == parent_digest
            else:
                refire = child.get("finding")
                verified = (refire is not None
                            and refire["rule"] == original_finding["rule"]
                            and refire["step"] == target_step)
        else:
            # Live checkpoints unavailable: the recording itself is the
            # only evidence. For "until" the parent sits exactly at the
            # target; for a finding it has overrun to the slice boundary,
            # so the capture is best-effort and marked unverified.
            resumed_from = None
            snap = take_snapshot(world, recipe=self.recipe)
            path = save_snapshot(snap, self.snapshot_path) \
                if self.snapshot_path else None
            clock, digest = world.sim._now, snap.digest
            replayed = world.sim.steps
            verified = reason == "until"
        if self._forks is not None:
            self._forks.discard_all()
        self.result = ReplayResult(
            reason=reason, step=target_step, clock=clock,
            resumed_from_step=resumed_from, steps_replayed=replayed,
            digest=digest, verified=verified,
            finding=original_finding if reason == "finding" else None,
            snapshot_path=path,
            detail={"parent_digest": parent_digest,
                    "checkpoints": checkpoint_steps})
        raise ReplayStop()

    def _serve_child(self, world,
                     command: dict[str, Any]) -> dict[str, Any]:
        """Advance to the target step and capture (runs in the woken
        child for real resumes, in the parent when no checkpoint
        precedes the target)."""
        sim = world.sim
        resumed_from = sim.steps
        self._finding = None  # re-observe the finding during the replay
        target = int(command["target_step"])
        while sim.steps < target:
            if sim.run_steps(min(8192, target - sim.steps)) == 0:
                return {"error": f"ran out of events at step {sim.steps} "
                                 f"replaying to {target}"}
        snap = take_snapshot(world, recipe=self.recipe)
        path = None
        if self.snapshot_path:
            path = save_snapshot(snap, self.snapshot_path)
        return {"clock": sim._now, "digest": snap.digest,
                "steps_replayed": target - resumed_from,
                "finding": self._finding, "snapshot_path": path}


def run_replay(program: str, argv: list[str], *,
               until: Optional[float] = None,
               to_finding: Optional[str] = None,
               interval: int = 20_000, keep: int = 8,
               snapshot_path: Optional[str] = None,
               live: bool = True,
               check_config: Optional[Any] = None
               ) -> tuple[Optional[ReplayResult], int]:
    """Run ``program`` under replay; returns (result, program_status).

    ``--to-finding`` replays need the checker: ``check_config`` (default
    warn-mode) is installed as the session default exactly as ``repro
    check`` does, so unmodified programs run checked.
    """
    from contextlib import ExitStack

    controller = ReplayController(
        until=until, to_finding=to_finding, interval=interval, keep=keep,
        snapshot_path=snapshot_path, live=live,
        recipe={"program": program, "argv": list(argv),
                "until": until, "to_finding": to_finding})
    status = 0
    old_argv = sys.argv
    try:
        with ExitStack() as stack:
            stack.enter_context(recording(controller))
            if to_finding is not None:
                from ..check import CheckConfig, checking
                stack.enter_context(checking(
                    check_config
                    or CheckConfig(mode="warn", emit_warnings=False)))
            sys.argv = [program] + list(argv)
            try:
                runpy.run_path(program, run_name="__main__")
            except ReplayStop:
                pass
            except SystemExit as exc:
                if exc.code not in (None, 0):
                    status = exc.code if isinstance(exc.code, int) else 1
    finally:
        sys.argv = old_argv
        if controller._forks is not None:
            controller._forks.discard_all()
    return controller.result, status
