"""Snapshot sessions: sliced execution of unmodified programs.

Mirrors :mod:`repro.check.session`: a process-wide default controller is
installed by :func:`recording` (or the ``repro replay`` CLI), and every
:class:`~repro.runtime.world.World` built while it is active attaches
itself. The world then routes ``run``/``run_all`` through
:meth:`SnapController.drive`, which executes the event loop in slices of
``interval`` kernel steps and fires checkpoint hooks at the boundaries.

Slicing is invisible to the simulation: the kernel's
:meth:`~repro.sim.core.Simulator.run_steps` pops the same events in the
same order as an uninterrupted run, boundaries schedule nothing, and
captures only read state — so a checkpointed run is byte-identical to a
bare one (property-tested in ``tests/test_snap_property.py``).
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..sim.core import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.world import World

__all__ = ["SnapController", "recording", "default_snap_controller",
           "set_default_snap_controller"]

_default_controller: Optional["SnapController"] = None


def set_default_snap_controller(ctrl: Optional["SnapController"]) -> None:
    """Install (or clear, with ``None``) the session controller."""
    global _default_controller
    _default_controller = ctrl


def default_snap_controller() -> Optional["SnapController"]:
    """The controller a new ``World`` should attach to, if any."""
    return _default_controller


class SnapController:
    """Drives worlds in fixed-size step slices with boundary hooks.

    ``interval`` is the checkpoint cadence in kernel steps. Boundary
    hooks run whenever the global step count crosses a multiple of the
    interval; subclasses add stop conditions (:mod:`repro.snap.replay`)
    or one-shot captures (the property tests).
    """

    def __init__(self, interval: int = 20_000):
        if interval < 1:
            raise ValueError("snapshot interval must be >= 1 step")
        self.interval = interval
        self.worlds: list["World"] = []
        self._hooks: list[Callable[["World"], None]] = []
        #: Optional simulated-time stop (used by replay ``--until``): the
        #: drive loop never processes an event scheduled beyond it and
        #: calls :meth:`on_stop_horizon` at the exact step boundary.
        self.stop_horizon: Optional[float] = None

    # -- wiring ---------------------------------------------------------
    def attach(self, world: "World") -> None:
        """Called by ``World.__init__`` while this controller is default."""
        self.worlds.append(world)

    def add_boundary_hook(self, fn: Callable[["World"], None]) -> None:
        """Run ``fn(world)`` at every interval boundary during drives."""
        self._hooks.append(fn)

    # -- subclass extension points --------------------------------------
    def on_boundary(self, world: "World") -> None:
        """Interval boundary reached (between steps; state is quiescent)."""
        for fn in self._hooks:
            fn(world)

    def after_slice(self, world: "World") -> None:
        """Called after every slice, boundary or not (stop-condition
        checks that must react to mid-slice observations)."""

    def on_stop_horizon(self, world: "World") -> None:
        """The drive stopped because ``stop_horizon`` was reached."""

    # -- the drive loop --------------------------------------------------
    def drive(self, world: "World", until: Optional[float | Event] = None,
              max_steps: Optional[int] = None) -> Any:
        """Sliced equivalent of ``world.sim.run(until, max_steps)``.

        Event order, deadlock detection and the float-horizon clock clamp
        all match :meth:`repro.sim.core.Simulator.run` exactly.
        """
        sim = world.sim
        start_steps = sim.steps
        target: Optional[Event] = None
        horizon: Optional[float] = None
        if isinstance(until, Event):
            target = until
        elif until is not None:
            horizon = float(until)
        limit = horizon
        if self.stop_horizon is not None:
            limit = self.stop_horizon if limit is None \
                else min(limit, self.stop_horizon)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if target is not None and target._processed:
                    return target.value
                next_time = sim.peek_time()
                if next_time is None:
                    if target is not None:
                        raise SimulationError(sim._deadlock_report())
                    break
                if limit is not None and next_time > limit:
                    if limit == self.stop_horizon and \
                            (horizon is None or limit < horizon):
                        self.on_stop_horizon(world)
                    break
                budget = self.interval - sim.steps % self.interval
                if max_steps is not None:
                    done = sim.steps - start_steps
                    if done >= max_steps:
                        raise SimulationError(
                            f"exceeded max_steps={max_steps}")
                    budget = min(budget, max_steps - done)
                n = sim.run_steps(budget, horizon=limit, stop_event=target)
                if n and sim.steps % self.interval == 0:
                    self.on_boundary(world)
                self.after_slice(world)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect(0)
        if horizon is not None and sim._now < horizon:
            sim._now = horizon
        return None


@contextmanager
def recording(ctrl: Optional[SnapController] = None
              ) -> Iterator[SnapController]:
    """Attach every World built in this block to ``ctrl``.

    >>> with recording(SnapController(interval=4096)) as ctrl:
    ...     main()          # worlds run sliced, hooks fire at boundaries
    """
    ctrl = ctrl or SnapController()
    prev = _default_controller
    set_default_snap_controller(ctrl)
    try:
        yield ctrl
    finally:
        set_default_snap_controller(prev)
