"""Versioned snapshot records and their on-disk form.

A :class:`Snapshot` binds a *recipe* (how to rebuild the simulation: the
program or builder, its arguments, the seed) to the canonical state tree
captured at one kernel step and that tree's digest. Restore rebuilds from
the recipe and deterministically fast-forwards to the step — the digest
then proves the rebuilt world is byte-identical (see
:mod:`repro.snap.restore` and docs/snapshot.md for what is and isn't
captured).

Snapshot files are deterministic: saving the same snapshot twice yields
identical bytes (no host timestamps), so files themselves can be compared
byte-for-byte in tests.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SnapshotFormatError
from .state import STATE_FORMAT_VERSION, capture_state, state_digest

__all__ = ["SNAP_VERSION", "Snapshot", "take_snapshot", "save_snapshot",
           "load_snapshot"]

#: On-disk format version. Bump on any incompatible change to the file
#: layout *or* the state-tree layout (state trees carry their own
#: ``format`` field; a digest is only comparable within one version).
#: v2: state trees gained the ``topology`` subtree (state format v2).
SNAP_VERSION = 2


@dataclass
class Snapshot:
    """One captured simulation state plus the recipe to rebuild it."""

    step: int
    clock: float
    seed: int
    state: dict[str, Any]
    digest: str
    recipe: dict[str, Any] = field(default_factory=dict)
    version: int = SNAP_VERSION

    def summary(self) -> str:
        """One-line human description."""
        return (f"snapshot v{self.version} step={self.step} "
                f"t={self.clock:.9f}s digest={self.digest[:12]}")


def take_snapshot(world: Any,
                  recipe: Optional[dict[str, Any]] = None) -> Snapshot:
    """Capture the world's current state as a :class:`Snapshot`."""
    state = capture_state(world)
    return Snapshot(step=world.sim.steps, clock=world.sim._now,
                    seed=world.rng.seed, state=state,
                    digest=state_digest(state), recipe=dict(recipe or {}))


def save_snapshot(snap: Snapshot, path: str) -> str:
    """Write a snapshot atomically (tmp + rename); returns ``path``."""
    payload = {
        "version": snap.version,
        "state_format": STATE_FORMAT_VERSION,
        "step": snap.step,
        "clock": snap.clock,
        "seed": snap.seed,
        "digest": snap.digest,
        "recipe": snap.recipe,
        "state": snap.state,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
    os.replace(tmp, path)
    return path


def load_snapshot(path: str) -> Snapshot:
    """Read and integrity-check a snapshot file.

    Raises :class:`~repro.errors.SnapshotFormatError` on version skew or
    corruption (the stored digest is recomputed from the stored state).
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot {path!r}: {exc}")
    version = payload.get("version")
    if version != SNAP_VERSION:
        raise SnapshotFormatError(
            f"snapshot {path!r} has format version {version!r}; this build "
            f"reads version {SNAP_VERSION} (see docs/snapshot.md)")
    if payload.get("state_format") != STATE_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot {path!r} has state-tree format "
            f"{payload.get('state_format')!r}; this build captures "
            f"{STATE_FORMAT_VERSION}")
    for key in ("step", "clock", "seed", "digest", "state"):
        if key not in payload:
            raise SnapshotFormatError(f"snapshot {path!r} missing {key!r}")
    digest = state_digest(payload["state"])
    if digest != payload["digest"]:
        raise SnapshotFormatError(
            f"snapshot {path!r} is corrupt: stored digest "
            f"{payload['digest'][:12]} != recomputed {digest[:12]}")
    return Snapshot(step=payload["step"], clock=payload["clock"],
                    seed=payload["seed"], state=payload["state"],
                    digest=payload["digest"],
                    recipe=payload.get("recipe", {}),
                    version=version)
