"""Live checkpoints via ``os.fork``: parked child processes.

Generator frames cannot be serialized, but a forked child holds them
*live*: at each checkpoint the replay driver forks, the child blocks on a
pipe, and the parent runs on. To jump back, the parent wakes the child
holding the nearest earlier state with a JSON command; the child resumes
the simulation from its in-memory world — genuinely without re-executing
the prefix — services the command, streams a JSON result back, and
exits. This is the classic record-replay structure (rr, CRIU-style
debuggers) applied to the simulated machine.

Children never return from :meth:`ForkCheckpoints.take`: they either
service one command or exit on EOF, always via ``os._exit`` so the
parent's atexit/pytest machinery runs exactly once.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["ForkCheckpoints", "fork_available"]


def fork_available() -> bool:
    """Whether live checkpoints are supported on this host (POSIX)."""
    return hasattr(os, "fork")


@dataclass
class _Checkpoint:
    """Parent-side handle on one parked child."""

    step: int
    pid: int
    cmd_w: int
    res_r: int


class ForkCheckpoints:
    """A bounded stack of parked child processes, newest last."""

    def __init__(self, keep: int = 8):
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.keep = keep
        self._checkpoints: list[_Checkpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def steps(self) -> list[int]:
        """Kernel steps of the currently parked checkpoints."""
        return [cp.step for cp in self._checkpoints]

    def take(self, step: int,
             service: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Fork a checkpoint of the current process state at ``step``.

        In the parent: registers the child and returns. In the child:
        blocks until a command arrives (services it via ``service`` and
        replies) or the command pipe closes (exits silently). The oldest
        checkpoints beyond ``keep`` are discarded.
        """
        cmd_r, cmd_w = os.pipe()
        res_r, res_w = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: park until woken. Only this checkpoint's pipes stay;
            # handles inherited from the parent's other checkpoints are
            # dropped so their EOFs propagate correctly.
            os.close(cmd_w)
            os.close(res_r)
            for cp in self._checkpoints:
                os.close(cp.cmd_w)
                os.close(cp.res_r)
            self._checkpoints = []
            status = 0
            try:
                line = b""
                while not line.endswith(b"\n"):
                    chunk = os.read(cmd_r, 65536)
                    if not chunk:
                        break
                    line += chunk
                if line.strip():
                    result = service(json.loads(line.decode("utf-8")))
                    os.write(res_w, json.dumps(result).encode("utf-8"))
            except BaseException as exc:
                status = 1
                try:
                    os.write(res_w, json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    ).encode("utf-8"))
                except OSError:
                    pass
            finally:
                try:
                    os.close(res_w)
                    os.close(cmd_r)
                finally:
                    os._exit(status)
        os.close(cmd_r)
        os.close(res_w)
        self._checkpoints.append(_Checkpoint(step, pid, cmd_w, res_r))
        while len(self._checkpoints) > self.keep:
            self._discard(self._checkpoints.pop(0))

    def nearest(self, step: int) -> Optional[_Checkpoint]:
        """The newest checkpoint at or before ``step``, if any."""
        best = None
        for cp in self._checkpoints:
            if cp.step <= step:
                best = cp
        return best

    def resume(self, checkpoint: _Checkpoint,
               command: dict[str, Any]) -> dict[str, Any]:
        """Wake a parked child, run ``command`` in it, return its result.

        The child is consumed (reaped) regardless of outcome; sibling
        checkpoints stay parked until :meth:`discard_all`.
        """
        self._checkpoints.remove(checkpoint)
        try:
            os.write(checkpoint.cmd_w,
                     json.dumps(command).encode("utf-8") + b"\n")
            os.close(checkpoint.cmd_w)
            chunks = []
            while True:
                chunk = os.read(checkpoint.res_r, 65536)
                if not chunk:
                    break
                chunks.append(chunk)
            os.close(checkpoint.res_r)
        finally:
            os.waitpid(checkpoint.pid, 0)
        data = b"".join(chunks)
        if not data:
            return {"error": "checkpoint child produced no result"}
        return json.loads(data.decode("utf-8"))

    def discard_all(self) -> None:
        """Release every parked child (EOF on its command pipe)."""
        checkpoints, self._checkpoints = self._checkpoints, []
        for cp in checkpoints:
            self._discard(cp)

    def _discard(self, cp: _Checkpoint) -> None:
        try:
            os.close(cp.cmd_w)
            os.close(cp.res_r)
        except OSError:
            pass  # already-closed fds on teardown are benign
        try:
            os.waitpid(cp.pid, 0)
        except ChildProcessError:
            pass
