"""Shared chaos-scenario plumbing for the application drivers.

Every ``run_*`` driver accepts the same late keyword block — ``faults``/
``transport`` (lossy fabric + reliable recovery), ``traffic``/
``traffic_seed`` (background flows via :mod:`repro.netsim.traffic`) and
``topology``/``topology_params`` (routed interconnect instead of the
default direct fabric). This module holds the two helpers that keep that
block identical across the seven drivers, so the scenario layer
(:mod:`repro.scenarios`) can drive any application through one calling
convention.
"""

from __future__ import annotations

from typing import Any, Optional

from ..netsim.config import NetworkConfig
from ..netsim.topology import ClusterSpec
from ..netsim.traffic import TrafficShape, install_traffic

__all__ = ["TrafficShape", "chaos_cluster", "install_traffic"]


def chaos_cluster(nodes: int, threads_per_proc: int,
                  net: Optional[NetworkConfig] = None,
                  topology: str = "direct",
                  topology_params: Optional[dict[str, Any]] = None
                  ) -> ClusterSpec:
    """A driver's :class:`ClusterSpec` with an optional routed topology.

    ``topology="direct"`` (the default) reproduces the drivers'
    historical single-hop fabric byte for byte; any registered topology
    name routes the same cluster over that interconnect, with
    ``topology_params`` forwarded to the generator (fat-tree arity,
    dragonfly groups, torus dims, ...).
    """
    return ClusterSpec(nodes=nodes, threads_per_proc=threads_per_proc,
                       topology=topology, network=net,
                       **(topology_params or {}))
