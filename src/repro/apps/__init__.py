"""Application proxies exercising the paper's communication patterns."""
