"""Event-based runtime proxy (Legion/Realm pattern, Fig 5 and Fig 1c).

Legion's runtime keeps one *polling thread* per node that processes
incoming active messages from the task threads of other nodes. The task
threads' communication is irregular: any thread may message any node at
any time, and the polling thread relies on wildcard receives.

Mechanism mapping (Fig 5):

- ``communicators`` — each task thread sends on its own duplicated
  communicator; the polling thread cannot know which communicator traffic
  will arrive on, so it must *iterate over all of them*, paying one probe
  per communicator per cycle. (The paper measured Legion's polling thread
  to be 1.63x slower this way.)
- ``endpoints`` — the polling thread owns one endpoint and posts a single
  wildcard receive; task threads each drive their own endpoint. Matching
  requirements and parallelism are decoupled (Lesson 11).
- ``original`` — everything on COMM_WORLD (one VCI): the baseline
  MPI_THREAD_MULTIPLE behaviour of Fig 1(c).

Partitioned communication is *not* offered here: the polling thread
depends on wildcards and the communication targets change dynamically, so
partitioned ops cannot express this pattern (Lesson 15) — the scope gap is
itself one of the paper's findings and is asserted by
``repro.analysis.scope``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mpi import ANY_SOURCE, ANY_TAG
from ...mpi.endpoints import comm_create_endpoints
from ...mpi.request import waitall
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic

__all__ = ["LegionConfig", "LegionResult", "run_legion"]

MECHANISMS = ("original", "communicators", "endpoints")


@dataclass
class LegionConfig:
    """Parameters of one event-runtime experiment."""

    num_nodes: int = 4
    task_threads: int = 8
    #: Messages each task thread sends to each remote node.
    msgs_per_thread: int = 16
    #: Payload elements (float64) per active message.
    payload: int = 8
    mechanism: str = "endpoints"
    #: Simulated handler cost per processed event.
    handler_cost: float = 200e-9
    #: Simulated task work between sends. The default keeps the polling
    #: thread non-saturated (the regime the paper measured; under heavy
    #: oversaturation receiver-side queue growth dominates instead).
    task_work: float = 10e-6
    #: Send window: task threads wait for completions every this many sends.
    window: int = 8

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(
                f"unknown mechanism {self.mechanism!r} (partitioned cannot "
                "express wildcard polling — Lesson 15)")
        if self.num_nodes < 2:
            raise MpiUsageError("need at least 2 nodes")

    @property
    def events_per_node(self) -> int:
        return (self.num_nodes - 1) * self.task_threads * self.msgs_per_thread


@dataclass
class LegionResult:
    """Timing summary of one Legion-runtime proxy run."""

    cfg: LegionConfig
    #: Simulated wall time of the whole run (slowest node).
    wall_time: float
    #: Events processed per second by the slowest polling thread.
    polling_rate: float
    #: Mean busy time the polling thread spent per event (the Fig 5
    #: metric: probe iteration makes this grow with the communicator count).
    polling_cost_per_event: float
    #: Probe calls issued per processed event (1.0 is ideal).
    probes_per_event: float
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:14s} wall={self.wall_time * 1e6:9.1f}us "
                f"rate={self.polling_rate / 1e6:6.2f}M/s "
                f"cost/evt={self.polling_cost_per_event * 1e9:7.1f}ns "
                f"probes/evt={self.probes_per_event:5.2f}")


class _LegionProcess:
    """Per-node runtime state."""

    def __init__(self, proc: MpiProcess, cfg: LegionConfig):
        self.proc = proc
        self.cfg = cfg
        self.task_comms = []       # communicators mode
        self.eps = None            # endpoints mode
        self.events_seen = 0
        self.checksum = 0.0
        self.probes = 0
        self.poll_busy = 0.0
        self.poll_start = None
        self.poll_end = None

    # ------------------------------------------------------------- setup
    def setup(self) -> Generator:
        cfg = self.cfg
        if cfg.mechanism == "communicators":
            for tid in range(cfg.task_threads):
                comm = yield from self.proc.comm_world.Dup(
                    name=f"task{tid}")
                self.task_comms.append(comm)
        elif cfg.mechanism == "endpoints":
            # task_threads endpoints + 1 polling endpoint per process
            self.eps = yield from comm_create_endpoints(
                self.proc.comm_world, cfg.task_threads + 1)

    # ------------------------------------------------------------- tasks
    def task_thread(self, tid: int) -> Generator:
        """Application task: exchange payloads with the peer node."""
        cfg = self.cfg
        proc = self.proc
        me = proc.rank
        payload = np.full(cfg.payload, float(me * 1000 + tid))
        pending = []
        for target in range(cfg.num_nodes):
            if target == me:
                continue
            for k in range(cfg.msgs_per_thread):
                yield proc.compute(cfg.task_work)
                tag = tid  # application-level stream id
                if cfg.mechanism == "communicators":
                    req = yield from self.task_comms[tid].Isend(
                        payload, target, tag)
                elif cfg.mechanism == "endpoints":
                    my_ep = self.eps[tid]
                    # address the *polling endpoint* of the target node
                    target_poll_ep = target * (cfg.task_threads + 1) \
                        + cfg.task_threads
                    req = yield from my_ep.Isend(payload, target_poll_ep, tag)
                else:  # original
                    req = yield from proc.comm_world.Isend(payload, target, tag)
                pending.append(req)
                if len(pending) >= cfg.window:
                    yield from waitall(pending)
                    pending = []
        yield from waitall(pending)

    # ------------------------------------------------------------- polling
    def polling_thread(self) -> Generator:
        """Process incoming events with pre-posted wildcard receives, as
        Legion's Realm backend does.

        - ``endpoints``/``original``: a FIFO window of wildcard Irecvs on
          one channel; each event costs roughly one MPI_Test.
        - ``communicators``: one wildcard Irecv *per task communicator*;
          every polling sweep must test all of them (Fig 5's iteration) —
          the per-event cost grows with the communicator count.
        """
        cfg = self.cfg
        proc = self.proc
        expected = cfg.events_per_node
        self.poll_start = proc.sim.now
        if cfg.mechanism == "communicators":
            yield from self._poll_multi_channel(expected, self.task_comms)
        elif cfg.mechanism == "endpoints":
            yield from self._poll_window(expected,
                                         self.eps[cfg.task_threads])
        else:
            yield from self._poll_window(expected, proc.comm_world)
        self.poll_end = proc.sim.now

    #: Pre-posted wildcard receives per channel in window mode.
    POLL_WINDOW = 4

    def _handle(self, buf: np.ndarray) -> Generator:
        self.events_seen += 1
        self.checksum += float(buf[0])
        t0 = self.proc.sim.now
        yield self.proc.compute(self.cfg.handler_cost)
        self.poll_busy += self.proc.sim.now - t0

    def _test(self, comm, req) -> Generator:
        """One MPI_Test: charged (incl. channel-lock contention), counted,
        and measured as poll work."""
        proc = self.proc
        t0 = proc.sim.now
        self.probes += 1
        status = yield from comm.Test(req)
        self.poll_busy += proc.sim.now - t0
        return status

    def _repost(self, comm) -> Generator:
        buf = np.zeros(self.cfg.payload)
        t0 = self.proc.sim.now
        req = yield from comm.Irecv(buf, ANY_SOURCE, ANY_TAG)
        self.poll_busy += self.proc.sim.now - t0
        return (req, buf)

    def _poll_window(self, expected: int, comm) -> Generator:
        """Fig 5 right: a FIFO window of wildcard receives on one channel.

        Wildcard receives match in posted order, so completions are FIFO
        and testing the head is enough.
        """
        proc = self.proc
        window = []
        for _ in range(min(self.POLL_WINDOW, expected)):
            window.append((yield from self._repost(comm)))
        while self.events_seen < expected:
            req, buf = window[0]
            status = yield from self._test(comm, req)
            if status is None:
                yield proc.compute(100e-9)  # idle backoff
                continue
            window.pop(0)
            yield from self._handle(buf)
            remaining = expected - self.events_seen - len(window)
            if remaining > 0:
                window.append((yield from self._repost(comm)))

    def _poll_multi_channel(self, expected: int, comms) -> Generator:
        """Fig 5 left: the polling thread is 'forced to iterate over the
        communicators to process all incoming messages'."""
        proc = self.proc
        slots = []
        for comm in comms:
            req, buf = yield from self._repost(comm)
            slots.append([comm, req, buf])
        while self.events_seen < expected:
            progressed = False
            for slot in slots:
                comm, req, buf = slot
                status = yield from self._test(comm, req)
                if status is None:
                    continue
                yield from self._handle(buf)
                req, buf = yield from self._repost(comm)
                slot[1], slot[2] = req, buf
                progressed = True
                if self.events_seen >= expected:
                    break
            if not progressed:
                yield proc.compute(100e-9)
        # Shutdown: every channel still holds one pre-posted wildcard
        # receive that no further message will match — cancel it
        # (MPI_Cancel), as Realm does at teardown.
        for slot in slots:
            if not slot[1].cancel():
                yield from slot[1].wait()


def run_legion(cfg: LegionConfig,
               net: Optional[NetworkConfig] = None,
               max_vcis_per_proc: int = 64,
               seed: int = 0,
               faults=None, transport=None,
               traffic: Optional[TrafficShape] = None,
               traffic_seed: int = 0,
               topology: str = "direct",
               topology_params: Optional[dict] = None) -> LegionResult:
    """Run one event-runtime experiment end to end.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`): fault plan + reliable transport, background
    traffic, routed topology. Defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    world = World(cluster=chaos_cluster(cfg.num_nodes, cfg.task_threads + 1,
                                        net, topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=seed,
                  faults=faults, transport=transport)
    states: dict[int, _LegionProcess] = {}

    def proc_main(proc):
        st = _LegionProcess(proc, cfg)
        states[proc.rank] = st
        yield from st.setup()
        threads = [proc.spawn(st.task_thread(tid))
                   for tid in range(cfg.task_threads)]
        threads.append(proc.spawn(st.polling_thread()))
        yield proc.sim.all_of(threads)
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(cfg.num_nodes)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    expected = cfg.events_per_node
    correct = all(st.events_seen == expected for st in states.values())
    # checksum: each node receives msgs_per_thread copies from every
    # (remote node, tid) pair
    for rank, st in states.items():
        want = sum(cfg.msgs_per_thread * (n * 1000 + tid)
                   for n in range(cfg.num_nodes) if n != rank
                   for tid in range(cfg.task_threads))
        if abs(st.checksum - want) > 1e-6:
            correct = False

    slowest = max(states.values(),
                  key=lambda s: (s.poll_end or 0) - (s.poll_start or 0))
    span = (slowest.poll_end - slowest.poll_start) or 1e-30
    return LegionResult(
        cfg=cfg,
        wall_time=max(ends),
        polling_rate=expected / span,
        polling_cost_per_event=max(
            s.poll_busy / max(1, s.events_seen) for s in states.values()),
        probes_per_event=max(
            s.probes / max(1, s.events_seen) for s in states.values()),
        correct=correct,
    )
