"""Circuit-simulation proxy on the event runtime (Fig 1c).

Legion's Circuit app partitions a circuit graph into *pieces*; wires cut
by the partition carry voltage updates between nodes every timestep. In
the MPI backend those updates travel as active messages handled by each
node's polling thread.

The proxy: each task thread owns pieces whose cut wires connect to every
other node; per timestep it sends one update message per cut wire, then
waits until its node's polling thread has absorbed this timestep's
expected updates (asynchronous progress — no global barrier, like Realm).

Compared mechanisms: ``original`` (COMM_WORLD, one VCI — Fig 1c's
"MPI+threads (Original)"), ``communicators`` (comm per task thread, the
polling thread iterates), ``endpoints`` (dedicated polling endpoint —
"logically parallel").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mpi import ANY_SOURCE, ANY_TAG
from ...mpi.endpoints import comm_create_endpoints
from ...mpi.info import Info
from ...mpi.request import waitall
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic
from ...sim.sync import Gate

__all__ = ["CircuitConfig", "CircuitResult", "run_circuit"]

MECHANISMS = ("original", "communicators", "endpoints")


@dataclass
class CircuitConfig:
    """Parameters for the Legion circuit-simulation proxy."""

    num_nodes: int = 4
    task_threads: int = 8
    #: Cut wires per (thread, remote node) — update messages per timestep.
    wires_per_thread: int = 4
    timesteps: int = 8
    #: Gate-solve compute per thread per timestep.
    compute_per_step: float = 2e-6
    handler_cost: float = 150e-9
    mechanism: str = "endpoints"

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}")
        if self.num_nodes < 2:
            raise MpiUsageError("need at least 2 nodes")

    @property
    def updates_per_step(self) -> int:
        """Updates each node absorbs per timestep."""
        return (self.num_nodes - 1) * self.task_threads * self.wires_per_thread


@dataclass
class CircuitResult:
    """Timing and correctness summary of one circuit-proxy run."""

    cfg: CircuitConfig
    wall_time: float
    time_per_step: float
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:14s} wall={self.wall_time * 1e6:9.1f}us "
                f"step={self.time_per_step * 1e6:8.2f}us")


class _CircuitNode:
    def __init__(self, proc: MpiProcess, cfg: CircuitConfig):
        self.proc = proc
        self.cfg = cfg
        self.task_comms = []
        self.eps = None
        self.am_comm = None
        self.buckets: dict[int, int] = {}
        self.gates: dict[int, Gate] = {}
        self.received = 0
        self.voltage_sum = 0.0
        self.done = False

    def _gate(self, step: int) -> Gate:
        if step not in self.gates:
            self.gates[step] = Gate(self.proc.sim)
        return self.gates[step]

    def setup(self) -> Generator:
        cfg = self.cfg
        if cfg.mechanism == "communicators":
            for tid in range(cfg.task_threads):
                self.task_comms.append(
                    (yield from self.proc.comm_world.Dup(name=f"circ{tid}")))
        elif cfg.mechanism == "endpoints":
            self.eps = yield from comm_create_endpoints(
                self.proc.comm_world, cfg.task_threads + 1)
        else:
            # All task threads push active messages down one channel and
            # the polling thread absorbs them in arrival order, so message
            # order carries no meaning: assert it (MPI 4.0
            # ``mpi_assert_allow_overtaking``).
            self.am_comm = yield from self.proc.comm_world.Dup(
                Info({"mpi_assert_allow_overtaking": "1"}), name="circ-am")

    def task_thread(self, tid: int) -> Generator:
        """One circuit piece owner: solve, ship updates, stay one step
        ahead of absorption (asynchronous pipelining, as in Realm — the
        polling thread overlaps with the next step's solve and sends)."""
        cfg, proc = self.cfg, self.proc
        update = np.full(4, 1.0 + proc.rank)
        for step in range(cfg.timesteps):
            if step > 0:
                # the new solve consumes the previous step's updates
                yield from self._gate(step - 1).wait()
            yield proc.compute(cfg.compute_per_step)
            pending = []
            for target in range(cfg.num_nodes):
                if target == proc.rank:
                    continue
                for _ in range(cfg.wires_per_thread):
                    if cfg.mechanism == "communicators":
                        req = yield from self.task_comms[tid].Isend(
                            update, target, tag=step)
                    elif cfg.mechanism == "endpoints":
                        poll_ep = target * (cfg.task_threads + 1) \
                            + cfg.task_threads
                        req = yield from self.eps[tid].Isend(
                            update, poll_ep, tag=step)
                    else:
                        req = yield from self.am_comm.Isend(
                            update, target, tag=step)
                    pending.append(req)
            yield from waitall(pending)
        yield from self._gate(cfg.timesteps - 1).wait()

    POLL_WINDOW = 4

    def _post(self, comm) -> Generator:
        buf = np.zeros(4)
        req = yield from comm.Irecv(buf, ANY_SOURCE, ANY_TAG)
        return req, buf

    def polling_thread(self) -> Generator:
        """Pre-posted wildcard receives (see LegionConfig docstring): a
        FIFO window on one channel, or one receive per task communicator
        that every sweep must test."""
        cfg, proc = self.cfg, self.proc
        expected_total = cfg.updates_per_step * cfg.timesteps
        if cfg.mechanism == "communicators":
            slots = []
            for comm in self.task_comms:
                req, buf = yield from self._post(comm)
                slots.append([comm, req, buf])
            while self.received < expected_total:
                progressed = False
                for slot in slots:
                    status = yield from slot[0].Test(slot[1])
                    if status is None:
                        continue
                    yield from self._absorb(status.tag, slot[2])
                    slot[1], slot[2] = yield from self._post(slot[0])
                    progressed = True
                    if self.received >= expected_total:
                        break
                if not progressed:
                    yield proc.compute(100e-9)
            # cancel the final pre-posted receive on each channel; no
            # further update will ever match it (MPI_Cancel at teardown)
            for slot in slots:
                if not slot[1].cancel():
                    yield from slot[1].wait()
        else:
            comm = (self.eps[cfg.task_threads]
                    if cfg.mechanism == "endpoints" else self.am_comm)
            window = []
            for _ in range(min(self.POLL_WINDOW, expected_total)):
                window.append((yield from self._post(comm)))
            while self.received < expected_total:
                req, buf = window[0]
                status = yield from comm.Test(req)
                if status is None:
                    yield proc.compute(100e-9)
                    continue
                window.pop(0)
                yield from self._absorb(status.tag, buf)
                remaining = expected_total - self.received - len(window)
                if remaining > 0:
                    window.append((yield from self._post(comm)))
        self.done = True

    def _absorb(self, step: int, buf: np.ndarray) -> Generator:
        yield self.proc.compute(self.cfg.handler_cost)
        self.received += 1
        self.voltage_sum += float(buf[0])
        self.buckets[step] = self.buckets.get(step, 0) + 1
        if self.buckets[step] == self.cfg.updates_per_step:
            self._gate(step).open()


def run_circuit(cfg: CircuitConfig,
                net: Optional[NetworkConfig] = None,
                max_vcis_per_proc: int = 64,
                seed: int = 0,
                faults=None, transport=None,
                traffic: Optional[TrafficShape] = None,
                traffic_seed: int = 0,
                topology: str = "direct",
                topology_params: Optional[dict] = None) -> CircuitResult:
    """Run the circuit proxy under the configured mechanism.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`); defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    world = World(cluster=chaos_cluster(cfg.num_nodes, cfg.task_threads + 1,
                                        net, topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=seed,
                  faults=faults, transport=transport)
    nodes: dict[int, _CircuitNode] = {}

    def proc_main(proc):
        st = _CircuitNode(proc, cfg)
        nodes[proc.rank] = st
        yield from st.setup()
        threads = [proc.spawn(st.task_thread(tid))
                   for tid in range(cfg.task_threads)]
        threads.append(proc.spawn(st.polling_thread()))
        yield proc.sim.all_of(threads)
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(cfg.num_nodes)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    expected_total = cfg.updates_per_step * cfg.timesteps
    correct = all(st.received == expected_total for st in nodes.values())
    for rank, st in nodes.items():
        want = cfg.timesteps * cfg.wires_per_thread * cfg.task_threads * sum(
            1.0 + n for n in range(cfg.num_nodes) if n != rank)
        if abs(st.voltage_sum - want) > 1e-6:
            correct = False
    wall = max(ends)
    return CircuitResult(cfg=cfg, wall_time=wall,
                         time_per_step=wall / cfg.timesteps,
                         correct=correct)
