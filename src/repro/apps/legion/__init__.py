"""Legion-style event runtime proxy (Fig 5, Fig 1c)."""

from .circuit import CircuitConfig, CircuitResult, run_circuit
from .runtime import LegionConfig, LegionResult, run_legion

__all__ = ["CircuitConfig", "CircuitResult", "LegionConfig", "LegionResult",
           "run_circuit", "run_legion"]
