"""VASP-style multithreaded collectives proxy (Fig 7, Lessons 18-19)."""

from .allreduce import VaspConfig, VaspResult, run_vasp

__all__ = ["VaspConfig", "VaspResult", "run_vasp"]
