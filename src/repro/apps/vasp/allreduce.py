"""Multithreaded allreduce proxy (Fig 7, Lessons 18-19, VASP [64]).

Setting: every thread of every process holds a private contribution buffer
of ``elems`` doubles; the program needs the elementwise sum over *all*
threads of *all* processes, available to every thread.

Strategies (Fig 7):

- ``funneled`` — the classic hierarchical baseline: a user-driven
  intranode tree reduction into thread 0, one single-threaded internode
  ``Allreduce`` of the whole buffer, then threads read the shared result.
- ``existing`` — existing mechanisms, multithreaded: the user still
  performs the intranode reduction by hand (Lesson 18), then the threads
  drive *segments* of the internode allreduce in parallel on distinct
  duplicated communicators (the VASP approach that gained >2x [64]).
  One result buffer per node — no duplication (Lesson 19).
- ``endpoints`` — one-step: every thread's endpoint joins a single
  allreduce over ``P*T`` endpoint ranks; the library handles intranode
  and internode parts. Each endpoint receives a full copy of the result:
  ``T`` duplicated buffers per node (Lesson 19's memory cost).
- ``partitioned`` — the prospective MPI-4.x partitioned collective
  (Table I: "Partitioned collective APIs (TBD)"): threads contribute
  partitions of one shared buffer; the library runs the intranode
  reduction and a segmented internode allreduce, producing a single
  result buffer. Modelled here as a library-level composition (there is
  no standardized API yet — this is the paper's "TBD" row made concrete).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mpi.coll import SUM, ThreadTeamBcast, ThreadTeamReduce
from ...mpi.endpoints import comm_create_endpoints
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic
from ...sim.sync import Barrier

__all__ = ["VaspConfig", "VaspResult", "run_vasp"]

MECHANISMS = ("funneled", "existing", "endpoints", "partitioned")


@dataclass
class VaspConfig:
    """Parameters for the VASP multithreaded-allreduce proxy."""

    num_nodes: int = 4
    threads_per_proc: int = 8
    #: Elements (float64) in each thread's contribution.
    elems: int = 1 << 14
    #: Back-to-back allreduces (VASP performs many per SCF step).
    repeats: int = 2
    mechanism: str = "existing"
    seed: int = 0

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}")
        if self.elems % max(1, self.threads_per_proc):
            raise MpiUsageError("elems must divide by threads_per_proc")


@dataclass
class VaspResult:
    """Timing and memory summary of one VASP-proxy run."""

    cfg: VaspConfig
    wall_time: float
    time_per_allreduce: float
    #: Result-buffer bytes allocated per node (Lesson 19's duplication).
    result_bytes_per_node: int
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:12s} "
                f"t/allreduce={self.time_per_allreduce * 1e6:9.2f}us "
                f"result_buf={self.result_bytes_per_node / 1024:8.1f}KiB")


def _contribution(cfg: VaspConfig, rank: int, tid: int) -> np.ndarray:
    """Deterministic per-thread contribution (verifiable)."""
    idx = np.arange(cfg.elems, dtype=np.float64)
    return idx * 1e-6 + (rank * cfg.threads_per_proc + tid + 1)


def _expected(cfg: VaspConfig) -> np.ndarray:
    total = cfg.num_nodes * cfg.threads_per_proc
    idx = np.arange(cfg.elems, dtype=np.float64)
    return total * idx * 1e-6 + total * (total + 1) / 2


def run_vasp(cfg: VaspConfig,
             net: Optional[NetworkConfig] = None,
             max_vcis_per_proc: int = 64,
             faults=None, transport=None,
             traffic: Optional[TrafficShape] = None,
             traffic_seed: int = 0,
             topology: str = "direct",
             topology_params: Optional[dict] = None) -> VaspResult:
    """Run the threaded-allreduce proxy under the configured mechanism.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`); defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    world = World(cluster=chaos_cluster(cfg.num_nodes, cfg.threads_per_proc,
                                        net, topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=cfg.seed,
                  faults=faults, transport=transport)
    T = cfg.threads_per_proc
    seg = cfg.elems // T
    results: dict[int, np.ndarray] = {}
    buf_bytes: dict[int, int] = {}

    def proc_main(proc):
        contribs = [_contribution(cfg, proc.rank, tid) for tid in range(T)]
        team_reduce = ThreadTeamReduce(proc, T, SUM)
        team_bcast = ThreadTeamBcast(proc, T, copy=False)
        barrier = Barrier(proc.sim, T)

        if cfg.mechanism == "existing":
            comms = []
            for tid in range(T):
                comms.append(
                    (yield from proc.comm_world.Dup(name=f"seg{tid}")))
        elif cfg.mechanism == "endpoints":
            eps = yield from comm_create_endpoints(proc.comm_world, T)
            # Lesson 19: every endpoint needs its own full result buffer.
            ep_results = [np.zeros(cfg.elems) for _ in range(T)]
            buf_bytes[proc.rank] = sum(b.nbytes for b in ep_results)
        if cfg.mechanism in ("funneled", "existing", "partitioned"):
            buf_bytes[proc.rank] = contribs[0].nbytes  # single shared copy

        def thread(tid):
            mine = contribs[tid]
            for _ in range(cfg.repeats):
                work = mine.copy()
                if cfg.mechanism == "funneled":
                    # user intranode reduce -> single-thread internode
                    yield from team_reduce.reduce(tid, work)
                    if tid == 0:
                        out = np.zeros(cfg.elems)
                        yield from proc.comm_world.Allreduce(work, out)
                        contribs_shared[0][:] = out
                    yield from team_bcast.bcast(tid, work)
                elif cfg.mechanism == "existing":
                    # Lesson 18: intranode portion is the user's problem...
                    yield from team_reduce.reduce(tid, work)
                    if tid == 0:
                        shared[:] = work
                    yield from barrier.wait()
                    # ...then threads drive internode segments in parallel
                    # on their own communicators.
                    out_seg = np.zeros(seg)
                    yield from comms[tid].Allreduce(
                        np.ascontiguousarray(shared[tid * seg:(tid + 1) * seg]),
                        out_seg)
                    shared[tid * seg:(tid + 1) * seg] = out_seg
                    yield from barrier.wait()
                    contribs_shared[0][:] = shared
                elif cfg.mechanism == "endpoints":
                    # one-step: the library does intranode + internode
                    yield from eps[tid].Allreduce(work, ep_results[tid])
                    contribs_shared[0][:] = ep_results[tid]
                else:  # partitioned (prospective)
                    # library-side: intranode reduce of the partitions...
                    yield from team_reduce.reduce(tid, work)
                    if tid == 0:
                        shared[:] = work
                    yield from barrier.wait()
                    # ...and a segmented internode allreduce over the
                    # communicator's VCIs, one partition per thread. We
                    # model it with the library's own channels rather than
                    # user-visible comms (no new user objects).
                    out_seg = np.zeros(seg)
                    yield from lib_comms[tid].Allreduce(
                        np.ascontiguousarray(shared[tid * seg:(tid + 1) * seg]),
                        out_seg)
                    shared[tid * seg:(tid + 1) * seg] = out_seg
                    yield from barrier.wait()
                    contribs_shared[0][:] = shared

        shared = np.zeros(cfg.elems)
        contribs_shared = [np.zeros(cfg.elems)]
        lib_comms = []
        if cfg.mechanism == "partitioned":
            for tid in range(T):
                lib_comms.append(
                    (yield from proc.comm_world.Dup(name=f"libseg{tid}")))
        threads = [proc.spawn(thread(tid)) for tid in range(T)]
        yield proc.sim.all_of(threads)
        results[proc.rank] = contribs_shared[0]
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(cfg.num_nodes)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    expected = _expected(cfg)
    correct = all(np.allclose(results[r], expected)
                  for r in range(cfg.num_nodes))
    wall = max(ends)
    return VaspResult(
        cfg=cfg,
        wall_time=wall,
        time_per_allreduce=wall / cfg.repeats,
        result_bytes_per_node=buf_bytes[0],
        correct=correct,
    )
