"""NWChem get-compute-update RMA proxy (Fig 6, Lesson 16)."""

from .blocksparse import NwchemConfig, NwchemResult, run_nwchem

__all__ = ["NwchemConfig", "NwchemResult", "run_nwchem"]
