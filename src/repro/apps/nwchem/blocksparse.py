"""NWChem-style get-compute-update over RMA (Fig 6, Lesson 16).

Block-sparse matrix multiplication: each worker thread repeatedly

1. ``MPI_Get``\\ s two remote tiles,
2. multiplies them (a real numpy matmul plus charged compute time),
3. ``MPI_Accumulate``\\ s the product into the destination tile.

All accumulates of a process must go through a *single window* for
atomicity. The three channel strategies compared:

- ``window`` — default accumulate ordering: the library cannot spread
  atomics, every accumulate rides the window's base VCI (serialization);
- ``window-relaxed`` — ``accumulate_ordering=none`` +
  ``mpich_rma_num_vcis``: the library hashes operations over VCIs, but
  "any hashing policy is prone to collisions";
- ``endpoints`` — a window over an endpoints communicator: each thread's
  endpoint has a dedicated channel, giving parallelism *and* atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mpi.coll.ops import SUM
from ...mpi.endpoints import comm_create_endpoints
from ...mpi.info import Info
from ...mpi.rma import win_create
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic

__all__ = ["NwchemConfig", "NwchemResult", "run_nwchem"]

MECHANISMS = ("window", "window-relaxed", "endpoints")


@dataclass
class NwchemConfig:
    """Parameters for the NWChem block-sparse RMA proxy."""

    num_nodes: int = 4
    threads_per_proc: int = 8
    #: Tiles hosted per process.
    tiles_per_proc: int = 16
    #: Tile is ``tile_dim x tile_dim`` float64.
    tile_dim: int = 16
    #: get-compute-update tasks per thread.
    tasks_per_thread: int = 8
    mechanism: str = "endpoints"
    #: Charged time per fused multiply-add of the tile product.
    flop_cost: float = 0.05e-9
    seed: int = 0

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}")

    @property
    def tile_elems(self) -> int:
        return self.tile_dim * self.tile_dim

    @property
    def window_elems(self) -> int:
        return self.tiles_per_proc * self.tile_elems


@dataclass
class NwchemResult:
    """Timing summary of one NWChem-proxy run."""

    cfg: NwchemConfig
    wall_time: float
    #: Max accumulated RMA (get+acc+flush) time over threads.
    rma_time: float
    #: Max/mean traffic across the VCIs used for RMA on node 0 (1.0 =
    #: perfectly spread; high = hashing collisions or serialization).
    channel_imbalance: float
    #: Distinct VCIs that carried RMA traffic on process 0.
    channels_used: int
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:15s} wall={self.wall_time * 1e6:9.1f}us "
                f"rma={self.rma_time * 1e6:9.1f}us "
                f"channels={self.channels_used:3d} "
                f"imbalance={self.channel_imbalance:5.2f}")


def _tasks(cfg: NwchemConfig, rank: int, tid: int) -> list[tuple]:
    """Deterministic task list: (a_rank, a_tile, b_rank, b_tile, c_rank,
    c_tile) per task."""
    rng = np.random.default_rng((cfg.seed, rank, tid))
    out = []
    for _ in range(cfg.tasks_per_thread):
        a_r, b_r, c_r = rng.integers(cfg.num_nodes, size=3)
        a_t, b_t, c_t = rng.integers(cfg.tiles_per_proc, size=3)
        out.append((int(a_r), int(a_t), int(b_r), int(b_t),
                    int(c_r), int(c_t)))
    return out


def run_nwchem(cfg: NwchemConfig,
               net: Optional[NetworkConfig] = None,
               max_vcis_per_proc: int = 64,
               faults=None, transport=None,
               traffic: Optional[TrafficShape] = None,
               traffic_seed: int = 0,
               topology: str = "direct",
               topology_params: Optional[dict] = None) -> NwchemResult:
    """Run the block-sparse RMA proxy under the configured mechanism.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`); defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    world = World(cluster=chaos_cluster(cfg.num_nodes, cfg.threads_per_proc,
                                        net, topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=cfg.seed,
                  faults=faults, transport=transport)
    dim, te = cfg.tile_dim, cfg.tile_elems
    memories: dict[int, np.ndarray] = {}
    rma_times: dict[tuple[int, int], float] = {}

    def proc_main(proc):
        # Input tiles (A/B) live in a read-only window of all-ones; output
        # tiles (C) in a separate window starting at zero. Each task thus
        # accumulates a tile whose entries are exactly `tile_dim`.
        mem_in = np.ones(cfg.window_elems)
        mem_out = np.zeros(cfg.window_elems)
        memories[proc.rank] = mem_out

        if cfg.mechanism == "endpoints":
            eps = yield from comm_create_endpoints(
                proc.comm_world, cfg.threads_per_proc)

            def create_wins(ep):
                win_in = yield from win_create(ep, mem_in)
                win_out = yield from win_create(ep, mem_out)
                return win_in, win_out

            pairs = yield proc.sim.all_of(
                [proc.spawn(create_wins(ep)) for ep in eps])
            wins_in = [p[0] for p in pairs]
            wins_out = [p[1] for p in pairs]
        else:
            info = None
            if cfg.mechanism == "window-relaxed":
                info = Info({"accumulate_ordering": "none",
                             "mpich_rma_num_vcis": str(cfg.threads_per_proc)})
            win_in = yield from win_create(proc.comm_world, mem_in, info)
            win_out = yield from win_create(proc.comm_world, mem_out, info)
            wins_in = [win_in] * cfg.threads_per_proc
            wins_out = [win_out] * cfg.threads_per_proc

        def worker(tid):
            win_in, win_out = wins_in[tid], wins_out[tid]
            # In endpoints mode targets are endpoint ranks; tile t of
            # process r lives at rank r*T (any endpoint of r exposes the
            # same memory) — use endpoint r*T+tid to spread target-side
            # channels too.
            T = cfg.threads_per_proc
            ga = np.zeros(te)
            gb = np.zeros(te)
            for (a_r, a_t, b_r, b_t, c_r, c_t) in _tasks(cfg, proc.rank, tid):
                t0 = proc.sim.now
                if cfg.mechanism == "endpoints":
                    a_target = a_r * T + tid
                    b_target = b_r * T + tid
                    c_target = c_r * T + tid
                else:
                    a_target, b_target, c_target = a_r, b_r, c_r
                r1 = yield from win_in.Get(ga, a_target, a_t * te)
                r2 = yield from win_in.Get(gb, b_target, b_t * te)
                yield from r1.wait()
                yield from r2.wait()
                rma_times[(proc.rank, tid)] = rma_times.get(
                    (proc.rank, tid), 0.0) + proc.sim.now - t0
                # compute: C_tile += A @ B (a real matmul; with all-ones
                # inputs every product entry equals tile_dim)
                prod = ga.reshape(dim, dim) @ gb.reshape(dim, dim)
                yield proc.compute(cfg.flop_cost * dim * dim * dim)
                t0 = proc.sim.now
                yield from win_out.Accumulate(prod.reshape(-1), c_target,
                                              c_t * te, op=SUM)
                yield from win_out.Flush(c_target)
                rma_times[(proc.rank, tid)] = rma_times.get(
                    (proc.rank, tid), 0.0) + proc.sim.now - t0

        threads = [proc.spawn(worker(tid))
                   for tid in range(cfg.threads_per_proc)]
        yield proc.sim.all_of(threads)
        # Quiesce before checking (active-target style).
        yield from wins_out[0].Flush_all()
        yield from proc.comm_world.Barrier()
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(cfg.num_nodes)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    # Expected contributions per C tile.
    expected = {r: np.zeros(cfg.window_elems) for r in range(cfg.num_nodes)}
    for r in range(cfg.num_nodes):
        for tid in range(cfg.threads_per_proc):
            for (_ar, _at, _br, _bt, c_r, c_t) in _tasks(cfg, r, tid):
                expected[c_r][c_t * te:(c_t + 1) * te] += dim
    correct = all(np.allclose(memories[r], expected[r])
                  for r in range(cfg.num_nodes))

    pool0 = world.procs[0].lib.vci_pool
    counts = [v.sends for v in pool0.active_vcis if v.sends > 0]
    imbalance = (max(counts) / (sum(counts) / len(counts))) if counts else 0.0
    return NwchemResult(
        cfg=cfg,
        wall_time=max(ends),
        rma_time=max(rma_times.values()) if rma_times else 0.0,
        channel_imbalance=imbalance,
        channels_used=len(counts),
        correct=correct,
    )
