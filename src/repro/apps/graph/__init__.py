"""Dynamic-neighbourhood graph communication proxy (Vite, Lesson 5)."""

from .vite import GraphConfig, GraphResult, partition_graph, run_graph

__all__ = ["GraphConfig", "GraphResult", "partition_graph", "run_graph"]
