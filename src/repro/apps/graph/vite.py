"""Graph-communication proxy (Vite-style community detection, Lesson 5).

Vite runs Louvain community detection on a distributed graph: every
iteration, each thread sends community-update messages to the owners of
its vertices' remote neighbours. Crucially, the *communication
neighbourhood changes over time* — as vertices change communities, a
thread suddenly talks to different threads on different processes.

That dynamism is exactly what breaks static communicator maps (Lesson 5):
a pre-built thread-to-communicator map assumes fixed partners; once
partners change, two threads start sharing communicators (serialization),
or the map must be rebuilt collectively (expensive). Endpoints simply
address the new partner's endpoint rank; tags-with-hints simply encode the
new partner's thread id.

The proxy partitions a real networkx graph, runs ``iters`` update rounds
with community reassignment between rounds (changing the partner sets),
and measures exchange time plus — for the communicator mechanism — the
label-sharing conflicts the dynamism induces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

import networkx as nx
import numpy as np

from ...errors import MpiUsageError
from ...mapping.tags import TagSchema, listing2_info
from ...mpi.endpoints import comm_create_endpoints
from ...mpi.request import waitall
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic

__all__ = ["GraphConfig", "GraphResult", "run_graph", "partition_graph"]

MECHANISMS = ("original", "tags", "communicators", "endpoints")


@dataclass
class GraphConfig:
    """Parameters for the Vite-style graph community-detection proxy."""

    num_nodes: int = 4
    threads_per_proc: int = 4
    #: Vertices in the generated power-law graph.
    graph_vertices: int = 256
    #: Attachment parameter of the Barabasi-Albert generator.
    graph_degree: int = 4
    iters: int = 3
    mechanism: str = "endpoints"
    #: Fraction of vertices whose ownership thread re-randomizes each
    #: iteration (the dynamic-neighbourhood knob).
    churn: float = 0.3
    update_cost: float = 100e-9
    seed: int = 0

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}")
        if not 0.0 <= self.churn <= 1.0:
            raise MpiUsageError("churn must be in [0, 1]")


@dataclass
class GraphResult:
    """Timing and message-volume summary of one graph-proxy run."""

    cfg: GraphConfig
    wall_time: float
    exchange_time: float
    #: Messages exchanged across processes over the whole run.
    remote_messages: int
    #: communicators mechanism only: worst per-iteration count of comms
    #: that carried traffic of >= 2 local threads (the Lesson 5
    #: serialization induced by changing neighbourhoods).
    comm_conflicts: int
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:14s} wall={self.wall_time * 1e6:9.1f}us "
                f"exch={self.exchange_time * 1e6:9.1f}us "
                f"msgs={self.remote_messages:5d} "
                f"conflicts={self.comm_conflicts}")


def partition_graph(cfg: GraphConfig) -> tuple[nx.Graph, dict[int, tuple[int, int]]]:
    """Generate the graph and the initial vertex -> (proc, thread) owner map."""
    g = nx.barabasi_albert_graph(cfg.graph_vertices, cfg.graph_degree,
                                 seed=cfg.seed)
    rng = np.random.default_rng(cfg.seed)
    owners = {}
    total_threads = cfg.num_nodes * cfg.threads_per_proc
    for v in g.nodes:
        slot = int(rng.integers(total_threads))
        owners[v] = (slot // cfg.threads_per_proc,
                     slot % cfg.threads_per_proc)
    return g, owners


class _GraphNode:
    def __init__(self, proc: MpiProcess, cfg: GraphConfig,
                 graph: nx.Graph, owners: dict):
        self.proc = proc
        self.cfg = cfg
        self.graph = graph
        self.owners = owners  # shared, mutated between iterations
        self.task_comms = []
        self.eps = None
        bits = max(1, math.ceil(math.log2(max(2, cfg.threads_per_proc))))
        self.schema = TagSchema(num_tid_bits=bits, num_app_bits=6)
        self.tag_comm = None
        self.updates_applied = 0
        self.checksum = 0.0
        self.exchange_time = 0.0
        self._exchange_accum: dict[int, float] = {}
        self.remote_messages = 0
        self.conflicts = 0

    def setup(self) -> Generator:
        cfg = self.cfg
        if cfg.mechanism == "communicators":
            # A static map: one communicator per local thread id — built
            # once, before the neighbourhood starts drifting (Lesson 5).
            for tid in range(cfg.threads_per_proc):
                self.task_comms.append(
                    (yield from self.proc.comm_world.Dup(name=f"g{tid}")))
        elif cfg.mechanism == "endpoints":
            self.eps = yield from comm_create_endpoints(
                self.proc.comm_world, cfg.threads_per_proc)
        elif cfg.mechanism == "tags":
            self.tag_comm = yield from self.proc.comm_world.Dup(
                listing2_info(cfg.threads_per_proc,
                              self.schema.num_tid_bits))
        else:
            self.tag_comm = self.proc.comm_world

    # -- per-iteration partner computation -------------------------------
    def partners(self, tid: int, it: int) -> dict[tuple[int, int], int]:
        """(proc, thread) -> number of updates to send this iteration."""
        out: dict[tuple[int, int], int] = {}
        me = (self.proc.rank, tid)
        for v, owner in self.owners.items():
            if owner != me:
                continue
            for nbr in self.graph.neighbors(v):
                o = self.owners[nbr]
                if o[0] != self.proc.rank:
                    out[o] = out.get(o, 0) + 1
        return out

    def incoming(self, tid: int) -> dict[tuple[int, int], int]:
        """Who will message (me, tid) this iteration."""
        out: dict[tuple[int, int], int] = {}
        me = (self.proc.rank, tid)
        for v, owner in self.owners.items():
            if owner[0] == self.proc.rank:
                continue
            for nbr in self.graph.neighbors(v):
                if self.owners[nbr] == me:
                    out[owner] = out.get(owner, 0) + 1
        # collapse: one message per (sender proc, sender thread)
        return out

    # -- mechanism-specific send/recv -------------------------------------
    def _send(self, tid: int, p2: int, t2: int, it: int,
              payload: np.ndarray) -> Generator:
        cfg = self.cfg
        if cfg.mechanism == "communicators":
            # Static map: sender uses its own thread's communicator; the
            # receiver must know which comm each dynamic partner uses —
            # and distinct remote partners may share it (conflicts).
            comm = self.task_comms[tid]
            return (yield from comm.Isend(payload, p2, tag=it))
        if cfg.mechanism == "endpoints":
            ep = self.eps[tid]
            target = p2 * cfg.threads_per_proc + t2
            return (yield from ep.Isend(payload, target, tag=it))
        tag = self.schema.encode(tid, t2, it % 64)
        return (yield from self.tag_comm.Isend(payload, p2, tag))

    def _recv(self, tid: int, p2: int, t2: int, it: int,
              buf: np.ndarray) -> Generator:
        cfg = self.cfg
        if cfg.mechanism == "communicators":
            comm = self.task_comms[t2]  # the sender's thread comm
            return (yield from comm.Irecv(buf, p2, tag=it))
        if cfg.mechanism == "endpoints":
            ep = self.eps[tid]
            source = p2 * cfg.threads_per_proc + t2
            return (yield from ep.Irecv(buf, source, tag=it))
        tag = self.schema.encode(t2, tid, it % 64)
        return (yield from self.tag_comm.Irecv(buf, p2, tag))

    def run_one(self, tid: int, it: int, barrier) -> Generator:
        """One iteration of one thread: exchange updates with the current
        (possibly churned) partner set, then apply them."""
        cfg, proc = self.cfg, self.proc
        payload = np.zeros(2)
        sends = self.partners(tid, it)
        expect = self.incoming(tid)
        t0 = proc.sim.now
        reqs, rbufs = [], []
        for (p2, t2), _count in sorted(expect.items()):
            buf = np.zeros(2)
            req = yield from self._recv(tid, p2, t2, it, buf)
            reqs.append(req)
            rbufs.append(buf)
        for (p2, t2), count in sorted(sends.items()):
            payload[0] = proc.rank * 1000 + tid
            payload[1] = count
            self.remote_messages += 1
            req = yield from self._send(tid, p2, t2, it, payload)
            reqs.append(req)
        yield from waitall(reqs)
        for buf in rbufs:
            self.updates_applied += 1
            self.checksum += buf[0]
            yield proc.compute(cfg.update_cost * max(1.0, buf[1]))
        self._exchange_accum[tid] = self._exchange_accum.get(tid, 0.0) \
            + proc.sim.now - t0
        yield from barrier.wait()

    def measure_conflicts(self, it: int) -> None:
        """Count communicators serving >= 2 local threads this iteration
        (receive side of the static map under churn)."""
        if self.cfg.mechanism != "communicators":
            return
        users: dict[int, set[int]] = {}
        for tid in range(self.cfg.threads_per_proc):
            for (p2, t2) in self.incoming(tid):
                users.setdefault(t2, set()).add(tid)
        self.conflicts = max(self.conflicts,
                             sum(1 for s in users.values() if len(s) > 1))


def run_graph(cfg: GraphConfig,
              net: Optional[NetworkConfig] = None,
              max_vcis_per_proc: int = 64,
              faults=None, transport=None,
              traffic: Optional[TrafficShape] = None,
              traffic_seed: int = 0,
              topology: str = "direct",
              topology_params: Optional[dict] = None) -> GraphResult:
    """Run the graph proxy under the configured mechanism.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`); defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    from ...sim.sync import Barrier

    graph, owners = partition_graph(cfg)
    world = World(cluster=chaos_cluster(cfg.num_nodes, cfg.threads_per_proc,
                                        net, topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=cfg.seed,
                  faults=faults, transport=transport)
    nodes: dict[int, _GraphNode] = {}
    rng = np.random.default_rng(cfg.seed + 1)

    # Precompute the per-iteration owner maps (the churn), shared by all
    # ranks — models the alltoall-style ownership refresh of Vite.
    owner_steps = [dict(owners)]
    total_threads = cfg.num_nodes * cfg.threads_per_proc
    for _ in range(cfg.iters - 1):
        new = dict(owner_steps[-1])
        for v in new:
            if rng.random() < cfg.churn:
                slot = int(rng.integers(total_threads))
                new[v] = (slot // cfg.threads_per_proc,
                          slot % cfg.threads_per_proc)
        owner_steps.append(new)

    def proc_main(proc):
        st = _GraphNode(proc, cfg, graph, dict(owner_steps[0]))
        nodes[proc.rank] = st
        yield from st.setup()
        barrier = Barrier(proc.sim, cfg.threads_per_proc)

        # Iteration-wise owner-map swap is driven per process: wrap the
        # per-thread body with a coordinator thread.
        def thread(tid):
            for it in range(cfg.iters):
                st.owners.clear()
                st.owners.update(owner_steps[it])
                st.measure_conflicts(it)
                yield from st.run_one(tid, it, barrier)

        threads = [proc.spawn(thread(tid))
                   for tid in range(cfg.threads_per_proc)]
        yield proc.sim.all_of(threads)
        return proc.sim.now


    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(cfg.num_nodes)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    # correctness: total updates applied == total remote messages sent
    sent = sum(st.remote_messages for st in nodes.values())
    applied = sum(st.updates_applied for st in nodes.values())
    correct = sent == applied
    return GraphResult(
        cfg=cfg,
        wall_time=max(ends),
        exchange_time=max(max(st._exchange_accum.values(), default=0.0)
                          for st in nodes.values()),
        remote_messages=sent,
        comm_conflicts=max(st.conflicts for st in nodes.values()),
        correct=correct,
    )
