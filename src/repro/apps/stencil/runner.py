"""Experiment runner for the stencil application suite.

``run_stencil`` builds a world (one process per node, as in the paper's
MPI+threads configurations), runs the chosen mechanism's driver, checks
data correctness against the sequential reference, and returns timings and
resource metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...mapping.endpoints import EndpointAddressing
from ...netsim.config import NetworkConfig
from ...runtime.world import World
from ..chaos import TrafficShape, chaos_cluster, install_traffic
from .drivers import StencilConfig, StencilProcessRun, make_run
from .field import assemble_global, reference_jacobi

__all__ = ["StencilResult", "run_stencil"]


@dataclass
class StencilResult:
    """Outcome of one stencil experiment."""

    cfg: StencilConfig
    #: Total simulated wall time of the slowest process.
    wall_time: float
    #: Max over threads of accumulated halo-exchange time (incl. waits).
    halo_time: float
    #: Mechanism resources created per process (comms / endpoints / ops).
    resources_created: int
    #: VCIs actually instantiated on process 0.
    vcis_used: int
    #: Mean NIC hardware-context sharing on node 0 (1.0 = dedicated).
    nic_oversubscription: float
    #: Max/mean message load across node-0 hardware contexts.
    nic_load_imbalance: float
    #: Did the final field match the sequential reference?
    correct: bool
    max_error: float
    #: Kernel events processed — an exact determinism fingerprint: two
    #: runs of the same (cfg, plan, seed) execute the same event count.
    sim_steps: int = 0
    #: The assembled final field (``check=True`` runs only) — lets tests
    #: compare lossy vs lossless runs byte for byte.
    final_field: Optional[np.ndarray] = None
    #: The world the experiment ran on (reliability reports, metrics).
    world: Optional[World] = None

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:14s} wall={self.wall_time * 1e6:9.1f}us "
                f"halo={self.halo_time * 1e6:9.1f}us "
                f"res={self.resources_created:4d} vcis={self.vcis_used:4d} "
                f"oversub={self.nic_oversubscription:4.1f} "
                f"correct={self.correct}")


def run_stencil(cfg: StencilConfig,
                net: Optional[NetworkConfig] = None,
                max_vcis_per_proc: int = 64,
                check: bool = True,
                metrics=None, tracer=None,
                faults=None, transport=None,
                traffic: Optional[TrafficShape] = None,
                traffic_seed: int = 0,
                topology: str = "direct",
                topology_params: Optional[dict] = None) -> StencilResult:
    """Run one stencil experiment end to end.

    ``metrics``/``tracer`` enable observability and ``faults``/
    ``transport`` enable fault injection with reliable transport — all
    four are forwarded to the :class:`World` untouched, so a plain call
    runs the same lossless, uninstrumented world as always. ``traffic``
    adds seeded background flows contending with the halo exchange, and
    ``topology`` routes the cluster over a multi-hop interconnect
    (``wall_time`` always measures the application tasks only).
    """
    geom = cfg.geometry()
    nprocs = 1
    for n in cfg.proc_grid:
        nprocs *= n
    world = World(cluster=chaos_cluster(nprocs, cfg.nthreads, net,
                                        topology, topology_params),
                  max_vcis_per_proc=max_vcis_per_proc, seed=cfg.seed,
                  metrics=metrics, tracer=tracer,
                  faults=faults, transport=transport)

    addr = EndpointAddressing(geom)
    coords = {addr.linear_proc(p): p for p in geom.procs()}
    runs: dict[int, StencilProcessRun] = {}

    def proc_main(proc):
        run = make_run(proc, coords[proc.rank], cfg)
        runs[proc.rank] = run
        yield from run.setup()
        threads = [proc.spawn(run.thread_body(t), name=f"r{proc.rank}.t{t}")
                   for t in geom.threads()]
        yield proc.sim.all_of(threads)
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(nprocs)]
    bg = install_traffic(world, traffic, traffic_seed)
    end_times = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    correct, max_err, final = True, 0.0, None
    if check:
        all_patches = {coords[r]: runs[r].patches for r in range(nprocs)}
        if cfg.dim == 2:
            final = assemble_global(geom, all_patches, cfg.pnx, cfg.pny)
            ref = reference_jacobi(geom, cfg.pnx, cfg.pny, cfg.iters,
                                   cfg.stencil_points, cfg.seed)
        else:
            from .field3d import assemble_global_3d, reference_jacobi_3d
            final = assemble_global_3d(geom, all_patches, cfg.pnx, cfg.pny,
                                       cfg.pnz)
            ref = reference_jacobi_3d(geom, cfg.pnx, cfg.pny, cfg.pnz,
                                      cfg.iters, cfg.stencil_points,
                                      cfg.seed)
        max_err = float(np.max(np.abs(final - ref)))
        correct = bool(np.allclose(final, ref))
        final = np.array(final, copy=True)

    lib0 = world.procs[0].lib
    nic0 = world.nodes[0].nic
    return StencilResult(
        cfg=cfg,
        wall_time=max(end_times),
        halo_time=max(r.halo_time for r in runs.values()),
        resources_created=runs[0].resources_created,
        vcis_used=lib0.vci_pool.num_active,
        nic_oversubscription=nic0.oversubscription,
        nic_load_imbalance=nic0.load_imbalance(),
        correct=correct,
        max_error=max_err,
        sim_steps=world.sim.steps,
        final_field=final,
        world=world,
    )
