"""Stencil halo-exchange drivers — one per mechanism the paper compares.

Every driver runs the same computation (Jacobi iterations over one patch
per thread) and differs only in *how the communication parallelism is
exposed*:

- :class:`TagBasedRun` covers both "MPI+threads (Original)" (thread ids in
  tags on one plain communicator — everything lands on one VCI) and the
  "tags with hints" mechanism of Listing 2 (same code plus an Info bundle);
- :class:`CommunicatorRun` uses a communicator map from
  :mod:`repro.mapping.communicators` (Listing 1 generalized);
- :class:`EndpointRun` uses user-visible endpoints (Listing 3);
- :class:`PartitionedRun` uses partitioned operations per process face
  (Listing 4), including the shared-request synchronization and the
  ``omp single``-style Waitall+restart step.

In-process neighbours exchange through shared memory in all mechanisms
(the ``need_mpi_op`` branch of the paper's listings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mapping.communicators import (
    CommMap,
    Coord,
    CornerOptimizedCommMap,
    MirroredCommMap,
    NaiveCommMap,
    StencilGeometry,
)
from ...mapping.endpoints import EndpointAddressing
from ...mapping.partitioned import PartitionPlan
from ...mapping.tags import TagSchema, listing2_info
from ...mpi.endpoints import comm_create_endpoints
from ...mpi.partitioned import precv_init, psend_init, startall, waitall_partitioned
from ...mpi.request import waitall
from ...runtime.world import MpiProcess
from ...sim.sync import Barrier
from .field import DIR_TAGS, Patch, halo_slices, jacobi5, jacobi9, make_patches

__all__ = ["StencilConfig", "StencilProcessRun", "TagBasedRun",
           "CommunicatorRun", "EndpointRun", "PartitionedRun",
           "make_run", "MECHANISMS"]

MECHANISMS = ("original", "tags", "communicators", "endpoints", "partitioned")


@dataclass
class StencilConfig:
    """Parameters of one stencil experiment.

    2D stencils (5/9 points) use ``(px, py)`` grids; 3D stencils (7/27
    points — the hypre shape of Lesson 3) use ``(px, py, pz)`` grids plus
    ``pnz``.
    """

    proc_grid: tuple = (2, 2)
    thread_grid: tuple = (3, 3)
    pnx: int = 8
    pny: int = 8
    pnz: int = 4
    stencil_points: int = 5          # 5 or 9 (2D); 7 or 27 (3D)
    iters: int = 4
    mechanism: str = "tags"
    #: For mechanism == "communicators": naive | mirrored | corner.
    comm_map: str = "mirrored"
    #: Simulated compute cost per interior cell per iteration.
    compute_cost_per_cell: float = 1e-9
    seed: int = 0

    def __post_init__(self):
        if self.stencil_points not in (5, 9, 7, 27):
            raise MpiUsageError("stencil_points must be 5/9 (2D) or "
                                "7/27 (3D)")
        if len(self.proc_grid) != self.dim or len(self.thread_grid) != self.dim:
            raise MpiUsageError(
                f"{self.stencil_points}-pt stencils need "
                f"{self.dim}-dimensional process/thread grids")
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}; "
                                f"choose from {MECHANISMS}")
        if self.mechanism == "partitioned" and self.stencil_points not in (5, 7):
            raise MpiUsageError(
                "partitioned stencils support face exchanges only "
                "(Lesson 15): use stencil_points=5 or 7")

    @property
    def dim(self) -> int:
        return 2 if self.stencil_points in (5, 9) else 3

    @property
    def stencil(self):
        from ...mapping.communicators import (
            STENCIL_2D_5PT,
            STENCIL_2D_9PT,
            STENCIL_3D_7PT,
            STENCIL_3D_27PT,
        )
        return {5: STENCIL_2D_5PT, 9: STENCIL_2D_9PT,
                7: STENCIL_3D_7PT, 27: STENCIL_3D_27PT}[self.stencil_points]

    @property
    def nthreads(self) -> int:
        n = 1
        for c in self.thread_grid:
            n *= c
        return n

    @property
    def patch_cells(self) -> int:
        return self.pnx * self.pny * (self.pnz if self.dim == 3 else 1)

    def geometry(self) -> StencilGeometry:
        return StencilGeometry(self.proc_grid, self.thread_grid, self.stencil)


class StencilProcessRun:
    """Per-process state and the mechanism-independent iteration skeleton."""

    def __init__(self, proc: MpiProcess, pcoord: Coord, cfg: StencilConfig):
        self.proc = proc
        self.p = pcoord
        self.cfg = cfg
        self.geom = cfg.geometry()
        if cfg.dim == 2:
            from .field import DIR_TAGS as _tags
            self.patches = make_patches(self.geom, pcoord, cfg.pnx, cfg.pny,
                                        cfg.seed)
            self.kernel = jacobi5 if cfg.stencil_points == 5 else jacobi9
            self.dir_tags = _tags
        else:
            from .field3d import (
                DIR_TAGS_3D,
                jacobi7,
                jacobi27,
                make_patches_3d,
            )
            self.patches = make_patches_3d(self.geom, pcoord, cfg.pnx,
                                           cfg.pny, cfg.pnz, cfg.seed)
            self.kernel = jacobi7 if cfg.stencil_points == 7 else jacobi27
            self.dir_tags = DIR_TAGS_3D
        self.barrier = Barrier(proc.sim, cfg.nthreads,
                               per_entry_cost=proc.world.cfg.cpu.lock_acquire)
        self.halo_time = 0.0      # max over threads, accumulated per thread
        self._thread_halo: dict[Coord, float] = {}
        #: Mechanism-specific resource count (comms/endpoints/part-ops).
        self.resources_created = 0

    def _halo_slices(self, d: Coord):
        if self.cfg.dim == 2:
            return halo_slices(self.cfg.pnx, self.cfg.pny, d)
        from .field3d import halo_slices_3d
        return halo_slices_3d(self.cfg.pnx, self.cfg.pny, self.cfg.pnz, d)

    # -- hooks --------------------------------------------------------------
    def setup(self) -> Generator:
        """Collective setup (communicator/endpoint/op creation)."""
        return
        yield

    def exchange(self, t: Coord) -> Generator:
        """Fill thread ``t``'s halos (remote via MPI, local via shm)."""
        raise NotImplementedError

    # -- shared pieces --------------------------------------------------------
    def shm_neighbors(self, t: Coord) -> Generator:
        """Copy halos from same-process neighbour patches."""
        geom, cfg = self.geom, self.cfg
        me = self.patches[t]
        for d in geom.stencil:
            g = tuple(pi * ti + ci for pi, ti, ci in
                      zip(self.p, geom.thread_grid, t))
            g2 = tuple(a + b for a, b in zip(g, d))
            if not geom.in_domain(g2) or geom.proc_of(g2) != self.p:
                continue
            nbr = self.patches[geom.thread_of(g2)]
            nd = tuple(-c for c in d)
            send_sl, _ = self._halo_slices(nd)
            _, recv_sl = self._halo_slices(d)
            strip = nbr.data[send_sl]
            yield self.proc.shm_exchange(strip.nbytes)
            me.data[recv_sl] = strip

    def remote_dirs(self, t: Coord) -> list[Coord]:
        """Directions in which thread ``t`` has an off-process neighbour."""
        geom = self.geom
        out = []
        g = tuple(pi * ti + ci for pi, ti, ci in
                  zip(self.p, geom.thread_grid, t))
        for d in geom.stencil:
            g2 = tuple(a + b for a, b in zip(g, d))
            if geom.in_domain(g2) and geom.proc_of(g2) != self.p:
                out.append(d)
        return out

    def pack(self, t: Coord, d: Coord) -> np.ndarray:
        send_sl, _ = self._halo_slices(d)
        return np.ascontiguousarray(self.patches[t].data[send_sl]).reshape(-1)

    def unpack(self, t: Coord, d: Coord, buf: np.ndarray) -> None:
        _, recv_sl = self._halo_slices(d)
        target = self.patches[t].data[recv_sl]
        target[:] = buf.reshape(target.shape)

    def recv_shape_len(self, d: Coord) -> int:
        _, recv_sl = self._halo_slices(d)
        dummy = self.patches[next(iter(self.patches))].data[recv_sl]
        return dummy.size

    # -- the iteration skeleton ------------------------------------------------
    def thread_body(self, t: Coord) -> Generator:
        """Per-thread iteration loop: compute, exchange halos, reduce."""
        cfg = self.cfg
        shape = (cfg.pny, cfg.pnx) if cfg.dim == 2 \
            else (cfg.pnz, cfg.pny, cfg.pnx)
        temp = np.zeros(shape)
        self._thread_halo[t] = 0.0
        for _ in range(cfg.iters):
            t0 = self.proc.sim.now
            yield from self.exchange(t)
            yield from self.barrier.wait()
            self._thread_halo[t] += self.proc.sim.now - t0
            # compute + commit (reads own data, writes own interior)
            patch = self.patches[t]
            self.kernel(patch, temp)
            yield self.proc.compute(
                cfg.compute_cost_per_cell * cfg.patch_cells)
            patch.interior[:] = temp
            yield from self.barrier.wait()
        self.halo_time = max(self._thread_halo.values())


class TagBasedRun(StencilProcessRun):
    """Original (no hints) and tags-with-hints (Listing 2) drivers."""

    def __init__(self, proc, pcoord, cfg, hinted: bool):
        super().__init__(proc, pcoord, cfg)
        self.hinted = hinted
        bits = max(1, math.ceil(math.log2(max(2, cfg.nthreads))))
        app_bits = 4 if cfg.dim == 2 else 5   # 8 vs 26 directions
        self.schema = TagSchema(num_tid_bits=bits, num_app_bits=app_bits)
        self.comm = None

    def setup(self) -> Generator:
        if self.hinted:
            bits = self.schema.num_tid_bits
            info = listing2_info(self.cfg.nthreads, bits)
            self.comm = yield from self.proc.comm_world.Dup(
                info, name="tag_par_app_comm")
        else:
            self.comm = self.proc.comm_world
        self.resources_created = 1

    def exchange(self, t: Coord) -> Generator:
        """Halo exchange with per-thread tag addressing."""
        geom, cfg = self.geom, self.cfg
        my_tid = geom.linear_tid(t)
        addr = EndpointAddressing(geom)
        reqs = []
        bufs = []
        for d in self.remote_dirs(t):
            g = tuple(pi * ti + ci for pi, ti, ci in
                      zip(self.p, geom.thread_grid, t))
            g2 = tuple(a + b for a, b in zip(g, d))
            nbr_proc = geom.proc_of(g2)
            nbr_t = geom.thread_of(g2)
            nbr_rank = addr.linear_proc(nbr_proc)
            nbr_tid = geom.linear_tid(nbr_t)
            nd = tuple(-c for c in d)
            # receive the neighbour's strip (it sends in direction -d)
            rbuf = np.zeros(self.recv_shape_len(d))
            rtag = self.schema.encode(nbr_tid, my_tid, self.dir_tags[nd])
            rreq = yield from self.comm.Irecv(rbuf, nbr_rank, rtag)
            reqs.append(rreq)
            bufs.append((d, rbuf))
            # send my strip in direction d
            stag = self.schema.encode(my_tid, nbr_tid, self.dir_tags[d])
            sreq = yield from self.comm.Isend(self.pack(t, d), nbr_rank, stag)
            reqs.append(sreq)
        yield from self.shm_neighbors(t)
        yield from waitall(reqs)
        for d, rbuf in bufs:
            self.unpack(t, d, rbuf)


class CommunicatorRun(StencilProcessRun):
    """Communicator-map driver (Listing 1 generalized)."""

    MAPS = {"naive": NaiveCommMap, "mirrored": MirroredCommMap,
            "corner": CornerOptimizedCommMap}

    def __init__(self, proc, pcoord, cfg):
        super().__init__(proc, pcoord, cfg)
        try:
            map_cls = self.MAPS[cfg.comm_map]
        except KeyError:
            raise MpiUsageError(f"unknown comm map {cfg.comm_map!r}") from None
        self.cmap: CommMap = map_cls(self.geom)
        self.handles: dict[Any, Any] = {}

    def setup(self) -> Generator:
        """Dup one communicator per map label — every process must create
        every label's communicator, in the same global order (Comm_dup is
        collective): the global resource footprint of Lesson 3."""
        labels = sorted(self.cmap.all_labels(), key=repr)
        for label in labels:
            self.handles[label] = yield from self.proc.comm_world.Dup(
                name=f"stencil{label!r}")
        self.resources_created = len(labels)

    def exchange(self, t: Coord) -> Generator:
        """Halo exchange over per-direction duplicated communicators."""
        from ...mapping.communicators import Exchange
        geom = self.geom
        addr = EndpointAddressing(geom)
        reqs = []
        bufs = []
        for d in self.remote_dirs(t):
            g = tuple(pi * ti + ci for pi, ti, ci in
                      zip(self.p, geom.thread_grid, t))
            g2 = tuple(a + b for a, b in zip(g, d))
            nbr_rank = addr.linear_proc(geom.proc_of(g2))
            nd = tuple(-c for c in d)
            # recv: the neighbour's message is the exchange g2 -> g
            rlabel = self.cmap.label(Exchange(g2, g))
            rbuf = np.zeros(self.recv_shape_len(d))
            rreq = yield from self.handles[rlabel].Irecv(
                rbuf, nbr_rank, self.dir_tags[nd])
            reqs.append(rreq)
            bufs.append((d, rbuf))
            # send: the exchange g -> g2
            slabel = self.cmap.label(Exchange(g, g2))
            sreq = yield from self.handles[slabel].Isend(
                self.pack(t, d), nbr_rank, self.dir_tags[d])
            reqs.append(sreq)
        yield from self.shm_neighbors(t)
        yield from waitall(reqs)
        for d, rbuf in bufs:
            self.unpack(t, d, rbuf)


class EndpointRun(StencilProcessRun):
    """User-visible endpoints driver (Listing 3)."""

    def __init__(self, proc, pcoord, cfg):
        super().__init__(proc, pcoord, cfg)
        self.addr = EndpointAddressing(self.geom)
        self.eps = None

    def setup(self) -> Generator:
        self.eps = yield from comm_create_endpoints(
            self.proc.comm_world, self.cfg.nthreads)
        self.resources_created = len(self.eps)

    def exchange(self, t: Coord) -> Generator:
        """Halo exchange through this thread's endpoint."""
        geom = self.geom
        ep = self.eps[geom.linear_tid(t)]
        reqs = []
        bufs = []
        for d in self.remote_dirs(t):
            nd = tuple(-c for c in d)
            partner = self.addr.partner_ep(self.p, t, d)
            rbuf = np.zeros(self.recv_shape_len(d))
            rreq = yield from ep.Irecv(rbuf, partner, self.dir_tags[nd])
            reqs.append(rreq)
            bufs.append((d, rbuf))
            sreq = yield from ep.Isend(self.pack(t, d), partner,
                                       self.dir_tags[d])
            reqs.append(sreq)
        yield from self.shm_neighbors(t)
        yield from waitall(reqs)
        for d, rbuf in bufs:
            self.unpack(t, d, rbuf)


class PartitionedRun(StencilProcessRun):
    """Partitioned-communication driver (Listing 4): one persistent
    partitioned send+recv per process face; threads drive partitions."""

    def __init__(self, proc, pcoord, cfg):
        super().__init__(proc, pcoord, cfg)
        self.plan = PartitionPlan(self.geom)
        self.ops: dict[Coord, dict] = {}
        #: Exchanges still to come; the completing thread restarts the
        #: persistent requests only when another cycle will consume them
        #: (a trailing start would leak an open cycle at finalize).
        self._cycles_left = cfg.iters

    def setup(self) -> Generator:
        """Initialize partitioned send/recv channels for every face once."""
        addr = EndpointAddressing(self.geom)
        comm = self.proc.comm_world
        all_reqs = []
        for f in self.plan.faces(self.p):
            count = self.recv_shape_len(f.direction)
            nbr_rank = addr.linear_proc(f.neighbor_proc)
            nd = tuple(-c for c in f.direction)
            send_buf = np.zeros(f.partitions * count)
            recv_buf = np.zeros(f.partitions * count)
            psend = psend_init(comm, send_buf, f.partitions, count,
                               dest=nbr_rank,
                               tag=self.dir_tags[f.direction])
            precv = precv_init(comm, recv_buf, f.partitions, count,
                               source=nbr_rank, tag=self.dir_tags[nd])
            self.ops[f.direction] = {
                "face": f, "count": count, "send_buf": send_buf,
                "recv_buf": recv_buf, "psend": psend, "precv": precv,
            }
            all_reqs.extend([psend, precv])
        yield from startall(all_reqs)
        self.resources_created = len(all_reqs)

    def exchange(self, t: Coord) -> Generator:
        """Mark owned partitions ready, then wait for neighbor arrivals."""
        cfg = self.cfg
        # 1. pack my strips and mark partitions ready
        my_faces = [(d, op) for d, op in self.ops.items()
                    if t in op["face"].partition_of]
        for d, op in my_faces:
            i = op["face"].partition_of[t]
            count = op["count"]
            op["send_buf"][i * count:(i + 1) * count] = self.pack(t, d)
            yield from op["psend"].pready(i)
        # 2. shared-memory neighbours while remote partitions fly
        yield from self.shm_neighbors(t)
        # 3. poll my incoming partitions (Listing 4's test_recv_from loop)
        for d, op in my_faces:
            i = op["face"].partition_of[t]
            while not (yield from op["precv"].parrived(i)):
                yield self.proc.compute(50e-9)
            count = op["count"]
            self.unpack(t, d, op["recv_buf"][i * count:(i + 1) * count])
        # 4. "omp single": one thread completes and restarts the requests,
        #    everyone else waits at the implicit barrier (Lesson 14's
        #    synchronization requirement, lines 37-40 of Listing 4)
        yield from self.barrier.wait()
        if self.geom.linear_tid(t) == 0:
            reqs = [op[k] for op in self.ops.values()
                    for k in ("psend", "precv")]
            yield from waitall_partitioned(reqs)
            self._cycles_left -= 1
            if self._cycles_left > 0:
                yield from startall(reqs)


def make_run(proc: MpiProcess, pcoord: Coord,
             cfg: StencilConfig) -> StencilProcessRun:
    """Instantiate the right driver for ``cfg.mechanism``."""
    if cfg.mechanism == "original":
        return TagBasedRun(proc, pcoord, cfg, hinted=False)
    if cfg.mechanism == "tags":
        return TagBasedRun(proc, pcoord, cfg, hinted=True)
    if cfg.mechanism == "communicators":
        return CommunicatorRun(proc, pcoord, cfg)
    if cfg.mechanism == "endpoints":
        return EndpointRun(proc, pcoord, cfg)
    if cfg.mechanism == "partitioned":
        return PartitionedRun(proc, pcoord, cfg)
    raise MpiUsageError(f"unknown mechanism {cfg.mechanism!r}")
