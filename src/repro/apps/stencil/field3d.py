"""3D patch fields for the 7-point / 27-point stencils (the hypre shape).

The paper's Lesson 3 arithmetic is about 3D 27-pt stencils ("the
communication pattern of real-world stencil applications, e.g. hypre");
this module provides the 3D counterpart of :mod:`.field`: patches with a
one-cell halo shell, direction tags for up to 26 neighbours, Jacobi
kernels, and a sequential reference for data-correctness checks.

Array layout is ``data[z, y, x]``; directions are ``(dx, dy, dz)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ...errors import MpiUsageError
from ...mapping.communicators import Coord, StencilGeometry

__all__ = ["Patch3D", "DIR_TAGS_3D", "halo_slices_3d", "jacobi7",
           "jacobi27", "make_patches_3d", "assemble_global_3d",
           "reference_jacobi_3d"]

#: Stable small integer per 3D direction (26 neighbours).
DIR_TAGS_3D = {
    d: i for i, d in enumerate(sorted(
        d for d in itertools.product((-1, 0, 1), repeat=3)
        if any(c != 0 for c in d)))
}


@dataclass
class Patch3D:
    """One thread's 3D patch: interior ``(pnz, pny, pnx)`` + halo shell."""

    data: np.ndarray
    pnx: int
    pny: int
    pnz: int

    @property
    def interior(self) -> np.ndarray:
        return self.data[1:self.pnz + 1, 1:self.pny + 1, 1:self.pnx + 1]


def _axis_slices(d: int, n: int) -> tuple[slice, slice]:
    if d == 0:
        return slice(1, n + 1), slice(1, n + 1)
    if d > 0:
        return slice(n, n + 1), slice(n + 1, n + 2)
    return slice(1, 2), slice(0, 1)


def halo_slices_3d(pnx: int, pny: int, pnz: int, direction: Coord
                   ) -> tuple[tuple, tuple]:
    """``(send, recv)`` index triples for one 3D direction."""
    if direction not in DIR_TAGS_3D:
        raise MpiUsageError(f"not a 27-point direction: {direction}")
    dx, dy, dz = direction
    sx, rx = _axis_slices(dx, pnx)
    sy, ry = _axis_slices(dy, pny)
    sz, rz = _axis_slices(dz, pnz)
    return (sz, sy, sx), (rz, ry, rx)


def jacobi7(patch: Patch3D, out: np.ndarray) -> None:
    """7-point Jacobi step (face neighbours) into ``out``."""
    d = patch.data
    nz, ny, nx = patch.pnz, patch.pny, patch.pnx
    c = (slice(1, ny + 1), slice(1, nx + 1))
    out[:] = (d[2:nz + 2, c[0], c[1]] + d[0:nz, c[0], c[1]]
              + d[1:nz + 1, 2:ny + 2, 1:nx + 1]
              + d[1:nz + 1, 0:ny, 1:nx + 1]
              + d[1:nz + 1, 1:ny + 1, 2:nx + 2]
              + d[1:nz + 1, 1:ny + 1, 0:nx]) / 6.0


def jacobi27(patch: Patch3D, out: np.ndarray) -> None:
    """27-point Jacobi step (average of the 26 neighbours)."""
    d = patch.data
    nz, ny, nx = patch.pnz, patch.pny, patch.pnx
    acc = np.zeros_like(out)
    for dz, dy, dx in DIR_TAGS_3D:
        acc += d[1 + dz:nz + 1 + dz, 1 + dy:ny + 1 + dy,
                 1 + dx:nx + 1 + dx]
    out[:] = acc / 26.0


def _init_value(xs, ys, zs, seed):
    return np.sin(0.37 * xs + 1.13 * ys + 0.71 * zs + seed)


def make_patches_3d(geom: StencilGeometry, p: Coord, pnx: int, pny: int,
                    pnz: int, seed: int = 0) -> dict[Coord, Patch3D]:
    """Allocate process ``p``'s patches, initialized from global coords."""
    patches: dict[Coord, Patch3D] = {}
    for t in geom.threads():
        gx0 = (p[0] * geom.thread_grid[0] + t[0]) * pnx
        gy0 = (p[1] * geom.thread_grid[1] + t[1]) * pny
        gz0 = (p[2] * geom.thread_grid[2] + t[2]) * pnz
        data = np.zeros((pnz + 2, pny + 2, pnx + 2))
        zs, ys, xs = np.meshgrid(np.arange(gz0, gz0 + pnz),
                                 np.arange(gy0, gy0 + pny),
                                 np.arange(gx0, gx0 + pnx), indexing="ij")
        data[1:pnz + 1, 1:pny + 1, 1:pnx + 1] = _init_value(xs, ys, zs, seed)
        patches[t] = Patch3D(data=data, pnx=pnx, pny=pny, pnz=pnz)
    return patches


def assemble_global_3d(geom: StencilGeometry,
                       all_patches: dict[Coord, dict[Coord, Patch3D]],
                       pnx: int, pny: int, pnz: int) -> np.ndarray:
    """Stitch every rank's 3-D patches into one global array."""
    gx = geom.global_grid[0] * pnx
    gy = geom.global_grid[1] * pny
    gz = geom.global_grid[2] * pnz
    out = np.zeros((gz, gy, gx))
    for p, patches in all_patches.items():
        for t, patch in patches.items():
            x0 = (p[0] * geom.thread_grid[0] + t[0]) * pnx
            y0 = (p[1] * geom.thread_grid[1] + t[1]) * pny
            z0 = (p[2] * geom.thread_grid[2] + t[2]) * pnz
            out[z0:z0 + pnz, y0:y0 + pny, x0:x0 + pnx] = patch.interior
    return out


def reference_jacobi_3d(geom: StencilGeometry, pnx: int, pny: int, pnz: int,
                        iters: int, stencil_points: int, seed: int = 0
                        ) -> np.ndarray:
    """Sequential reference with zero halos outside the domain."""
    gx = geom.global_grid[0] * pnx
    gy = geom.global_grid[1] * pny
    gz = geom.global_grid[2] * pnz
    zs, ys, xs = np.meshgrid(np.arange(gz), np.arange(gy), np.arange(gx),
                             indexing="ij")
    field = np.zeros((gz + 2, gy + 2, gx + 2))
    field[1:-1, 1:-1, 1:-1] = _init_value(xs, ys, zs, seed)
    patch = Patch3D(data=field, pnx=gx, pny=gy, pnz=gz)
    out = np.zeros((gz, gy, gx))
    kernel = jacobi7 if stencil_points == 7 else jacobi27
    for _ in range(iters):
        kernel(patch, out)
        patch.interior[:] = out
    return patch.interior.copy()
