"""Stencil halo-exchange application suite (the hypre/Uintah, Smilei and
Pencil proxy of Section III-A)."""

from .drivers import (
    MECHANISMS,
    CommunicatorRun,
    EndpointRun,
    PartitionedRun,
    StencilConfig,
    StencilProcessRun,
    TagBasedRun,
    make_run,
)
from .field import (
    DIR_TAGS,
    Patch,
    assemble_global,
    halo_slices,
    jacobi5,
    jacobi9,
    make_patches,
    reference_jacobi,
)
from .field3d import (
    DIR_TAGS_3D,
    Patch3D,
    assemble_global_3d,
    halo_slices_3d,
    jacobi7,
    jacobi27,
    make_patches_3d,
    reference_jacobi_3d,
)
from .runner import StencilResult, run_stencil

__all__ = [
    "DIR_TAGS", "DIR_TAGS_3D", "MECHANISMS", "CommunicatorRun",
    "EndpointRun", "Patch", "Patch3D", "PartitionedRun", "StencilConfig",
    "StencilProcessRun", "StencilResult", "TagBasedRun", "assemble_global",
    "assemble_global_3d", "halo_slices", "halo_slices_3d", "jacobi5",
    "jacobi7", "jacobi9", "jacobi27", "make_patches", "make_patches_3d",
    "make_run", "reference_jacobi", "reference_jacobi_3d", "run_stencil",
]
