"""Patch-based 2D fields for stencil halo exchange.

Each thread owns one patch (the paper's decomposition: "each thread has 1
patch", Fig 4). A patch stores its interior plus a one-cell halo ring;
halo exchange fills the ring from neighbouring patches (via MPI across
processes, via shared memory within one).

The Jacobi kernels are real numpy computations, so the stencil runs are
checked for *data correctness* against a sequential reference — the halo
traffic is not just timed, it must also be right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ...errors import MpiUsageError
from ...mapping.communicators import Coord, StencilGeometry

__all__ = ["Patch", "halo_slices", "jacobi5", "jacobi9",
           "reference_jacobi", "assemble_global", "make_patches",
           "DIR_TAGS"]

#: Stable small integer per direction, used as the application tag bits.
DIR_TAGS = {
    (0, 1): 0, (0, -1): 1, (1, 0): 2, (-1, 0): 3,
    (1, 1): 4, (-1, -1): 5, (1, -1): 6, (-1, 1): 7,
}


@dataclass
class Patch:
    """One thread's patch: interior ``(pny, pnx)`` plus halo ring.

    Array layout is ``data[y, x]`` with the interior at
    ``data[1:pny+1, 1:pnx+1]``; +y is "north".
    """

    data: np.ndarray
    pnx: int
    pny: int

    @property
    def interior(self) -> np.ndarray:
        return self.data[1:self.pny + 1, 1:self.pnx + 1]


def halo_slices(pnx: int, pny: int, direction: Coord
                ) -> tuple[tuple[slice, slice], tuple[slice, slice]]:
    """``(send, recv)`` index pairs for one direction.

    ``send`` selects the interior cells adjacent to the ``direction`` face
    (what we ship to the neighbour); ``recv`` selects our halo cells on
    that side (where the neighbour's strip lands).
    """
    dx, dy = direction
    if (dx, dy) not in DIR_TAGS:
        raise MpiUsageError(f"not a 9-point direction: {direction}")

    def axis(d, n):
        # returns (send_slice, recv_slice) along one axis
        if d == 0:
            return slice(1, n + 1), slice(1, n + 1)
        if d > 0:
            return slice(n, n + 1), slice(n + 1, n + 2)
        return slice(1, 2), slice(0, 1)

    sx, rx = axis(dx, pnx)
    sy, ry = axis(dy, pny)
    return (sy, sx), (ry, rx)


def jacobi5(patch: Patch, out: np.ndarray) -> None:
    """5-point Jacobi step into ``out`` (interior shape)."""
    d = patch.data
    ny, nx = patch.pny, patch.pnx
    out[:] = 0.25 * (d[2:ny + 2, 1:nx + 1] + d[0:ny, 1:nx + 1]
                     + d[1:ny + 1, 2:nx + 2] + d[1:ny + 1, 0:nx])


def jacobi9(patch: Patch, out: np.ndarray) -> None:
    """9-point Jacobi step (average of the 8 neighbours)."""
    d = patch.data
    ny, nx = patch.pny, patch.pnx
    out[:] = (d[2:ny + 2, 1:nx + 1] + d[0:ny, 1:nx + 1]
              + d[1:ny + 1, 2:nx + 2] + d[1:ny + 1, 0:nx]
              + d[2:ny + 2, 2:nx + 2] + d[2:ny + 2, 0:nx]
              + d[0:ny, 2:nx + 2] + d[0:ny, 0:nx]) / 8.0


def make_patches(geom: StencilGeometry, p: Coord, pnx: int, pny: int,
                 seed: int = 0) -> dict[Coord, Patch]:
    """Allocate and deterministically initialize process ``p``'s patches.

    The initial value of each interior cell depends only on its *global*
    cell coordinates, so every decomposition of the same global field
    starts identically (and can be checked against the reference).
    """
    patches: dict[Coord, Patch] = {}
    for t in geom.threads():
        gx0 = (p[0] * geom.thread_grid[0] + t[0]) * pnx
        gy0 = (p[1] * geom.thread_grid[1] + t[1]) * pny
        data = np.zeros((pny + 2, pnx + 2))
        ys, xs = np.meshgrid(np.arange(gy0, gy0 + pny),
                             np.arange(gx0, gx0 + pnx), indexing="ij")
        # Cheap deterministic pseudo-random init from coordinates.
        data[1:pny + 1, 1:pnx + 1] = np.sin(0.37 * xs + 1.13 * ys + seed)
        patches[t] = Patch(data=data, pnx=pnx, pny=pny)
    return patches


def assemble_global(geom: StencilGeometry, all_patches: dict[Coord, dict[Coord, Patch]],
                    pnx: int, pny: int) -> np.ndarray:
    """Stitch every process's patches into the global interior array."""
    gx = geom.global_grid[0] * pnx
    gy = geom.global_grid[1] * pny
    out = np.zeros((gy, gx))
    for p, patches in all_patches.items():
        for t, patch in patches.items():
            x0 = (p[0] * geom.thread_grid[0] + t[0]) * pnx
            y0 = (p[1] * geom.thread_grid[1] + t[1]) * pny
            out[y0:y0 + pny, x0:x0 + pnx] = patch.interior
    return out


def reference_jacobi(geom: StencilGeometry, pnx: int, pny: int,
                     iters: int, stencil_points: int, seed: int = 0
                     ) -> np.ndarray:
    """Sequential reference: the same field iterated globally with numpy.

    Domain boundary cells see zero halos, matching the distributed runs
    (halo rings outside the domain are never written).
    """
    gx = geom.global_grid[0] * pnx
    gy = geom.global_grid[1] * pny
    ys, xs = np.meshgrid(np.arange(gy), np.arange(gx), indexing="ij")
    field = np.zeros((gy + 2, gx + 2))
    field[1:-1, 1:-1] = np.sin(0.37 * xs + 1.13 * ys + seed)
    patch = Patch(data=field, pnx=gx, pny=gy)
    out = np.zeros((gy, gx))
    kernel = jacobi5 if stencil_points == 5 else jacobi9
    for _ in range(iters):
        kernel(patch, out)
        patch.interior[:] = out
    return patch.interior.copy()
