"""Device-initiated communication proxy (Lesson 20, Section III-D).

Models a GPU-accelerated iterative exchange between nodes. The "GPU" is a
set of simulated thread blocks whose operations are charged device-side
costs; the host thread pays kernel-launch and synchronization latencies.

Strategies compared (the paper's discussion):

- ``host-driven`` — the status quo: control returns to the CPU every
  timestep; the host launches a kernel, synchronizes, performs the MPI
  exchange, and launches again. Pays a kernel launch + sync per step.
- ``device-partitioned`` — partitioned communication's Lesson 20 pitch:
  ``Psend_init``/``Precv_init`` run **on the host before launch** (the
  serial setup off the critical path); a *persistent kernel* then drives
  partitions with lightweight ``Pready``/``Parrived`` triggers from device
  threads. Control still returns to the host once per step for
  ``MPI_Wait``/``MPI_Start`` — the residual synchronization the paper
  warns "will re-introduce device runtime overheads" — but that is a flag
  exchange, not a launch.
- ``device-mpi`` — hypothetical GPU-initiated *full* MPI: device threads
  call Isend/Irecv themselves. Every call pays the device MPI-op cost
  ("executing MPI's matching engine on the GPU is known to be
  expensive" [45]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...mpi.partitioned import precv_init, psend_init, startall, waitall_partitioned
from ...mpi.request import waitall
from ...netsim.config import NetworkConfig
from ...runtime.world import MpiProcess, World
from ..chaos import TrafficShape, chaos_cluster, install_traffic
from ...sim.sync import Barrier, Gate

__all__ = ["DeviceParams", "DeviceConfig", "DeviceResult", "run_device"]

MECHANISMS = ("host-driven", "device-partitioned", "device-mpi")


@dataclass(frozen=True)
class DeviceParams:
    """Accelerator cost model."""

    #: Host-side kernel launch latency (CUDA-launch scale).
    kernel_launch: float = 8e-6
    #: Host<->device synchronization (stream sync / flag round trip).
    host_sync: float = 2e-6
    #: Device compute per thread block per timestep.
    block_compute: float = 3e-6
    #: Device-side cost of a lightweight trigger (Pready/Parrived from a
    #: GPU thread: a flag write over PCIe/NVLink).
    device_trigger: float = 300e-9
    #: Device-side cost of a *full* MPI call (matching engine on the GPU).
    device_mpi_op: float = 5e-6


@dataclass
class DeviceConfig:
    """Parameters for the GPU-offload boundary-exchange proxy."""

    num_nodes: int = 2
    #: GPU thread blocks driving communication per node.
    blocks: int = 8
    #: Elements per block boundary message.
    count: int = 64
    timesteps: int = 6
    mechanism: str = "device-partitioned"
    params: DeviceParams = DeviceParams()

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise MpiUsageError(f"unknown mechanism {self.mechanism!r}")
        if self.num_nodes != 2:
            raise MpiUsageError("the device proxy models a 2-node exchange")


@dataclass
class DeviceResult:
    """Timing and correctness summary of one device-proxy run."""

    cfg: DeviceConfig
    wall_time: float
    time_per_step: float
    #: Host-side kernel launches performed over the whole run.
    kernel_launches: int
    correct: bool

    def __str__(self) -> str:
        return (f"{self.cfg.mechanism:19s} "
                f"step={self.time_per_step * 1e6:8.2f}us "
                f"launches={self.kernel_launches:3d}")


class _DeviceNode:
    def __init__(self, proc: MpiProcess, cfg: DeviceConfig):
        self.proc = proc
        self.cfg = cfg
        self.peer = 1 - proc.rank
        self.launches = 0
        self.recv_sums: list[float] = []

    # -- host-driven -------------------------------------------------------
    def run_host_driven(self) -> Generator:
        """Classic offload: host launches a kernel, then communicates."""
        cfg, proc, p = self.cfg, self.proc, self.cfg.params
        n = cfg.blocks * cfg.count
        send_buf = np.zeros(n)
        recv_buf = np.zeros(n)
        comm = proc.comm_world
        for step in range(cfg.timesteps):
            # launch + run the compute kernel, then sync back to the host
            self.launches += 1
            yield proc.compute(p.kernel_launch)
            yield proc.compute(p.block_compute)  # blocks run in parallel
            yield proc.compute(p.host_sync)
            send_buf[:] = proc.rank * 1000 + step
            # host performs the whole exchange
            rreq = yield from comm.Irecv(recv_buf, self.peer, tag=step % 8)
            sreq = yield from comm.Isend(send_buf, self.peer, tag=step % 8)
            yield from waitall([rreq, sreq])
            self.recv_sums.append(float(recv_buf[0]))

    # -- device-partitioned --------------------------------------------------
    def run_device_partitioned(self) -> Generator:
        """Device blocks signal partition readiness; host sets up once."""
        cfg, proc, p = self.cfg, self.proc, self.cfg.params
        n = cfg.blocks * cfg.count
        send_buf = np.zeros(n)
        recv_buf = np.zeros(n)
        comm = proc.comm_world
        # Host-side setup, off the critical path (Psend/Precv_init).
        psend = psend_init(comm, send_buf, cfg.blocks, cfg.count,
                           dest=self.peer, tag=0)
        precv = precv_init(comm, recv_buf, cfg.blocks, cfg.count,
                           source=self.peer, tag=0)
        yield from startall([psend, precv])
        # One persistent kernel for the whole run.
        self.launches += 1
        yield proc.compute(p.kernel_launch)

        barrier = Barrier(proc.sim, cfg.blocks)
        step_gates: dict[int, Gate] = {}

        def gate(step):
            if step not in step_gates:
                step_gates[step] = Gate(proc.sim)
            return step_gates[step]

        def block(bid):
            lo = bid * cfg.count
            for step in range(cfg.timesteps):
                yield proc.compute(p.block_compute)
                send_buf[lo:lo + cfg.count] = proc.rank * 1000 + step
                # lightweight device trigger
                yield proc.compute(p.device_trigger)
                yield from psend.pready(bid)
                while not (yield from precv.parrived(bid)):
                    yield proc.compute(p.device_trigger)
                yield from barrier.wait()
                if bid == 0:
                    # control returns to the host: Wait + restart (no
                    # restart after the last step — it would leave an
                    # open cycle dangling at finalize)
                    yield proc.compute(p.host_sync)
                    yield from waitall_partitioned([psend, precv])
                    self.recv_sums.append(float(recv_buf[0]))
                    if step + 1 < cfg.timesteps:
                        yield from startall([psend, precv])
                    gate(step).open()
                yield from gate(step).wait()

        blocks = [proc.spawn(block(b)) for b in range(cfg.blocks)]
        yield proc.sim.all_of(blocks)

    # -- device full MPI -------------------------------------------------------
    def run_device_mpi(self) -> Generator:
        """Persistent kernel whose thread blocks call MPI directly."""
        cfg, proc, p = self.cfg, self.proc, self.cfg.params
        comm = proc.comm_world
        barrier = Barrier(proc.sim, cfg.blocks)
        sums = np.zeros(cfg.blocks)
        # One persistent kernel; device threads speak MPI directly.
        self.launches += 1
        yield proc.compute(p.kernel_launch)

        def block(bid):
            send = np.zeros(cfg.count)
            recv = np.zeros(cfg.count)
            for step in range(cfg.timesteps):
                yield proc.compute(p.block_compute)
                send[:] = proc.rank * 1000 + step
                # every MPI call pays the device matching-engine cost [45]
                yield proc.compute(p.device_mpi_op)
                rreq = yield from comm.Irecv(recv, self.peer,
                                             tag=bid * 16 + step % 8)
                yield proc.compute(p.device_mpi_op)
                sreq = yield from comm.Isend(send, self.peer,
                                             tag=bid * 16 + step % 8)
                yield from waitall([rreq, sreq])
                if bid == 0:
                    self.recv_sums.append(float(recv[0]))
                yield from barrier.wait()

        blocks = [proc.spawn(block(b)) for b in range(cfg.blocks)]
        yield proc.sim.all_of(blocks)


def run_device(cfg: DeviceConfig,
               net: Optional[NetworkConfig] = None,
               seed: int = 0,
               faults=None, transport=None,
               traffic: Optional[TrafficShape] = None,
               traffic_seed: int = 0,
               topology: str = "direct",
               topology_params: Optional[dict] = None) -> DeviceResult:
    """Run the device-offload proxy under the chosen mechanism.

    The trailing keywords are the shared chaos block (see
    :mod:`repro.apps.chaos`); defaults reproduce the historical lossless
    direct-fabric run byte for byte.
    """
    world = World(cluster=chaos_cluster(2, cfg.blocks, net,
                                        topology, topology_params),
                  seed=seed, faults=faults, transport=transport)
    nodes = {}

    def proc_main(proc):
        st = _DeviceNode(proc, cfg)
        nodes[proc.rank] = st
        if cfg.mechanism == "host-driven":
            yield from st.run_host_driven()
        elif cfg.mechanism == "device-partitioned":
            yield from st.run_device_partitioned()
        else:
            yield from st.run_device_mpi()
        return proc.sim.now

    tasks = [world.procs[r].spawn(proc_main(world.procs[r]))
             for r in range(2)]
    bg = install_traffic(world, traffic, traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]

    # Each node must have observed the peer's per-step values in order.
    correct = all(
        st.recv_sums == [float((1 - r) * 1000 + s)
                         for s in range(cfg.timesteps)]
        for r, st in nodes.items())
    wall = max(ends)
    return DeviceResult(cfg=cfg, wall_time=wall,
                        time_per_step=wall / cfg.timesteps,
                        kernel_launches=max(st.launches
                                            for st in nodes.values()),
                        correct=correct)
