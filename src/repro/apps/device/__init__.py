"""Device-initiated communication proxy (Lesson 20)."""

from .offload import DeviceConfig, DeviceParams, DeviceResult, run_device

__all__ = ["DeviceConfig", "DeviceParams", "DeviceResult", "run_device"]
