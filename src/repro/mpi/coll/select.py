"""Per-communicator collective algorithm selection.

Real MPI libraries expose per-communicator algorithm control (MPICH's
``MPIR_CVAR_ALLREDUCE_INTRA_ALGORITHM``, Open MPI's coll tuned module);
this registry is the simulated equivalent. Every collective operation
names its selectable algorithms here; ``"auto"`` is always valid and
means "use the library's size-based heuristic". Selections reach a
communicator two ways:

- imperatively: ``comm.set_coll_algorithm("allreduce", "ring")``;
- declaratively, through Info hints at ``Dup`` time:
  ``Info({"repro_coll_allreduce": "ring"})`` (key pattern
  ``repro_coll_<op>``).

Only operations with more than one implementation gain real choice
today (allreduce: recursive doubling vs ring); the others are listed so
selections validate against a single source of truth as alternatives
are added.
"""

from __future__ import annotations

from ...errors import InvalidHintError

__all__ = ["COLL_ALGORITHMS", "HINT_PREFIX", "validate_selection"]

#: Selectable algorithm names per collective operation. ``"auto"`` is
#: implicit for every operation and therefore not listed.
COLL_ALGORITHMS: dict[str, tuple[str, ...]] = {
    "allgather": ("ring",),
    "allreduce": ("recursive_doubling", "ring"),
    "alltoall": ("pairwise",),
    "barrier": ("dissemination",),
    "bcast": ("binomial",),
    "gather": ("binomial",),
    "reduce": ("binomial",),
    "reduce_scatter_block": ("pairwise",),
    "scan": ("linear",),
    "scatter": ("binomial",),
}

#: Info-hint key prefix: ``repro_coll_allreduce=ring``.
HINT_PREFIX = "repro_coll_"


def validate_selection(op: str, algorithm: str) -> tuple[str, str]:
    """Check an (operation, algorithm) pair; returns it normalized.

    Raises :class:`~repro.errors.InvalidHintError` naming the valid
    choices on unknown operations or algorithms.
    """
    op = op.strip().lower()
    algorithm = algorithm.strip().lower()
    if op not in COLL_ALGORITHMS:
        raise InvalidHintError(
            f"unknown collective operation {op!r}; selectable: "
            f"{', '.join(sorted(COLL_ALGORITHMS))}")
    choices = COLL_ALGORITHMS[op] + ("auto",)
    if algorithm not in choices:
        raise InvalidHintError(
            f"unknown {op} algorithm {algorithm!r}; choices: "
            f"{', '.join(sorted(choices))}")
    return op, algorithm
