"""Collective communication: algorithms, operators, and the user-driven
intranode helpers of Lesson 18."""

from .algorithms import (
    allgather_ring,
    allgatherv_ring,
    allreduce_recursive_doubling,
    allreduce_ring,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    gather_binomial,
    gatherv_linear,
    reduce_binomial,
    reduce_scatter_block,
    scan_linear,
    scatter_binomial,
)
from .hierarchical import ThreadTeamBcast, ThreadTeamReduce
from .ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, Op

__all__ = [
    "BAND", "BOR", "LAND", "LOR", "MAX", "MIN", "PROD", "SUM", "Op",
    "ThreadTeamBcast", "ThreadTeamReduce", "allgather_ring",
    "allgatherv_ring", "allreduce_recursive_doubling", "allreduce_ring",
    "alltoall_pairwise", "barrier_dissemination", "bcast_binomial",
    "gather_binomial", "gatherv_linear", "reduce_binomial",
    "reduce_scatter_block", "scan_linear", "scatter_binomial",
]
