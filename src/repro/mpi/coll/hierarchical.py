"""User-driven intranode collective steps (Lesson 18).

With *existing MPI mechanisms*, a multithreaded collective is two-step:
each thread performs the internode part on its own communicator (on its
data segment), and the application then performs the intranode part — e.g.
a reduction across the threads' buffers — by hand. With endpoints or
partitioned collectives the library does both parts.

:class:`ThreadTeamReduce` models the by-hand intranode part: a binary
combining tree over the threads of one process, with a barrier per level
and shared-memory copy + reduction costs charged to the participating
threads. The paper argues this manual step is both a productivity and a
performance liability ("efficiently implementing a collective is not a
trivial task").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...sim.sync import Barrier
from .ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.world import MpiProcess

__all__ = ["ThreadTeamReduce", "ThreadTeamBcast"]


class ThreadTeamReduce:
    """Tree reduction across the thread buffers of one process.

    All ``nthreads`` threads call ``yield from team.reduce(tid, buf)``;
    when it returns, thread 0's ``buf`` holds the elementwise reduction of
    every thread's buffer. Other threads' buffers are left partially
    combined (scratch), as in a typical hand-rolled OpenMP reduction.
    """

    def __init__(self, proc: "MpiProcess", nthreads: int, op: Op):
        if nthreads < 1:
            raise MpiUsageError("thread team needs at least one thread")
        self.proc = proc
        self.nthreads = nthreads
        self.op = op
        self._barrier = Barrier(proc.sim, nthreads,
                                per_entry_cost=proc.world.cfg.cpu.lock_acquire)
        self._slots: dict[int, np.ndarray] = {}

    def reduce(self, tid: int, buf: np.ndarray) -> Generator:
        """Participate in the team reduction as thread ``tid``."""
        if not 0 <= tid < self.nthreads:
            raise MpiUsageError(f"tid {tid} out of range")
        self._slots[tid] = buf
        cpu = self.proc.world.cfg.cpu
        stride = 1
        while stride < self.nthreads:
            yield from self._barrier.wait()
            if tid % (2 * stride) == 0 and tid + stride < self.nthreads:
                other = self._slots[tid + stride]
                # Pull the partner's buffer through shared memory, combine.
                yield self.proc.shm_exchange(other.nbytes)
                self.op.apply(buf, other)
                yield self.proc.sim.timeout(cpu.reduce_per_byte * buf.nbytes)
            stride *= 2
        yield from self._barrier.wait()


class ThreadTeamBcast:
    """Broadcast thread 0's buffer to all threads of a process.

    Models the read-side of a hand-rolled intranode collective: after a
    barrier, every non-root thread copies the root buffer through shared
    memory (or, if ``copy=False``, merely reads it in place — the
    no-duplication advantage of existing mechanisms in Lesson 19).
    """

    def __init__(self, proc: "MpiProcess", nthreads: int, copy: bool = True):
        self.proc = proc
        self.nthreads = nthreads
        self.copy = copy
        self._barrier = Barrier(proc.sim, nthreads,
                                per_entry_cost=proc.world.cfg.cpu.lock_acquire)
        self._root_buf: Optional[np.ndarray] = None

    def bcast(self, tid: int, buf: np.ndarray) -> Generator:
        """Node-local broadcast: root publishes, others copy after barrier."""
        if tid == 0:
            self._root_buf = buf
        yield from self._barrier.wait()
        if tid != 0:
            if self.copy:
                yield self.proc.shm_exchange(self._root_buf.nbytes)
                buf[:] = self._root_buf
            # else: threads read the single shared buffer directly.
        yield from self._barrier.wait()
