"""Collective algorithms, implemented over the simulated point-to-point
layer.

Every algorithm is a generator run by *each participating rank* (the usual
SPMD convention). Internal traffic uses the communicator's collective
context id (``comm.coll_context_id``) and round-number tags, so it can
never interfere with user point-to-point matching.

Algorithms follow the classic implementations (Chan et al. 2007, MPICH):

- barrier: dissemination (``ceil(log2 n)`` rounds);
- bcast / reduce: binomial tree;
- allreduce: recursive doubling with non-power-of-two fold-in;
- allgather: ring;
- alltoall: shifted pairwise exchange;
- gather / scatter: binomial subtree forwarding;
- scan: rank chain;
- reduce-scatter: pairwise partial reductions.

Local reduction work is charged at ``cpu.reduce_per_byte``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ..datatypes import check_buffer
from ..request import waitall
from .ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from ..comm import Communicator

__all__ = [
    "allgather_ring",
    "allgatherv_ring",
    "gatherv_linear",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "alltoall_pairwise",
    "barrier_dissemination",
    "bcast_binomial",
    "gather_binomial",
    "reduce_binomial",
    "reduce_scatter_block",
    "scan_linear",
    "scatter_binomial",
]

_EMPTY = np.zeros(0, dtype=np.uint8)


def _sendrecv(comm: "Communicator", sendbuf, dest, recvbuf, source, tag, ctx
              ) -> Generator:
    """Simultaneous exchange with (possibly different) peers."""
    rreq = yield from comm.Irecv(recvbuf, source, tag, _context_id=ctx)
    sreq = yield from comm.Isend(sendbuf, dest, tag, _context_id=ctx)
    yield from waitall([rreq, sreq])


def _charge_reduce(comm: "Communicator", nbytes: int) -> Generator:
    cost = comm.lib.cpu.reduce_per_byte * nbytes
    if cost > 0:
        yield comm.sim.timeout(cost)


def barrier_dissemination(comm: "Communicator") -> Generator:
    """Dissemination barrier: round k exchanges with ranks +/- 2^k."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    if n == 1:
        return
    scratch = np.zeros(0, dtype=np.uint8)
    k = 0
    dist = 1
    while dist < n:
        dst = (rank + dist) % n
        src = (rank - dist) % n
        yield from _sendrecv(comm, _EMPTY, dst, scratch, src, tag=k, ctx=ctx)
        dist <<= 1
        k += 1


def bcast_binomial(comm: "Communicator", buf: np.ndarray, root: int = 0,
                   count: Optional[int] = None) -> Generator:
    """Binomial-tree broadcast from ``root``."""
    n, rank = comm.size, comm.rank
    if not 0 <= root < n:
        raise MpiUsageError(f"bcast root {root} out of range")
    if n == 1:
        return
    ctx = comm.coll_context_id
    flat = check_buffer(buf, count)
    vrank = (rank - root) % n
    # Receive from the parent (if not root).
    mask = 1
    while mask < n:
        if vrank & mask:
            src = (vrank - mask + root) % n
            rreq = yield from comm.Irecv(flat, src, tag=0, count=count,
                                         _context_id=ctx)
            yield from rreq.wait()
            break
        mask <<= 1
    # Forward to children.
    mask >>= 1
    while mask > 0:
        if vrank & mask == 0 and vrank + mask < n:
            dst = (vrank + mask + root) % n
            sreq = yield from comm.Isend(flat, dst, tag=0, count=count,
                                         _context_id=ctx)
            yield from sreq.wait()
        mask >>= 1


def reduce_binomial(comm: "Communicator", sendbuf: np.ndarray,
                    recvbuf: Optional[np.ndarray], op: Op,
                    root: int = 0) -> Generator:
    """Binomial-tree reduction to ``root`` (commutative ops)."""
    n, rank = comm.size, comm.rank
    if not 0 <= root < n:
        raise MpiUsageError(f"reduce root {root} out of range")
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    acc = send_flat.copy()
    tmp = np.zeros_like(acc)
    vrank = (rank - root) % n
    mask = 1
    while mask < n:
        if vrank & mask == 0:
            vsrc = vrank | mask
            if vsrc < n:
                src = (vsrc + root) % n
                rreq = yield from comm.Irecv(tmp, src, tag=mask,
                                             _context_id=ctx)
                yield from rreq.wait()
                op.apply(acc, tmp)
                yield from _charge_reduce(comm, acc.nbytes)
            mask <<= 1
        else:
            dst = ((vrank & ~mask) + root) % n
            sreq = yield from comm.Isend(acc, dst, tag=mask, _context_id=ctx)
            yield from sreq.wait()
            break
    if rank == root:
        if recvbuf is None:
            raise MpiUsageError("reduce root needs a receive buffer")
        check_buffer(recvbuf)[: acc.size] = acc


def allreduce_recursive_doubling(comm: "Communicator", sendbuf: np.ndarray,
                                 recvbuf: np.ndarray, op: Op) -> Generator:
    """Recursive-doubling allreduce with fold-in for non-powers-of-two."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    if recv_flat.size < send_flat.size:
        raise MpiUsageError("allreduce recvbuf smaller than sendbuf")
    acc = send_flat.copy()
    tmp = np.zeros_like(acc)
    if n == 1:
        recv_flat[: acc.size] = acc
        return

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    # Fold the first 2*rem ranks down to rem ranks.
    if rank < 2 * rem:
        if rank % 2 == 0:
            sreq = yield from comm.Isend(acc, rank + 1, tag=0, _context_id=ctx)
            yield from sreq.wait()
            newrank = -1
        else:
            rreq = yield from comm.Irecv(tmp, rank - 1, tag=0, _context_id=ctx)
            yield from rreq.wait()
            op.apply(acc, tmp)
            yield from _charge_reduce(comm, acc.nbytes)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (partner_new * 2 + 1 if partner_new < rem
                       else partner_new + rem)
            yield from _sendrecv(comm, acc, partner, tmp, partner,
                                 tag=mask, ctx=ctx)
            op.apply(acc, tmp)
            yield from _charge_reduce(comm, acc.nbytes)
            mask <<= 1

    # Unfold: odd ranks hand the result back to their even neighbours.
    if rank < 2 * rem:
        if rank % 2:
            sreq = yield from comm.Isend(acc, rank - 1, tag=1, _context_id=ctx)
            yield from sreq.wait()
        else:
            rreq = yield from comm.Irecv(acc, rank + 1, tag=1, _context_id=ctx)
            yield from rreq.wait()
    recv_flat[: acc.size] = acc


def allgather_ring(comm: "Communicator", sendbuf: np.ndarray,
                   recvbuf: np.ndarray) -> Generator:
    """Ring allgather: n-1 steps, each forwarding one block."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    cnt = send_flat.size
    if recv_flat.size < n * cnt:
        raise MpiUsageError(
            f"allgather recvbuf needs {n * cnt} elements, has {recv_flat.size}")
    recv_flat[rank * cnt:(rank + 1) * cnt] = send_flat
    if n == 1:
        return
    right = (rank + 1) % n
    left = (rank - 1) % n
    for step in range(n - 1):
        sblock = (rank - step) % n
        rblock = (rank - step - 1) % n
        yield from _sendrecv(
            comm,
            recv_flat[sblock * cnt:(sblock + 1) * cnt], right,
            recv_flat[rblock * cnt:(rblock + 1) * cnt], left,
            tag=step, ctx=ctx)


def alltoall_pairwise(comm: "Communicator", sendbuf: np.ndarray,
                      recvbuf: np.ndarray) -> Generator:
    """Shifted pairwise-exchange alltoall."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    if send_flat.size % n or recv_flat.size < send_flat.size:
        raise MpiUsageError("alltoall buffers must hold n equal blocks")
    cnt = send_flat.size // n
    recv_flat[rank * cnt:(rank + 1) * cnt] = \
        send_flat[rank * cnt:(rank + 1) * cnt]
    for step in range(1, n):
        dst = (rank + step) % n
        src = (rank - step) % n
        yield from _sendrecv(
            comm,
            send_flat[dst * cnt:(dst + 1) * cnt], dst,
            recv_flat[src * cnt:(src + 1) * cnt], src,
            tag=step, ctx=ctx)


def gather_binomial(comm: "Communicator", sendbuf: np.ndarray,
                    recvbuf: Optional[np.ndarray], root: int = 0
                    ) -> Generator:
    """Binomial-tree gather: rank r's block lands at ``recvbuf[r*cnt:]``.

    Each subtree leader accumulates its subtree's blocks (in virtual-rank
    order) and forwards one combined message, halving the message count
    relative to a linear gather.
    """
    n, rank = comm.size, comm.rank
    if not 0 <= root < n:
        raise MpiUsageError(f"gather root {root} out of range")
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    cnt = send_flat.size
    vrank = (rank - root) % n

    # staging holds my subtree's blocks in virtual order
    staging = np.zeros(n * cnt)
    staging[:cnt] = send_flat
    have = 1  # blocks currently held (contiguous from my vrank)
    mask = 1
    while mask < n:
        if vrank & mask:
            dst = ((vrank & ~mask) + root) % n
            sreq = yield from comm.Isend(staging, dst, tag=mask,
                                         count=have * cnt, _context_id=ctx)
            yield from sreq.wait()
            break
        vsrc = vrank | mask
        if vsrc < n:
            blocks = min(mask, n - vsrc)
            rreq = yield from comm.Irecv(
                staging[have * cnt:(have + blocks) * cnt], (vsrc + root) % n,
                tag=mask, _context_id=ctx)
            yield from rreq.wait()
            have += blocks
        mask <<= 1
    if rank == root:
        if recvbuf is None:
            raise MpiUsageError("gather root needs a receive buffer")
        recv_flat = check_buffer(recvbuf)
        if recv_flat.size < n * cnt:
            raise MpiUsageError("gather recvbuf too small")
        # staging holds blocks in *virtual* order: rotate back.
        for v in range(n):
            r = (v + root) % n
            recv_flat[r * cnt:(r + 1) * cnt] = staging[v * cnt:(v + 1) * cnt]


def scatter_binomial(comm: "Communicator", sendbuf: Optional[np.ndarray],
                     recvbuf: np.ndarray, root: int = 0) -> Generator:
    """Binomial-tree scatter: the root's block r reaches rank r."""
    n, rank = comm.size, comm.rank
    if not 0 <= root < n:
        raise MpiUsageError(f"scatter root {root} out of range")
    ctx = comm.coll_context_id
    recv_flat = check_buffer(recvbuf)
    cnt = recv_flat.size
    vrank = (rank - root) % n

    if rank == root:
        if sendbuf is None:
            raise MpiUsageError("scatter root needs a send buffer")
        send_flat = check_buffer(sendbuf)
        if send_flat.size < n * cnt:
            raise MpiUsageError("scatter sendbuf too small")
        staging = np.zeros(n * cnt)
        for v in range(n):
            r = (v + root) % n
            staging[v * cnt:(v + 1) * cnt] = send_flat[r * cnt:(r + 1) * cnt]
        have = n  # blocks for my subtree, virtual-contiguous from 0
    else:
        staging = None
        have = 0
        # receive my subtree's blocks from the parent
        mask = 1
        while mask < n:
            if vrank & mask:
                blocks = min(mask, n - vrank)
                staging = np.zeros(blocks * cnt)
                src = ((vrank & ~mask) + root) % n
                rreq = yield from comm.Irecv(staging, src, tag=mask,
                                             _context_id=ctx)
                yield from rreq.wait()
                have = blocks
                break
            mask <<= 1
    # forward sub-subtrees to children (descending spans)
    mask = 1
    while mask < n:
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank % (2 * mask) == 0 and vrank + mask < n and have > mask:
            blocks = min(have - mask, n - vrank - mask)
            dst = (vrank + mask + root) % n
            sreq = yield from comm.Isend(
                staging[mask * cnt:(mask + blocks) * cnt], dst, tag=mask,
                _context_id=ctx)
            yield from sreq.wait()
            have = mask
        mask >>= 1
    recv_flat[:] = staging[:cnt]


def scan_linear(comm: "Communicator", sendbuf: np.ndarray,
                recvbuf: np.ndarray, op: Op) -> Generator:
    """Inclusive prefix scan along the rank chain (MPI_Scan)."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    acc = send_flat.copy()
    if rank > 0:
        tmp = np.zeros_like(acc)
        rreq = yield from comm.Irecv(tmp, rank - 1, tag=0, _context_id=ctx)
        yield from rreq.wait()
        op.apply(acc, tmp)
        yield from _charge_reduce(comm, acc.nbytes)
    if rank < n - 1:
        sreq = yield from comm.Isend(acc, rank + 1, tag=0, _context_id=ctx)
        yield from sreq.wait()
    recv_flat[: acc.size] = acc


def reduce_scatter_block(comm: "Communicator", sendbuf: np.ndarray,
                         recvbuf: np.ndarray, op: Op) -> Generator:
    """MPI_Reduce_scatter_block: rank r ends with block r of the global
    reduction. Implemented as pairwise-exchange partial reductions: in
    step s each rank ships its (rank+s)-th block to that block's owner,
    which folds it in — n-1 concurrent small messages instead of a rooted
    tree (a common algorithm for commutative ops).
    """
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    if send_flat.size % n:
        raise MpiUsageError("reduce_scatter sendbuf must hold n blocks")
    cnt = send_flat.size // n
    if recv_flat.size < cnt:
        raise MpiUsageError("reduce_scatter recvbuf too small")
    acc = send_flat[rank * cnt:(rank + 1) * cnt].copy()
    tmp = np.zeros(cnt)
    for step in range(1, n):
        dst = (rank + step) % n       # owner of the block I contribute
        src = (rank - step) % n       # contributor of my block
        yield from _sendrecv(
            comm, np.ascontiguousarray(send_flat[dst * cnt:(dst + 1) * cnt]),
            dst, tmp, src, tag=step, ctx=ctx)
        op.apply(acc, tmp)
        yield from _charge_reduce(comm, acc.nbytes)
    recv_flat[:cnt] = acc


def allreduce_ring(comm: "Communicator", sendbuf: np.ndarray,
                   recvbuf: np.ndarray, op: Op) -> Generator:
    """Ring allreduce: reduce-scatter ring + allgather ring.

    Bandwidth-optimal for large messages (each rank moves ~2x the data
    size regardless of rank count, vs log2(n) full-size exchanges for
    recursive doubling). This is the algorithm large-model training
    stacks popularized; MPI libraries switch to it beyond a size
    threshold, as :meth:`Communicator.Allreduce` does here.
    """
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    if recv_flat.size < send_flat.size:
        raise MpiUsageError("allreduce recvbuf smaller than sendbuf")
    if n == 1:
        recv_flat[: send_flat.size] = send_flat
        return
    work = send_flat.copy()
    total = work.size
    bounds = np.linspace(0, total, n + 1).astype(int)

    def seg(i):
        i %= n
        return work[bounds[i]:bounds[i + 1]]

    right = (rank + 1) % n
    left = (rank - 1) % n
    tmp = np.zeros(int(np.max(np.diff(bounds))))

    # Phase 1: reduce-scatter around the ring. After step s, rank r holds
    # the partial reduction of segment (r - s) over s+1 contributions.
    for step in range(n - 1):
        sidx = (rank - step) % n
        ridx = (rank - step - 1) % n
        out = seg(sidx)
        into = seg(ridx)
        rreq = yield from comm.Irecv(tmp, left, tag=step, count=into.size,
                                     _context_id=ctx)
        sreq = yield from comm.Isend(np.ascontiguousarray(out), right,
                                     tag=step, _context_id=ctx)
        yield from waitall([rreq, sreq])
        op.apply(into, tmp[:into.size])
        yield from _charge_reduce(comm, into.nbytes)

    # Phase 2: allgather the fully reduced segments around the ring.
    for step in range(n - 1):
        sidx = (rank - step + 1) % n
        ridx = (rank - step) % n
        out = seg(sidx)
        into = seg(ridx)
        rreq = yield from comm.Irecv(tmp, left, tag=100 + step,
                                     count=into.size, _context_id=ctx)
        sreq = yield from comm.Isend(np.ascontiguousarray(out), right,
                                     tag=100 + step, _context_id=ctx)
        yield from waitall([rreq, sreq])
        into[:] = tmp[:into.size]
    recv_flat[:total] = work


def gatherv_linear(comm: "Communicator", sendbuf: np.ndarray,
                   recvbuf: Optional[np.ndarray],
                   counts: Optional[list[int]], root: int = 0) -> Generator:
    """Variable-count gather (MPI_Gatherv), linear algorithm.

    ``counts[r]`` elements arrive from rank r, packed contiguously in
    rank order. Irregular contributions preclude the binomial subtree
    trick without extra metadata, so the root receives directly from
    every rank — the standard implementation for small communicators.
    """
    n, rank = comm.size, comm.rank
    if not 0 <= root < n:
        raise MpiUsageError(f"gatherv root {root} out of range")
    ctx = comm.coll_context_id
    send_flat = check_buffer(sendbuf)
    if rank == root:
        if recvbuf is None or counts is None:
            raise MpiUsageError("gatherv root needs recvbuf and counts")
        if len(counts) != n:
            raise MpiUsageError(f"gatherv needs {n} counts")
        recv_flat = check_buffer(recvbuf)
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(int)
        if recv_flat.size < offsets[-1]:
            raise MpiUsageError("gatherv recvbuf too small")
        if counts[root] != send_flat.size:
            raise MpiUsageError(
                f"root contributes {send_flat.size} elements but counts"
                f"[{root}] = {counts[root]}")
        recv_flat[offsets[root]:offsets[root + 1]] = send_flat
        reqs = []
        for r in range(n):
            if r == root or counts[r] == 0:
                continue
            req = yield from comm.Irecv(
                recv_flat[offsets[r]:offsets[r + 1]], r, tag=0,
                _context_id=ctx)
            reqs.append(req)
        yield from waitall(reqs)
    else:
        if send_flat.size:
            sreq = yield from comm.Isend(send_flat, root, tag=0,
                                         _context_id=ctx)
            yield from sreq.wait()


def allgatherv_ring(comm: "Communicator", sendbuf: np.ndarray,
                    recvbuf: np.ndarray, counts: list[int]) -> Generator:
    """Variable-count allgather (MPI_Allgatherv): a ring of n-1 steps
    forwarding whole blocks, like :func:`allgather_ring` but with
    per-rank block sizes."""
    n, rank = comm.size, comm.rank
    ctx = comm.coll_context_id
    if len(counts) != n:
        raise MpiUsageError(f"allgatherv needs {n} counts")
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(int)
    if recv_flat.size < offsets[-1]:
        raise MpiUsageError("allgatherv recvbuf too small")
    if send_flat.size != counts[rank]:
        raise MpiUsageError(
            f"rank {rank} contributes {send_flat.size} elements but "
            f"counts[{rank}] = {counts[rank]}")

    def block(r):
        r %= n
        return recv_flat[offsets[r]:offsets[r + 1]]

    block(rank)[:] = send_flat
    if n == 1:
        return
    right, left = (rank + 1) % n, (rank - 1) % n
    for step in range(n - 1):
        sidx = (rank - step) % n
        ridx = (rank - step - 1) % n
        rreq = yield from comm.Irecv(block(ridx), left, tag=step,
                                     _context_id=ctx)
        sreq = yield from comm.Isend(np.ascontiguousarray(block(sidx)),
                                     right, tag=step, _context_id=ctx)
        yield from waitall([rreq, sreq])
