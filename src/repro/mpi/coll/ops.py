"""Reduction operators for collectives (MPI_Op equivalents)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LOR", "LAND", "BOR", "BAND"]


@dataclass(frozen=True)
class Op:
    """A commutative, associative elementwise reduction operator."""

    name: str
    ufunc: Callable

    def apply(self, acc: np.ndarray, operand: np.ndarray) -> None:
        """In-place ``acc = acc (op) operand``."""
        self.ufunc(acc, operand, out=acc)

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


SUM = Op("SUM", np.add)
PROD = Op("PROD", np.multiply)
MAX = Op("MAX", np.maximum)
MIN = Op("MIN", np.minimum)
LOR = Op("LOR", np.logical_or)
LAND = Op("LAND", np.logical_and)
BOR = Op("BOR", np.bitwise_or)
BAND = Op("BAND", np.bitwise_and)
