"""Hierarchical collectives for endpoints communicators (Lesson 18).

"With user-visible endpoints [...] the collective is only one step — all
threads participate in a collective of the same communicator through
different endpoints. The MPI library then conducts both the internode and
intranode parts of the collective before returning."

This module is that library-side implementation for ``Allreduce``:

1. **intranode combine** — the endpoints of one process merge their
   contributions into a per-process staging buffer through shared memory
   (serialized by a combine lock: a real contention point, charged);
2. **internode segmented exchange** — each local endpoint owns one
   segment of the staging buffer and runs a recursive-doubling allreduce
   of that segment *across processes*, on its own VCI — the endpoint
   version of VASP's parallel segmented allreduce;
3. **intranode fan-out** — every endpoint copies the full result into its
   own receive buffer. This is Lesson 19's duplication: one full result
   copy per endpoint, unavoidable with the endpoint interface.

Non-uniform endpoint counts per process fall back to a flat recursive
doubling over all endpoint ranks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from ...sim.sync import Gate, Lock
from ..datatypes import check_buffer
from ..request import waitall
from .ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from ..endpoints import Endpoint

__all__ = ["endpoint_allreduce"]


class _NodePhase:
    """Reusable rendezvous for the endpoints of one process.

    Keyed by (context id); generation counters keep repeated collectives
    separated, like a cyclic barrier.
    """

    def __init__(self, sim, parties: int):
        self.sim = sim
        self.parties = parties
        self.staging: np.ndarray | None = None
        #: Per-round scratch registry: local endpoint index -> work buffer.
        self.slots: dict[int, np.ndarray] = {}
        self._arrived = 0
        self._gate = Gate(sim)

    def arrive(self) -> Generator:
        """Cyclic barrier across the process's endpoints."""
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            gate, self._gate = self._gate, Gate(self.sim)
            gate.open()
        else:
            yield from self._gate.wait()


def _node_state(lib, context_id: int, parties: int) -> _NodePhase:
    states = getattr(lib, "_ep_coll_states", None)
    if states is None:
        states = lib._ep_coll_states = {}
    st = states.get(context_id)
    if st is None:
        st = states[context_id] = _NodePhase(lib.sim, parties)
    return st


def endpoint_allreduce(ep: "Endpoint", sendbuf: np.ndarray,
                       recvbuf: np.ndarray, op: Op) -> Generator:
    """One-step allreduce over an endpoints communicator."""
    lib = ep.lib
    cpu = lib.cpu
    send_flat = check_buffer(sendbuf)
    recv_flat = check_buffer(recvbuf)
    group = ep.group
    # Local endpoint layout of this communicator.
    local_T = sum(1 for r in group if r == lib.rank)
    counts = {}
    for r in group:
        counts[r] = counts.get(r, 0) + 1
    uniform = len(set(counts.values())) == 1
    procs = sorted(counts)          # world ranks participating
    P = len(procs)
    my_pidx = procs.index(lib.rank)

    if not uniform or local_T < 1:
        from .algorithms import allreduce_recursive_doubling
        yield from allreduce_recursive_doubling(ep, sendbuf, recvbuf, op)
        return

    st = _node_state(lib, ep.context_id, local_T)
    li = ep.local_index
    n = send_flat.size

    # ---- phase 1: intranode tree combine (shared memory, parallel) -----
    # Each endpoint snapshots its contribution, then pairs combine level
    # by level — log2(T) levels, like any decent shared-memory reduction.
    work = send_flat.copy()
    yield lib.sim.timeout(cpu.shm_copy_base
                          + send_flat.nbytes / cpu.shm_bandwidth)
    st.slots[li] = work
    yield from st.arrive()
    stride = 1
    while stride < local_T:
        if li % (2 * stride) == 0 and li + stride < local_T:
            other = st.slots[li + stride]
            yield lib.sim.timeout(cpu.shm_copy_base
                                  + other.nbytes / cpu.shm_bandwidth
                                  + cpu.reduce_per_byte * other.nbytes)
            op.apply(work, other)
        stride *= 2
        yield from st.arrive()
    if li == 0:
        st.staging = work
    yield from st.arrive()

    # ---- phase 2: internode segmented recursive doubling ---------------
    if P > 1:
        bounds = np.linspace(0, n, local_T + 1).astype(int)
        lo, hi = int(bounds[li]), int(bounds[li + 1])
        seg = st.staging[lo:hi]
        tmp = np.zeros(hi - lo)
        ctx = ep.coll_context_id

        pof2 = 1
        while pof2 * 2 <= P:
            pof2 *= 2
        rem = P - pof2

        def ep_of(pidx: int) -> int:
            return pidx * local_T + li

        def exchange(partner_pidx: int, tag: int) -> Generator:
            send_seg = np.ascontiguousarray(seg)
            rreq = yield from ep.Irecv(tmp, ep_of(partner_pidx), tag,
                                       _context_id=ctx)
            sreq = yield from ep.Isend(send_seg, ep_of(partner_pidx), tag,
                                       _context_id=ctx)
            yield from waitall([rreq, sreq])

        if my_pidx < 2 * rem:
            if my_pidx % 2 == 0:
                sreq = yield from ep.Isend(np.ascontiguousarray(seg),
                                           ep_of(my_pidx + 1), 0,
                                           _context_id=ctx)
                yield from sreq.wait()
                newidx = -1
            else:
                rreq = yield from ep.Irecv(tmp, ep_of(my_pidx - 1), 0,
                                           _context_id=ctx)
                yield from rreq.wait()
                op.apply(seg, tmp)
                yield lib.sim.timeout(cpu.reduce_per_byte * seg.nbytes)
                newidx = my_pidx // 2
        else:
            newidx = my_pidx - rem

        if newidx != -1:
            mask = 1
            while mask < pof2:
                partner_new = newidx ^ mask
                partner = (partner_new * 2 + 1 if partner_new < rem
                           else partner_new + rem)
                yield from exchange(partner, mask)
                op.apply(seg, tmp)
                yield lib.sim.timeout(cpu.reduce_per_byte * seg.nbytes)
                mask <<= 1

        if my_pidx < 2 * rem:
            if my_pidx % 2:
                sreq = yield from ep.Isend(np.ascontiguousarray(seg),
                                           ep_of(my_pidx - 1), 1,
                                           _context_id=ctx)
                yield from sreq.wait()
            else:
                rreq = yield from ep.Irecv(tmp, ep_of(my_pidx + 1), 1,
                                           _context_id=ctx)
                yield from rreq.wait()
                seg[:] = tmp
        yield from st.arrive()

    # ---- phase 3: per-endpoint result copy (Lesson 19 duplication) -----
    yield lib.sim.timeout(cpu.shm_copy_base
                          + st.staging[:n].nbytes / cpu.shm_bandwidth)
    recv_flat[:n] = st.staging[:n]
    yield from st.arrive()
