"""Nonblocking collectives (MPI-3 ``I...`` variants).

Each nonblocking collective spawns a library-internal progress task that
runs the blocking algorithm and completes a :class:`Request` when done —
the standard way to overlap a collective with computation::

    req = yield from comm.Iallreduce(send, recv)
    yield proc.compute(work)        # overlap
    yield from req.wait()

The serial-collective rule still applies: the communicator is busy until
the nonblocking collective *completes*, and a second collective issued
meanwhile is rejected (MPI forbids two outstanding collectives on one
communicator from overlapping arbitrarily; modelling the strict variant
keeps the paper's "use distinct communicators to parallelize" guidance
honest).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ...errors import MpiUsageError
from ...sim.core import Event
from ..request import Request

if TYPE_CHECKING:  # pragma: no cover
    from ..comm import Communicator

__all__ = ["start_nonblocking_collective"]


def start_nonblocking_collective(comm: "Communicator", opname: str,
                                 algorithm: Generator
                                 ) -> Generator[Event, Any, Request]:
    """Launch ``algorithm`` (a collective generator) as a progress task.

    Returns the request that completes when the collective finishes on
    this rank. Holds the communicator's serial-collective guard for the
    whole lifetime of the operation.
    """
    comm._check_alive()
    if comm._collective_active is not None:
        chk = comm.sim.checker
        if chk is not None:
            chk.violation(
                "CHK111",
                f"nonblocking collective {opname!r} overlaps "
                f"{comm._collective_active!r} on communicator {comm.name!r}",
                rank=comm.lib.rank, comm=comm.name, hard=True)
        raise MpiUsageError(
            f"collective {opname!r} issued on communicator {comm.name!r} "
            f"while {comm._collective_active!r} is in flight: MPI requires "
            "collectives on a communicator to be issued serially")
    comm._collective_active = opname
    req = Request(comm.sim, f"icoll-{opname}")
    yield comm.sim.timeout(comm.lib.cpu.send_post)  # issue cost

    def progress():
        try:
            yield from algorithm
        finally:
            comm._collective_active = None
        req.complete()

    comm.sim.spawn(progress(), name=f"{comm.name}.{opname}")
    return req
