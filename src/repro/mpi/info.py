"""MPI Info objects and the MPI-4.0 / MPICH hint vocabulary.

The paper's "tags with hints" mechanism (Listing 2) combines:

- standard MPI-4.0 assertions that *relax semantics*:
  ``mpi_assert_allow_overtaking``, ``mpi_assert_no_any_tag``,
  ``mpi_assert_no_any_source``;
- MPICH-specific hints that *communicate the parallelism encoding*:
  ``mpich_num_vcis``, ``mpich_num_tag_bits_vci``,
  ``mpich_place_tag_bits_local_vci``, ``mpich_tag_vci_hash_type``.

This module parses an :class:`Info` dictionary into a validated
:class:`CommHints` bundle. Validation encodes the semantic dependencies the
paper discusses: tag-based VCI selection on the *receive* side requires the
no-wildcard assertions, while ``allow_overtaking`` alone only unlocks
sender-side spreading (receives can still use wildcards, so they must all
be matched on the communicator's single VCI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional

from ..errors import InvalidHintError

__all__ = ["Info", "CommHints", "WindowHints", "parse_comm_hints",
           "parse_window_hints"]

_TRUE = {"true", "1", "yes"}
_FALSE = {"false", "0", "no"}


class Info:
    """A string-to-string key/value store, as in MPI_Info.

    Unknown keys are permitted (MPI ignores hints it does not understand);
    known keys are validated when the Info is attached to an object.
    """

    def __init__(self, initial: Optional[Mapping[str, str]] = None):
        self._data: dict[str, str] = {}
        if initial:
            for k, v in initial.items():
                self.set(k, v)

    def set(self, key: str, value) -> None:
        if not isinstance(key, str) or not key:
            raise InvalidHintError(f"info keys must be non-empty strings: {key!r}")
        self._data[key] = str(value)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def copy(self) -> "Info":
        return Info(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __repr__(self) -> str:
        return f"Info({self._data!r})"


def _parse_bool(key: str, raw: str) -> bool:
    low = raw.strip().lower()
    if low in _TRUE:
        return True
    if low in _FALSE:
        return False
    raise InvalidHintError(f"hint {key}={raw!r} is not a boolean")


def _parse_int(key: str, raw: str, minimum: int = 0) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise InvalidHintError(f"hint {key}={raw!r} is not an integer") from None
    if value < minimum:
        raise InvalidHintError(f"hint {key}={value} must be >= {minimum}")
    return value


@dataclass(frozen=True)
class CommHints:
    """Validated communicator hints."""

    #: MPI 4.0: matching need not follow posting order.
    allow_overtaking: bool = False
    #: MPI 4.0: the application promises never to use MPI_ANY_TAG.
    no_any_tag: bool = False
    #: MPI 4.0: the application promises never to use MPI_ANY_SOURCE.
    no_any_source: bool = False
    #: MPICH: number of VCIs to spread this communicator's traffic over.
    num_vcis: int = 1
    #: MPICH: number of tag bits that encode one thread id.
    num_tag_bits_vci: int = 0
    #: MPICH: where the *local* (sender) thread-id bits sit: "MSB" means the
    #: sender bits are the most significant used bits, with the receiver
    #: bits immediately below (Listing 2's encoding).
    place_tag_bits_local_vci: str = "MSB"
    #: MPICH: "one-to-one" (sender bits -> local VCI, receiver bits ->
    #: remote VCI) or "hash" (hash the whole tag).
    tag_vci_hash_type: str = "hash"
    #: Collective algorithm selections from ``repro_coll_<op>`` hint keys,
    #: as a sorted tuple of (operation, algorithm) pairs (kept hashable so
    #: the dataclass stays frozen). See :mod:`repro.mpi.coll.select`.
    coll_algorithms: tuple[tuple[str, str], ...] = ()

    @property
    def wildcards_forbidden(self) -> bool:
        return self.no_any_tag and self.no_any_source

    @property
    def recv_side_spreading(self) -> bool:
        """Whether receive-side VCI selection may depend on the tag.

        Requires both wildcard assertions: with ``MPI_ANY_TAG`` possible, a
        receive cannot be routed to a tag-derived VCI.
        """
        return self.num_vcis > 1 and self.wildcards_forbidden

    @property
    def send_side_spreading(self) -> bool:
        """Whether send-side (local) VCI selection may depend on the tag.

        ``allow_overtaking`` relaxes the non-overtaking order, making sends
        with different tags logically parallel even when receives are not
        (Section II-A of the paper).
        """
        return self.num_vcis > 1 and (
            self.allow_overtaking or self.wildcards_forbidden)


def parse_comm_hints(info: Optional[Info]) -> CommHints:
    """Parse and validate communicator hints from an Info object."""
    if info is None:
        return CommHints()
    kw = {}
    if "mpi_assert_allow_overtaking" in info:
        kw["allow_overtaking"] = _parse_bool(
            "mpi_assert_allow_overtaking", info.get("mpi_assert_allow_overtaking"))
    if "mpi_assert_no_any_tag" in info:
        kw["no_any_tag"] = _parse_bool(
            "mpi_assert_no_any_tag", info.get("mpi_assert_no_any_tag"))
    if "mpi_assert_no_any_source" in info:
        kw["no_any_source"] = _parse_bool(
            "mpi_assert_no_any_source", info.get("mpi_assert_no_any_source"))
    if "mpich_num_vcis" in info:
        kw["num_vcis"] = _parse_int("mpich_num_vcis",
                                    info.get("mpich_num_vcis"), minimum=1)
    if "mpich_num_tag_bits_vci" in info:
        kw["num_tag_bits_vci"] = _parse_int(
            "mpich_num_tag_bits_vci", info.get("mpich_num_tag_bits_vci"))
    if "mpich_place_tag_bits_local_vci" in info:
        place = info.get("mpich_place_tag_bits_local_vci").upper()
        if place not in ("MSB", "LSB"):
            raise InvalidHintError(
                f"mpich_place_tag_bits_local_vci must be MSB or LSB, got {place!r}")
        kw["place_tag_bits_local_vci"] = place
    if "mpich_tag_vci_hash_type" in info:
        htype = info.get("mpich_tag_vci_hash_type").lower()
        if htype not in ("one-to-one", "hash"):
            raise InvalidHintError(
                f"mpich_tag_vci_hash_type must be 'one-to-one' or 'hash', got {htype!r}")
        kw["tag_vci_hash_type"] = htype
    selections = {}
    for key in info:
        if key.startswith("repro_coll_"):
            # Local import: repro.mpi.coll pulls in the algorithm modules,
            # which must not load during this module's import.
            from .coll.select import validate_selection
            op, algorithm = validate_selection(key[len("repro_coll_"):],
                                               info.get(key))
            selections[op] = algorithm
    if selections:
        kw["coll_algorithms"] = tuple(sorted(selections.items()))

    hints = CommHints(**kw)

    if hints.tag_vci_hash_type == "one-to-one":
        if hints.num_tag_bits_vci <= 0:
            raise InvalidHintError(
                "one-to-one tag-VCI mapping requires mpich_num_tag_bits_vci > 0")
        if not hints.wildcards_forbidden:
            raise InvalidHintError(
                "one-to-one tag-VCI mapping requires mpi_assert_no_any_tag "
                "and mpi_assert_no_any_source (receive-side VCI selection "
                "depends on the tag)")
    return hints


@dataclass(frozen=True)
class WindowHints:
    """Validated RMA window hints."""

    #: "default" preserves MPI's same-location atomic ordering;
    #: "none" relaxes it (the paper's accumulate_ordering=none).
    accumulate_ordering: str = "default"
    #: MPICH-style: number of VCIs to spread window traffic over.
    num_vcis: int = 1

    @property
    def atomics_may_spread(self) -> bool:
        return self.accumulate_ordering == "none" and self.num_vcis > 1


def parse_window_hints(info: Optional[Info]) -> WindowHints:
    """Extract window-creation hints from an Info object."""
    if info is None:
        return WindowHints()
    kw = {}
    if "accumulate_ordering" in info:
        order = info.get("accumulate_ordering").strip().lower()
        if order in ("none", ""):
            kw["accumulate_ordering"] = "none"
        elif order in ("default", "rar,raw,war,waw"):
            kw["accumulate_ordering"] = "default"
        else:
            raise InvalidHintError(
                f"unsupported accumulate_ordering {order!r} "
                "(use 'default' or 'none')")
    if "mpich_rma_num_vcis" in info:
        kw["num_vcis"] = _parse_int("mpich_rma_num_vcis",
                                    info.get("mpich_rma_num_vcis"), minimum=1)
    return WindowHints(**kw)
