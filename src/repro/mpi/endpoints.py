"""User-visible MPI endpoints (the suspended MPI Forum proposal, a.k.a.
"MPI Rankpoints" in the paper's Section IV).

``comm_create_endpoints(parent, my_num_ep)`` is collective over the parent
communicator and returns ``my_num_ep`` endpoint handles. Each handle *is a
communicator rank*: endpoints are addressed exactly like processes in MPI
everywhere, which is why the paper calls them intuitive (Lesson 10). Every
endpoint gets a dedicated VCI, and the target VCI is derived from the
target endpoint rank — so matching information (ranks) and parallelism
information coincide, wildcards stay legal, and the library gets the
optimal mapping without implementation-specific hints (Lessons 11–12).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import MpiUsageError
from ..sim.core import Event
from .comm import Communicator
from .info import Info
from .vci import EndpointVciMap

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from .library import MpiLibrary

__all__ = ["Endpoint", "comm_create_endpoints",
           "comm_create_rankpoints"]


class Endpoint(Communicator):
    """One endpoint handle of an endpoints communicator.

    Behaves exactly like a :class:`Communicator` whose rank is the endpoint
    rank; point-to-point, probes, and collectives all work per endpoint.
    """

    def __init__(self, lib: "MpiLibrary", group: list[int], ep_rank: int,
                 context_id: int, vci_map: EndpointVciMap,
                 parent: Communicator, local_index: int, name: str):
        super().__init__(lib, group, ep_rank, context_id,
                         hints=parent.hints, vci_map=vci_map, name=name)
        # An endpoint commits exactly one channel — "only as many
        # endpoints as there are communicating threads" (Lesson 12).
        lib.vci_pool.get(vci_map.my_vci)
        self.parent = parent
        #: Index of this endpoint among the creating process's endpoints.
        self.local_index = local_index

    def Dup(self, info: Optional[Info] = None, name: Optional[str] = None):
        raise MpiUsageError(
            "endpoint communicators cannot be duplicated; create a new set "
            "of endpoints from the parent communicator instead")

    def Allreduce(self, sendbuf: "np.ndarray", recvbuf: "np.ndarray",
                  op: Any = None) -> Generator[Event, Any, None]:
        """One-step allreduce: the library performs both the intranode and
        the internode portions (Lesson 18) via the hierarchical
        endpoint-aware algorithm."""
        from .coll.endpoint_coll import endpoint_allreduce
        from .coll.ops import SUM
        with self._collective("Allreduce"):
            yield from endpoint_allreduce(self, sendbuf, recvbuf, op or SUM)


def comm_create_endpoints(parent: Communicator, my_num_ep: int,
                          info: Optional[Info] = None
                          ) -> Generator[Event, Any, list[Endpoint]]:
    """``MPI_Comm_create_endpoints`` (Fig 2 of the paper).

    Collective over ``parent``: every member passes its own ``my_num_ep``
    (counts may differ per process) and receives that many endpoint
    handles. Endpoint ranks are ordered by parent rank, then by local
    endpoint index — so with a uniform ``N`` endpoints per process,
    endpoint ``j`` of parent rank ``p`` has endpoint rank ``p*N + j``
    (the addressing used in Listing 3).
    """
    if my_num_ep < 0:
        raise MpiUsageError(f"my_num_ep must be >= 0, got {my_num_ep}")
    lib = parent.lib
    world = lib.world
    seq = next(parent._create_seq)
    key = ("create_endpoints", parent.context_id, seq)
    my_vcis = [lib.alloc_endpoint_vci() for _ in range(my_num_ep)]
    meeting = yield from world.meet(
        key, nmembers=parent.size, rank=parent.rank,
        contribution=(my_num_ep, my_vcis),
        alloc=lambda: {"context_id": world.alloc_context_id()})
    context_id = meeting.shared["context_id"]

    # Assemble the global endpoint rank space, ordered by parent rank.
    group: list[int] = []        # ep rank -> world rank of owner
    vci_table: list[int] = []    # ep rank -> VCI index on the owner
    my_offset = 0
    for prank in range(parent.size):
        count, vcis = meeting.contributions[prank]
        if prank == parent.rank:
            my_offset = len(group)
        owner_world = parent.group[prank]
        group.extend([owner_world] * count)
        vci_table.extend(vcis)

    handles = []
    for i in range(my_num_ep):
        ep_rank = my_offset + i
        vci_map = EndpointVciMap(my_vci=my_vcis[i], ep_vci_table=vci_table)
        handles.append(Endpoint(
            lib, group, ep_rank, context_id, vci_map, parent,
            local_index=i, name=f"{parent.name}.ep{ep_rank}"))
    return handles


def comm_create_rankpoints(parent: Communicator, my_num_rankpoints: int,
                           info: Optional[Info] = None
                           ) -> Generator[Event, Any, list[Endpoint]]:
    """``MPI_Comm_create_rankpoints`` — Section IV's rebranding.

    The paper argues the endpoints proposal should be re-presented to
    domain scientists as *rankpoints*: "users can create multiple MPI
    ranks within a process", emphasizing that these are not handles to
    network resources (Lesson 17) but a flexible way to express
    parallelism. Semantically identical to
    :func:`comm_create_endpoints`.
    """
    handles = yield from comm_create_endpoints(parent, my_num_rankpoints,
                                               info)
    return handles
