"""Communicators: the user-facing handle for point-to-point and collective
communication.

API style follows mpi4py's upper-case buffer convention (``Isend``,
``Irecv``, ``Allreduce``...), except that every potentially time-consuming
call is a *generator* to be driven with ``yield from`` inside a simulated
thread::

    req = yield from comm.Isend(buf, dest=1, tag=7)
    status = yield from req.wait()

A communicator's traffic is mapped to VCIs by its ``vci_map`` (see
:mod:`repro.mpi.vci`): by default everything lands on one VCI chosen by
hashing the context id — so *duplicating* communicators is what spreads
traffic over channels, exactly the communicator mechanism the paper
analyzes in Lessons 1–5.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ..errors import HintViolationError, MpiUsageError, TagOverflowError
from ..netsim.message import MessageKind, WireMessage
from ..sim.core import Event
from .datatypes import check_buffer
from .info import CommHints, Info, parse_comm_hints
from .matching import ANY_SOURCE, ANY_TAG, PostedRecv
from .request import Request
from .vci import TAG_UB, SingleVciMap, TagBitsVciMap, VciMap

if TYPE_CHECKING:  # pragma: no cover
    from .library import MpiLibrary

__all__ = ["Communicator", "MatchedMessage"]


class MatchedMessage:
    """A message claimed by a matched probe, awaiting its Mrecv."""

    __slots__ = ("comm", "vci", "msg", "consumed")

    def __init__(self, comm, vci, msg):
        self.comm = comm
        self.vci = vci
        self.msg = msg
        self.consumed = False

    @property
    def source(self) -> int:
        return self.msg.meta.get("src_addr", self.msg.src_rank)

    @property
    def tag(self) -> int:
        return self.msg.tag

    @property
    def size(self) -> int:
        return self.msg.meta.get("total_size", self.msg.size)


class Communicator:
    """A communicator handle owned by one process.

    ``group[i]`` is the world rank of the process owning communicator rank
    ``i``; for ordinary communicators addressing and matching both use
    these communicator ranks.
    """

    def __init__(self, lib: "MpiLibrary", group: list[int], rank: int,
                 context_id: int, hints: Optional[CommHints] = None,
                 vci_map: Optional[VciMap] = None, name: str = "comm"):
        self.lib = lib
        self.group = group
        self.rank = rank
        self.context_id = context_id
        self.hints = hints or CommHints()
        if vci_map is None:
            vci_map = SingleVciMap(lib.vci_pool.vci_index_for_context(context_id))
        self.vci_map = vci_map
        # Network resources are committed at communicator creation, as in
        # MPICH: the library cannot know whether a communicator is for
        # grouping or for parallelism (Lesson 4), so every communicator
        # claims its VCI(s) — this is what makes the communicator
        # mechanism resource-hungry (Lesson 3).
        if isinstance(vci_map, SingleVciMap):
            lib.vci_pool.get(vci_map.index)
        elif isinstance(vci_map, TagBitsVciMap):
            for i in range(vci_map.n):
                lib.vci_pool.get(vci_map.base + i)
        self.name = name
        self.freed = False
        #: Per-handle collective algorithm selections (op -> algorithm),
        #: seeded from ``repro_coll_<op>`` Info hints; absent ops use the
        #: library's size-based "auto" heuristic. Local handle state, as
        #: in real MPI libraries — Dup/Split copy the parent's choices.
        self._coll_algorithms: dict[str, str] = dict(self.hints.coll_algorithms)
        #: Per-handle counter so repeated Dup calls agree on meeting keys.
        self._create_seq = itertools.count()
        #: MPI requires collectives on a communicator to be issued
        #: serially; this flag detects (and rejects) violations.
        self._collective_active: Optional[str] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def coll_context_id(self) -> int:
        """Context id of the communicator's internal collective stream.

        Context ids are allocated in pairs (even = point-to-point, odd =
        collectives, as in MPICH), so collective traffic can never match
        user receives — including wildcard receives — on the same
        communicator.
        """
        return self.context_id + 1

    @property
    def sim(self):
        return self.lib.sim

    def world_rank_of(self, comm_rank: int) -> int:
        return self.group[comm_rank]

    def set_coll_algorithm(self, op: str, algorithm: str) -> None:
        """Pin the algorithm for collective ``op`` on this handle.

        ``comm.set_coll_algorithm("allreduce", "ring")`` forces the ring
        regardless of message size; ``"auto"`` restores the size-based
        heuristic. Valid names live in
        :data:`repro.mpi.coll.select.COLL_ALGORITHMS`; invalid pairs
        raise :class:`~repro.errors.InvalidHintError`. Local operation
        (no communication), like MPICH's CVAR overrides.
        """
        from .coll.select import validate_selection
        self._check_alive()
        op, algorithm = validate_selection(op, algorithm)
        if algorithm == "auto":
            self._coll_algorithms.pop(op, None)
        else:
            self._coll_algorithms[op] = algorithm

    def coll_algorithm(self, op: str) -> str:
        """The algorithm currently selected for ``op`` (``"auto"`` default)."""
        return self._coll_algorithms.get(op.strip().lower(), "auto")

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (f"<Communicator {self.name!r} rank {self.rank}/{self.size} "
                f"ctx={self.context_id} map={self.vci_map.describe()}>")

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.freed:
            raise MpiUsageError(f"operation on freed communicator {self.name!r}")

    def _check_peer(self, peer: int, *, wildcard_ok: bool) -> None:
        if peer == ANY_SOURCE:
            if not wildcard_ok:
                raise MpiUsageError("ANY_SOURCE is invalid for sends")
            if self.hints.no_any_source:
                chk = self.lib.sim.checker
                if chk is not None:
                    # Raise mode raises CheckError inside violation();
                    # warn mode records and lets the wildcard through
                    # (the simulation handles it fine — the hint is a
                    # contract with the real MPI library, not with us).
                    chk.violation(
                        "CHK104",
                        f"ANY_SOURCE used on communicator {self.name!r} "
                        f"asserting mpi_assert_no_any_source",
                        rank=self.lib.rank, comm=self.name)
                    return
                raise HintViolationError(
                    "ANY_SOURCE used on a communicator asserting "
                    "mpi_assert_no_any_source")
            return
        if not 0 <= peer < self.size:
            raise MpiUsageError(
                f"rank {peer} out of range for communicator of size {self.size}")

    def _check_tag(self, tag: int, *, wildcard_ok: bool) -> None:
        if tag == ANY_TAG:
            if not wildcard_ok:
                raise MpiUsageError("ANY_TAG is invalid for sends")
            if self.hints.no_any_tag:
                chk = self.lib.sim.checker
                if chk is not None:
                    chk.violation(
                        "CHK104",
                        f"ANY_TAG used on communicator {self.name!r} "
                        f"asserting mpi_assert_no_any_tag",
                        rank=self.lib.rank, comm=self.name)
                    return
                raise HintViolationError(
                    "ANY_TAG used on a communicator asserting "
                    "mpi_assert_no_any_tag")
            return
        if tag < 0:
            raise MpiUsageError(f"negative tag: {tag}")
        if tag > TAG_UB:
            raise TagOverflowError(
                f"tag {tag} exceeds TAG_UB={TAG_UB} — the tag space is "
                "exhausted (cf. Lesson 9: encoding parallelism information "
                "into tags eats the application's tag bits)")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def Isend(self, buf: np.ndarray, dest: int, tag: int,
              count: Optional[int] = None,
              _context_id: Optional[int] = None
              ) -> Generator[Event, Any, Request]:
        """Nonblocking send; returns the send Request."""
        self._check_alive()
        self._check_peer(dest, wildcard_ok=False)
        self._check_tag(tag, wildcard_ok=False)
        flat = check_buffer(buf, count)
        n = flat.size if count is None else count
        size = n * flat.dtype.itemsize
        lib = self.lib
        req = Request(lib.sim, "send")
        yield lib.sim.timeout(lib.cpu.send_post)

        local_vci = lib.vci_pool.get(
            self.vci_map.send_local(self.rank, dest, tag))
        req.vci = local_vci
        remote_vci_idx = self.vci_map.send_remote(self.rank, dest, tag) \
            % lib.vci_pool.max_vcis
        dst_world = self.group[dest]
        dst_proc = lib.world.proc(dst_world)
        context_id = self.context_id if _context_id is None else _context_id
        payload = flat[:n].copy()
        meta = {"src_addr": self.rank, "dst_addr": dest}
        chk = lib.sim.checker
        if chk is not None:
            # The sender's clock rides in the message meta so the
            # receiver's completion inherits a happens-before edge.
            hb = chk.on_channel_send(self, dest, tag, context_id)
            if hb is not None:
                meta["_hb"] = hb

        if size <= lib.cfg.fabric.eager_threshold:
            msg = WireMessage(
                kind=MessageKind.EAGER,
                src_node=lib.node.node_id, dst_node=dst_proc.node.node_id,
                src_rank=lib.rank, dst_rank=dst_world,
                context_id=context_id, tag=tag, size=size, payload=payload,
                src_vci=local_vci.index, dst_vci=remote_vci_idx, meta=meta)
            depart = yield from lib.issue_from_thread(local_vci, msg)
            lib.complete_at(req, depart, source=dest, tag=tag, count=n)
        else:
            meta = dict(meta, rid=req.rid, total_size=size)
            rts = WireMessage(
                kind=MessageKind.RNDV_RTS,
                src_node=lib.node.node_id, dst_node=dst_proc.node.node_id,
                src_rank=lib.rank, dst_rank=dst_world,
                context_id=context_id, tag=tag, size=size, payload=None,
                src_vci=local_vci.index, dst_vci=remote_vci_idx, meta=meta)
            lib.register_rndv_send(req.rid, {
                "req": req, "payload": payload, "size": size, "count": n,
                "tag": tag, "context_id": context_id,
                "dst_node": dst_proc.node.node_id, "dst_rank": dst_world,
                "dst_vci": remote_vci_idx,
                "src_addr": self.rank, "dst_addr": dest,
                "hb": meta.get("_hb"),
            })
            # The RTS is a header-only control message on the wire.
            rts.size = 0
            yield from lib.issue_from_thread(local_vci, rts)
        return req

    def Irecv(self, buf: np.ndarray, source: int, tag: int,
              count: Optional[int] = None,
              _context_id: Optional[int] = None
              ) -> Generator[Event, Any, Request]:
        """Nonblocking receive; returns the recv Request."""
        self._check_alive()
        self._check_peer(source, wildcard_ok=True)
        self._check_tag(tag, wildcard_ok=True)
        flat = check_buffer(buf, count)
        n = flat.size if count is None else count
        lib = self.lib
        req = Request(lib.sim, "recv")
        lib.recvs_posted += 1
        yield lib.sim.timeout(lib.cpu.recv_post)

        vci = lib.vci_pool.get(self.vci_map.recv_vci(self.rank, source, tag))
        req.vci = vci
        lock = vci.lock
        was_contended = lock.locked
        if was_contended:
            yield from lock.acquire()
        else:
            lock.try_acquire()
        context_id = self.context_id if _context_id is None else _context_id
        if lib.sim.checker is not None:
            lib.sim.checker.on_channel_recv(self, source, tag, context_id,
                                            vci.index)
        # Matching is scan-until-match: a receive that matches the head of
        # the unexpected queue is O(1) even when the queue is deep.
        scan = vci.engine.scan_cost_unexpected(context_id, source, tag,
                                               self.rank)
        cost = lib.cpu.lock_acquire \
            + (lib.cpu.lock_handoff if was_contended else 0.0) \
            + lib.cpu.match_base + lib.cpu.match_per_element * scan
        yield lib.sim.timeout(cost)
        entry = PostedRecv(req=req, buf=flat, count=n, context_id=context_id,
                           source=source, tag=tag, dst_addr=self.rank)
        msg, _scanned = vci.engine.post_recv(entry)
        if msg is not None:
            if msg.kind is MessageKind.EAGER:
                yield lib.sim.timeout(lib.cpu.request_completion)
                # Inline is safe: the request has not been returned yet, so
                # its done event has no waiters to resume early.
                lib._complete_recv(entry, msg, _inline=True)
            else:  # unexpected RNDV_RTS: grant it now
                lib._send_cts(vci, entry, msg)
        vci.lock.release()
        return req

    def Send(self, buf: np.ndarray, dest: int, tag: int,
             count: Optional[int] = None) -> Generator[Event, Any, None]:
        """Blocking send."""
        req = yield from self.Isend(buf, dest, tag, count)
        yield from req.wait()

    def Recv(self, buf: np.ndarray, source: int, tag: int,
             count: Optional[int] = None) -> Generator[Event, Any, Any]:
        """Blocking receive; returns the Status."""
        req = yield from self.Irecv(buf, source, tag, count)
        status = yield from req.wait()
        return status

    def Iprobe(self, source: int, tag: int
               ) -> Generator[Event, Any, Optional[tuple[int, int, int]]]:
        """Nonblocking probe of the unexpected queue.

        Returns ``(source, tag, size_bytes)`` of the earliest matching
        unexpected message, or None. This is the building block of
        Legion-style polling threads (Fig 5): with communicators, the
        polling thread pays one such probe *per communicator* per cycle.
        """
        self._check_alive()
        self._check_peer(source, wildcard_ok=True)
        self._check_tag(tag, wildcard_ok=True)
        lib = self.lib
        yield lib.sim.timeout(lib.cpu.probe)
        vci = lib.vci_pool.get(self.vci_map.recv_vci(self.rank, source, tag))
        was_contended = vci.lock.locked
        yield from vci.lock.acquire()
        cost = lib.cpu.lock_acquire \
            + (lib.cpu.lock_handoff if was_contended else 0.0)
        msg, scanned = vci.engine.probe(self.context_id, source, tag, self.rank)
        cost += lib.cpu.match_base + lib.cpu.match_per_element * scanned
        yield lib.sim.timeout(cost)
        vci.lock.release()
        if msg is None:
            return None
        return (msg.meta.get("src_addr", msg.src_rank), msg.tag,
                msg.meta.get("total_size", msg.size))

    def Test(self, req: Request
             ) -> Generator[Event, Any, Optional[Any]]:
        """Nonblocking completion check (MPI_Test) with realistic costs.

        A real MPI_Test drives progress on the request's channel, which
        means taking that channel's lock: on a shared channel ("original"
        MPI_THREAD_MULTIPLE) the polling thread's tests serialize against
        every sender — one of the reasons logically parallel communication
        speeds up event-driven runtimes (Fig 1c, Fig 5).
        """
        self._check_alive()
        lib = self.lib
        vci = req.vci
        if vci is not None:
            was_contended = vci.lock.locked
            yield from vci.lock.acquire()
            cost = lib.cpu.probe + lib.cpu.lock_acquire \
                + (lib.cpu.lock_handoff if was_contended else 0.0)
            yield lib.sim.timeout(cost)
            vci.lock.release()
        else:
            yield lib.sim.timeout(lib.cpu.probe)
        return req.test()

    def Improbe(self, source: int, tag: int
                ) -> Generator[Event, Any, Optional["MatchedMessage"]]:
        """Matched probe (MPI_Improbe): atomically claim a matching
        unexpected message.

        ``Iprobe`` + ``Recv`` is racy with threads — another thread can
        steal the probed message between the two calls. MPI 3's matched
        probe removes the message from the matching queues and hands back
        a :class:`MatchedMessage` that only :meth:`Mrecv` can complete.
        """
        self._check_alive()
        self._check_peer(source, wildcard_ok=True)
        self._check_tag(tag, wildcard_ok=True)
        lib = self.lib
        yield lib.sim.timeout(lib.cpu.probe)
        vci = lib.vci_pool.get(self.vci_map.recv_vci(self.rank, source, tag))
        was_contended = vci.lock.locked
        yield from vci.lock.acquire()
        cost = lib.cpu.lock_acquire \
            + (lib.cpu.lock_handoff if was_contended else 0.0)
        # claim = a removing scan of the unexpected queue
        found, scanned = vci.engine.claim_unexpected(
            self.context_id, source, tag, self.rank)
        cost += lib.cpu.match_base + lib.cpu.match_per_element * scanned
        yield lib.sim.timeout(cost)
        vci.lock.release()
        if found is None:
            return None
        return MatchedMessage(self, vci, found)

    def Mrecv(self, buf: np.ndarray, matched: "MatchedMessage",
              count: Optional[int] = None
              ) -> Generator[Event, Any, Any]:
        """Receive a message claimed by :meth:`Improbe`; returns the
        Status."""
        self._check_alive()
        if matched.consumed:
            raise MpiUsageError("MatchedMessage already received")
        matched.consumed = True
        flat = check_buffer(buf, count)
        n = flat.size if count is None else count
        lib = self.lib
        req = Request(lib.sim, "mrecv")
        req.vci = matched.vci
        yield lib.sim.timeout(lib.cpu.recv_post)
        msg = matched.msg
        if msg.kind is MessageKind.EAGER:
            yield lib.sim.timeout(lib.cpu.request_completion)
            entry = PostedRecv(req=req, buf=flat, count=n,
                               context_id=msg.context_id,
                               source=msg.meta.get("src_addr", msg.src_rank),
                               tag=msg.tag, dst_addr=self.rank)
            lib._complete_recv(entry, msg, _inline=True)
        else:  # a rendezvous RTS: grant it now
            entry = PostedRecv(req=req, buf=flat, count=n,
                               context_id=msg.context_id,
                               source=msg.meta.get("src_addr", msg.src_rank),
                               tag=msg.tag, dst_addr=self.rank)
            lib._send_cts(matched.vci, entry, msg)
        status = yield from req.wait()
        return status

    def Probe(self, source: int, tag: int
              ) -> Generator[Event, Any, tuple[int, int, int]]:
        """Blocking probe: poll until a matching message is unexpected.

        Returns ``(source, tag, size_bytes)``.
        """
        while True:
            hit = yield from self.Iprobe(source, tag)
            if hit is not None:
                return hit
            yield self.lib.sim.timeout(self.lib.cpu.progress_poll)

    def Sendrecv(self, sendbuf: np.ndarray, dest: int, sendtag: int,
                 recvbuf: np.ndarray, source: int, recvtag: int,
                 sendcount: Optional[int] = None,
                 recvcount: Optional[int] = None
                 ) -> Generator[Event, Any, Any]:
        """Combined send+receive (MPI_Sendrecv); deadlock-free by
        construction since both operations are posted nonblocking."""
        from .request import waitall
        rreq = yield from self.Irecv(recvbuf, source, recvtag, recvcount)
        sreq = yield from self.Isend(sendbuf, dest, sendtag, sendcount)
        statuses = yield from waitall([rreq, sreq])
        return statuses[0]

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def Split(self, color: Optional[int], key: int = 0,
              name: Optional[str] = None
              ) -> Generator[Event, Any, Optional["Communicator"]]:
        """Collective split (MPI_Comm_split).

        Ranks with the same ``color`` form a new communicator, ordered by
        ``(key, old rank)``. ``color=None`` (MPI_UNDEFINED) yields None.
        Like Dup, every new communicator claims a VCI by context hash —
        splitting for *grouping* spends the same network resources as
        splitting for parallelism (Lesson 4).
        """
        self._check_alive()
        seq = next(self._create_seq)
        key_id = ("comm_split", self.context_id, seq)
        world = self.lib.world

        def finalize(meeting):
            colors = sorted({c for c, _k in meeting.contributions.values()
                             if c is not None})
            meeting.shared["ctx_by_color"] = {
                c: world.alloc_context_id() for c in colors}

        meeting = yield from world.meet(
            key_id, nmembers=self.size, rank=self.rank,
            contribution=(color, key), finalize=finalize)
        if color is None:
            return None
        members = sorted(
            (r for r in range(self.size)
             if meeting.contributions[r][0] == color),
            key=lambda r: (meeting.contributions[r][1], r))
        new_group = [self.group[r] for r in members]
        new_rank = members.index(self.rank)
        context_id = meeting.shared["ctx_by_color"][color]
        new_comm = Communicator(self.lib, new_group, new_rank, context_id,
                                hints=self.hints,
                                name=name or f"{self.name}.split{color}")
        new_comm._coll_algorithms.update(self._coll_algorithms)
        return new_comm

    def Dup(self, info: Optional[Info] = None,
            name: Optional[str] = None) -> Generator[Event, Any, "Communicator"]:
        """Collective duplicate (MPI_Comm_dup / MPI_Comm_dup_with_info).

        All members of the communicator must call Dup in the same order.
        The duplicate gets a fresh context id and therefore (by the
        context-hash policy) generally a different VCI — this is how the
        communicator mechanism exposes parallelism.
        """
        self._check_alive()
        seq = next(self._create_seq)
        key = ("comm_dup", self.context_id, seq)
        world = self.lib.world
        meeting = yield from world.meet(
            key, nmembers=self.size, rank=self.rank,
            alloc=lambda: {"context_id": world.alloc_context_id()})
        context_id = meeting.shared["context_id"]
        hints = parse_comm_hints(info)
        pool = self.lib.vci_pool
        base = pool.vci_index_for_context(context_id)
        if hints.num_vcis > 1:
            vci_map: VciMap = TagBitsVciMap(hints, base, pool.max_vcis)
        else:
            vci_map = SingleVciMap(base)
        new_comm = Communicator(self.lib, list(self.group), self.rank,
                                context_id, hints=hints, vci_map=vci_map,
                                name=name or f"{self.name}.dup{seq}")
        # Parent selections carry over; explicit repro_coll_* hints on
        # this Dup win over inherited ones.
        inherited = dict(self._coll_algorithms)
        inherited.update(new_comm._coll_algorithms)
        new_comm._coll_algorithms = inherited
        return new_comm

    def Free(self) -> None:
        """Release the communicator handle (local bookkeeping only)."""
        self._check_alive()
        self.freed = True

    # ------------------------------------------------------------------
    # collectives (implementations in repro.mpi.coll)
    # ------------------------------------------------------------------
    def _collective(self, opname: str):
        """Context guard enforcing MPI's serial-collective rule."""
        comm = self

        class _Guard:
            def __enter__(self):
                comm._check_alive()
                if comm._collective_active is not None:
                    chk = comm.lib.sim.checker
                    if chk is not None:
                        # Hard rule: recorded for the report, but the
                        # library must still raise — interleaving two
                        # collectives would corrupt the matching stream.
                        chk.violation(
                            "CHK111",
                            f"collective {opname!r} overlaps "
                            f"{comm._collective_active!r} on communicator "
                            f"{comm.name!r}",
                            rank=comm.lib.rank, comm=comm.name, hard=True)
                    raise MpiUsageError(
                        f"collective {opname!r} issued on communicator "
                        f"{comm.name!r} while {comm._collective_active!r} is "
                        "in flight: MPI requires collectives on a "
                        "communicator to be issued serially (use distinct "
                        "communicators, endpoints, or partitioned "
                        "collectives to parallelize — Section II-A)")
                comm._collective_active = opname
                return self

            def __exit__(self, *exc):
                comm._collective_active = None
                return False

        return _Guard()

    def Barrier(self) -> Generator[Event, Any, None]:
        """Blocking barrier (dissemination algorithm)."""
        from .coll.algorithms import barrier_dissemination
        with self._collective("Barrier"):
            yield from barrier_dissemination(self)

    def Bcast(self, buf: np.ndarray, root: int = 0,
              count: Optional[int] = None) -> Generator[Event, Any, None]:
        """Blocking broadcast from ``root`` (binomial tree)."""
        from .coll.algorithms import bcast_binomial
        with self._collective("Bcast"):
            yield from bcast_binomial(self, buf, root, count)

    def Reduce(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               op=None, root: int = 0) -> Generator[Event, Any, None]:
        """Blocking reduction to ``root`` (binomial tree)."""
        from .coll.algorithms import reduce_binomial
        from .coll.ops import SUM
        with self._collective("Reduce"):
            yield from reduce_binomial(self, sendbuf, recvbuf, op or SUM, root)

    #: Allreduce switches from recursive doubling (latency-optimal) to a
    #: ring (bandwidth-optimal) beyond this payload size, as real MPI
    #: libraries do.
    ALLREDUCE_RING_THRESHOLD = 64 * 1024

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op=None) -> Generator[Event, Any, None]:
        """Blocking allreduce; ring beyond ALLREDUCE_RING_THRESHOLD."""
        from .coll.algorithms import (
            allreduce_recursive_doubling,
            allreduce_ring,
        )
        from .coll.ops import SUM
        from .datatypes import check_buffer
        with self._collective("Allreduce"):
            nbytes = check_buffer(sendbuf).nbytes
            algorithm = self._coll_algorithms.get("allreduce", "auto")
            if algorithm == "auto":
                algorithm = ("ring" if self.size > 2
                             and nbytes >= self.ALLREDUCE_RING_THRESHOLD
                             else "recursive_doubling")
            if algorithm == "ring" and self.size > 1:
                yield from allreduce_ring(self, sendbuf, recvbuf, op or SUM)
            else:
                yield from allreduce_recursive_doubling(self, sendbuf,
                                                        recvbuf, op or SUM)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray
                  ) -> Generator[Event, Any, None]:
        """Blocking allgather (ring)."""
        from .coll.algorithms import allgather_ring
        with self._collective("Allgather"):
            yield from allgather_ring(self, sendbuf, recvbuf)

    def Alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray
                 ) -> Generator[Event, Any, None]:
        """Blocking all-to-all (pairwise exchange)."""
        from .coll.algorithms import alltoall_pairwise
        with self._collective("Alltoall"):
            yield from alltoall_pairwise(self, sendbuf, recvbuf)

    def Gather(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               root: int = 0) -> Generator[Event, Any, None]:
        """Blocking gather to ``root`` (binomial tree)."""
        from .coll.algorithms import gather_binomial
        with self._collective("Gather"):
            yield from gather_binomial(self, sendbuf, recvbuf, root)

    def Scatter(self, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray,
                root: int = 0) -> Generator[Event, Any, None]:
        """Blocking scatter from ``root`` (binomial tree)."""
        from .coll.algorithms import scatter_binomial
        with self._collective("Scatter"):
            yield from scatter_binomial(self, sendbuf, recvbuf, root)

    def Scan(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
             op=None) -> Generator[Event, Any, None]:
        """Blocking inclusive prefix reduction (linear)."""
        from .coll.algorithms import scan_linear
        from .coll.ops import SUM
        with self._collective("Scan"):
            yield from scan_linear(self, sendbuf, recvbuf, op or SUM)

    def Reduce_scatter_block(self, sendbuf: np.ndarray,
                             recvbuf: np.ndarray, op=None
                             ) -> Generator[Event, Any, None]:
        """Blocking reduce-then-scatter of equal blocks."""
        from .coll.algorithms import reduce_scatter_block
        from .coll.ops import SUM
        with self._collective("Reduce_scatter_block"):
            yield from reduce_scatter_block(self, sendbuf, recvbuf,
                                            op or SUM)

    def Gatherv(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
                counts: Optional[list] = None, root: int = 0
                ) -> Generator[Event, Any, None]:
        """Blocking variable-count gather to ``root``."""
        from .coll.algorithms import gatherv_linear
        with self._collective("Gatherv"):
            yield from gatherv_linear(self, sendbuf, recvbuf, counts, root)

    def Allgatherv(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                   counts: list) -> Generator[Event, Any, None]:
        """Blocking variable-count allgather (ring)."""
        from .coll.algorithms import allgatherv_ring
        with self._collective("Allgatherv"):
            yield from allgatherv_ring(self, sendbuf, recvbuf, counts)

    # ------------------------------------------------------------------
    # nonblocking collectives (MPI-3 I... variants)
    # ------------------------------------------------------------------
    def Ibarrier(self) -> Generator[Event, Any, Request]:
        """Nonblocking barrier; returns a waitable Request."""
        from .coll.algorithms import barrier_dissemination
        from .coll.nonblocking import start_nonblocking_collective
        req = yield from start_nonblocking_collective(
            self, "Ibarrier", barrier_dissemination(self))
        return req

    def Ibcast(self, buf: np.ndarray, root: int = 0,
               count: Optional[int] = None
               ) -> Generator[Event, Any, Request]:
        """Nonblocking broadcast; returns a waitable Request."""
        from .coll.algorithms import bcast_binomial
        from .coll.nonblocking import start_nonblocking_collective
        req = yield from start_nonblocking_collective(
            self, "Ibcast", bcast_binomial(self, buf, root, count))
        return req

    def Iallreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                   op=None) -> Generator[Event, Any, Request]:
        """Nonblocking allreduce; returns a waitable Request."""
        from .coll.algorithms import allreduce_recursive_doubling
        from .coll.nonblocking import start_nonblocking_collective
        from .coll.ops import SUM
        req = yield from start_nonblocking_collective(
            self, "Iallreduce",
            allreduce_recursive_doubling(self, sendbuf, recvbuf, op or SUM))
        return req
