"""RMA windows: Put / Get / Accumulate / Fetch_and_op with flush-based
completion (Section III-B of the paper).

Channel-mapping semantics (Lesson 16):

- **nonatomic** operations (Put/Get) are unordered by MPI's default
  semantics, so with ``mpich_rma_num_vcis > 1`` the library spreads them
  over VCIs by hashing ``(target, offset-block)``;
- **atomic** operations (Accumulate/Fetch_and_op) are ordered per
  (origin, target, location) by default. The library cannot prove two
  atomics independent, so with default ordering they all ride the window's
  single base VCI. Setting ``accumulate_ordering=none`` lets the library
  hash-spread them — but "any hashing policy is prone to collisions";
- a window created over an **endpoints** communicator routes each
  endpoint's operations through that endpoint's dedicated VCI: parallelism
  *and* atomicity, the paper's argument for endpoints in RMA.

Remote completion: every operation is acknowledged by the target; ``Flush``
blocks until all outstanding operations to the target are acknowledged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ...errors import MpiUsageError, RmaSemanticsError
from ...netsim.message import MessageKind, WireMessage
from ...sim.core import Event
from ..coll.ops import Op, SUM
from ..datatypes import check_buffer
from ..info import Info, WindowHints, parse_window_hints
from ..request import Request
from ..vci import EndpointVciMap, mix_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..comm import Communicator
    from ..library import MpiLibrary

__all__ = ["Window", "win_create"]

#: Elements per hash block for channel spreading of RMA operations.
HASH_BLOCK_ELEMS = 256


def _ensure_handlers(lib: "MpiLibrary") -> None:
    if MessageKind.RMA_PUT in lib.handlers:
        return
    if not hasattr(lib, "rma_windows"):
        lib.rma_windows = {}
    lib.handlers[MessageKind.RMA_PUT] = lambda m: _on_put(lib, m)
    lib.handlers[MessageKind.RMA_GET_REQ] = lambda m: _on_get_req(lib, m)
    lib.handlers[MessageKind.RMA_GET_RESP] = lambda m: _on_get_resp(lib, m)
    lib.handlers[MessageKind.RMA_ACC] = lambda m: _on_acc(lib, m)
    lib.handlers[MessageKind.RMA_FETCH_OP] = lambda m: _on_fetch_op(lib, m)
    lib.handlers[MessageKind.RMA_ACK] = lambda m: _on_ack(lib, m)


class Window:
    """One process's (or endpoint's) handle on an RMA window."""

    def __init__(self, comm: "Communicator", memory: np.ndarray,
                 win_id: int, sizes: list[int], hints: WindowHints):
        self.comm = comm
        self.lib = comm.lib
        self.sim = comm.sim
        self.memory = check_buffer(memory)
        self.win_id = win_id
        #: ``sizes[target]`` = element count exposed by each window rank.
        self.sizes = sizes
        self.hints = hints
        self.base_vci = self.lib.vci_pool.vci_index_for_context(win_id)
        #: Outstanding (unacknowledged) operations per target rank.
        self._outstanding: dict[int, int] = {}
        self._flush_waiters: list[tuple[Optional[int], Event]] = []
        # -- counters ---------------------------------------------------
        self.puts = self.gets = self.accs = self.fetch_ops = 0

    # ------------------------------------------------------------------
    # channel selection
    # ------------------------------------------------------------------
    def _vci_index(self, target: int, disp: int, atomic: bool) -> int:
        vm = self.comm.vci_map
        if isinstance(vm, EndpointVciMap):
            # Endpoints: each endpoint is an independent origin — its own
            # channel is always legal, even for atomics (Lesson 16).
            return vm.my_vci
        if atomic and not self.hints.atomics_may_spread:
            return self.base_vci
        if self.hints.num_vcis > 1:
            block = disp // HASH_BLOCK_ELEMS
            h = mix_hash((target << 24) ^ block)
            return (self.base_vci + h % self.hints.num_vcis) \
                % self.lib.vci_pool.max_vcis
        return self.base_vci

    def _remote_vci_index(self, target: int, disp: int, atomic: bool) -> int:
        vm = self.comm.vci_map
        if isinstance(vm, EndpointVciMap):
            return vm.table[target]
        return self._vci_index(target, disp, atomic)

    # ------------------------------------------------------------------
    # origin-side helpers
    # ------------------------------------------------------------------
    def _check_target(self, target: int, disp: int, count: int) -> None:
        if not 0 <= target < self.comm.size:
            raise MpiUsageError(f"window target {target} out of range")
        if disp < 0 or count < 0:
            raise RmaSemanticsError(f"negative displacement/count")
        if disp + count > self.sizes[target]:
            raise RmaSemanticsError(
                f"access [{disp}, {disp + count}) exceeds window size "
                f"{self.sizes[target]} at target {target}")

    def _build(self, kind: MessageKind, target: int, disp: int,
               size: int, payload, atomic: bool, extra: dict) -> tuple:
        lib = self.lib
        local_idx = self._vci_index(target, disp, atomic)
        remote_idx = self._remote_vci_index(target, disp, atomic)
        dst_world = self.comm.group[target]
        dst_proc = lib.world.proc(dst_world)
        meta = {"win": self.win_id, "dst_addr": target,
                "src_addr": self.comm.rank, "disp": disp,
                "origin_node": lib.node.node_id, "origin_rank": lib.rank,
                "origin_vci": local_idx}
        meta.update(extra)
        msg = WireMessage(
            kind=kind, src_node=lib.node.node_id,
            dst_node=dst_proc.node.node_id, src_rank=lib.rank,
            dst_rank=dst_world, context_id=self.win_id, tag=0, size=size,
            payload=payload, src_vci=local_idx, dst_vci=remote_idx,
            meta=meta)
        return lib.vci_pool.get(local_idx), msg

    def _track(self, target: int) -> None:
        self._outstanding[target] = self._outstanding.get(target, 0) + 1

    def _acked(self, target: int) -> None:
        self._outstanding[target] -= 1
        if self._outstanding[target] == 0:
            still = [w for w in self._flush_waiters]
            self._flush_waiters = []
            for tgt, ev in still:
                if tgt is None and any(self._outstanding.values()):
                    self._flush_waiters.append((tgt, ev))
                elif tgt is not None and self._outstanding.get(tgt, 0):
                    self._flush_waiters.append((tgt, ev))
                else:
                    ev.succeed()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def Put(self, origin: np.ndarray, target: int, disp: int,
            count: Optional[int] = None) -> Generator[Event, Any, None]:
        """Nonblocking put; completes remotely at the next Flush."""
        flat = check_buffer(origin, count)
        n = flat.size if count is None else count
        self._check_target(target, disp, n)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Put", target, disp, n,
                                       atomic=False, write=True)
        lib = self.lib
        yield lib.sim.timeout(lib.cpu.send_post)
        vci, msg = self._build(MessageKind.RMA_PUT, target, disp,
                               n * flat.dtype.itemsize, flat[:n].copy(),
                               atomic=False, extra={})
        self._track(target)
        self.puts += 1
        yield from lib.issue_from_thread(vci, msg)

    def Get(self, origin: np.ndarray, target: int, disp: int,
            count: Optional[int] = None) -> Generator[Event, Any, Request]:
        """Nonblocking get; the returned request completes when the data
        lands in ``origin``."""
        flat = check_buffer(origin, count)
        n = flat.size if count is None else count
        self._check_target(target, disp, n)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Get", target, disp, n,
                                       atomic=False, write=False)
        lib = self.lib
        req = Request(lib.sim, "rma-get")
        req.user_data = flat[:n]
        yield lib.sim.timeout(lib.cpu.send_post)
        if not hasattr(lib, "rma_get_pending"):
            lib.rma_get_pending = {}
        lib.rma_get_pending[req.rid] = (req, self)
        vci, msg = self._build(MessageKind.RMA_GET_REQ, target, disp, 0,
                               None, atomic=False,
                               extra={"rid": req.rid, "count": n})
        self._track(target)
        self.gets += 1
        yield from lib.issue_from_thread(vci, msg)
        return req

    def Accumulate(self, origin: np.ndarray, target: int, disp: int,
                   op: Op = SUM, count: Optional[int] = None
                   ) -> Generator[Event, Any, None]:
        """Atomic elementwise update of target memory (MPI_Accumulate)."""
        flat = check_buffer(origin, count)
        n = flat.size if count is None else count
        self._check_target(target, disp, n)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Accumulate", target, disp, n,
                                       atomic=True, write=True)
        lib = self.lib
        yield lib.sim.timeout(lib.cpu.send_post)
        vci, msg = self._build(MessageKind.RMA_ACC, target, disp,
                               n * flat.dtype.itemsize, flat[:n].copy(),
                               atomic=True, extra={"op": op.name})
        self._track(target)
        self.accs += 1
        yield from lib.issue_from_thread(vci, msg)

    def Fetch_and_op(self, value: np.ndarray, result: np.ndarray,
                     target: int, disp: int, op: Op = SUM
                     ) -> Generator[Event, Any, Request]:
        """Atomic fetch-and-op on a single element."""
        val = check_buffer(value, 1)
        res = check_buffer(result, 1)
        self._check_target(target, disp, 1)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Fetch_and_op", target, disp,
                                       1, atomic=True, write=True)
        lib = self.lib
        req = Request(lib.sim, "rma-fop")
        req.user_data = res
        yield lib.sim.timeout(lib.cpu.send_post)
        if not hasattr(lib, "rma_get_pending"):
            lib.rma_get_pending = {}
        lib.rma_get_pending[req.rid] = (req, self)
        vci, msg = self._build(MessageKind.RMA_FETCH_OP, target, disp,
                               val.dtype.itemsize, val[:1].copy(),
                               atomic=True, extra={"rid": req.rid,
                                                   "op": op.name})
        self._track(target)
        self.fetch_ops += 1
        yield from lib.issue_from_thread(vci, msg)
        return req

    def Get_accumulate(self, origin: np.ndarray, result: np.ndarray,
                       target: int, disp: int, op: Op = SUM,
                       count: Optional[int] = None
                       ) -> Generator[Event, Any, Request]:
        """Atomic read-modify-write: fetch the old target values into
        ``result`` and apply ``origin`` with ``op`` (MPI_Get_accumulate)."""
        flat = check_buffer(origin, count)
        n = flat.size if count is None else count
        res = check_buffer(result, n)
        self._check_target(target, disp, n)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Get_accumulate", target,
                                       disp, n, atomic=True, write=True)
        lib = self.lib
        req = Request(lib.sim, "rma-getacc")
        req.user_data = res[:n]
        yield lib.sim.timeout(lib.cpu.send_post)
        if not hasattr(lib, "rma_get_pending"):
            lib.rma_get_pending = {}
        lib.rma_get_pending[req.rid] = (req, self)
        vci, msg = self._build(MessageKind.RMA_FETCH_OP, target, disp,
                               n * flat.dtype.itemsize, flat[:n].copy(),
                               atomic=True,
                               extra={"rid": req.rid, "op": op.name,
                                      "count": n})
        self._track(target)
        self.fetch_ops += 1
        yield from lib.issue_from_thread(vci, msg)
        return req

    def Compare_and_swap(self, compare: np.ndarray, origin: np.ndarray,
                         result: np.ndarray, target: int, disp: int
                         ) -> Generator[Event, Any, Request]:
        """Atomic compare-and-swap on one element (MPI_Compare_and_swap).

        ``result`` receives the old target value; the swap happens only if
        the target equalled ``compare``.
        """
        cmp_ = check_buffer(compare, 1)
        org = check_buffer(origin, 1)
        res = check_buffer(result, 1)
        self._check_target(target, disp, 1)
        if self.sim.checker is not None:
            self.sim.checker.on_rma_op(self, "Compare_and_swap", target,
                                       disp, 1, atomic=True, write=True)
        lib = self.lib
        req = Request(lib.sim, "rma-cas")
        req.user_data = res[:1]
        yield lib.sim.timeout(lib.cpu.send_post)
        if not hasattr(lib, "rma_get_pending"):
            lib.rma_get_pending = {}
        lib.rma_get_pending[req.rid] = (req, self)
        vci, msg = self._build(MessageKind.RMA_FETCH_OP, target, disp,
                               org.dtype.itemsize, org[:1].copy(),
                               atomic=True,
                               extra={"rid": req.rid, "op": "CAS",
                                      "compare": float(cmp_[0])})
        self._track(target)
        self.fetch_ops += 1
        yield from lib.issue_from_thread(vci, msg)
        return req

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def Flush(self, target: int) -> Generator[Event, Any, None]:
        """Block until all operations this handle issued to ``target``
        have completed at the target."""
        yield self.sim.timeout(self.lib.cpu.progress_poll)
        if self._outstanding.get(target, 0):
            ev = self.sim.event()
            self._flush_waiters.append((target, ev))
            yield ev

    def Flush_all(self) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.lib.cpu.progress_poll)
        if any(self._outstanding.values()):
            ev = self.sim.event()
            self._flush_waiters.append((None, ev))
            yield ev

    def Fence(self) -> Generator[Event, Any, None]:
        """Active-target synchronization: flush + barrier (collective)."""
        yield from self.Flush_all()
        yield from self.comm.Barrier()

    def Lock(self, target: int) -> Generator[Event, Any, None]:
        """Passive-target lock (modelled as an epoch open: local cost only)."""
        if self.sim.checker is not None:
            self.sim.checker.on_rma_sync(self, "lock", target)
        yield self.sim.timeout(self.lib.cpu.lock_acquire)

    def Unlock(self, target: int) -> Generator[Event, Any, None]:
        """Close a passive epoch: flush the target."""
        if self.sim.checker is not None:
            self.sim.checker.on_rma_sync(self, "unlock", target)
        yield from self.Flush(target)

    def Lock_all(self) -> Generator[Event, Any, None]:
        """Open a passive epoch to every target (MPI_Win_lock_all)."""
        if self.sim.checker is not None:
            self.sim.checker.on_rma_sync(self, "lock", None)
        yield self.sim.timeout(self.lib.cpu.lock_acquire)

    def Unlock_all(self) -> Generator[Event, Any, None]:
        """Close the all-target passive epoch: flush everything."""
        if self.sim.checker is not None:
            self.sim.checker.on_rma_sync(self, "unlock", None)
        yield from self.Flush_all()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Window id={self.win_id} rank {self.comm.rank}/"
                f"{self.comm.size} size={self.memory.size}>")


# ----------------------------------------------------------------------
# target-side handlers
# ----------------------------------------------------------------------

def _window_for(lib: "MpiLibrary", msg: WireMessage) -> Window:
    return lib.rma_windows[(msg.meta["win"], msg.meta["dst_addr"])]


def _send_ack(lib: "MpiLibrary", win: Window, msg: WireMessage) -> None:
    vci = lib.vci_pool.get(msg.dst_vci)
    ack = WireMessage(
        kind=MessageKind.RMA_ACK,
        src_node=lib.node.node_id, dst_node=msg.meta["origin_node"],
        src_rank=lib.rank, dst_rank=msg.meta["origin_rank"],
        context_id=msg.context_id, tag=0, size=0,
        src_vci=msg.dst_vci, dst_vci=msg.meta["origin_vci"],
        meta={"win": msg.meta["win"], "dst_addr": msg.meta["src_addr"],
              "target": msg.meta["dst_addr"]})
    lib.issue_async(vci, ack)


def _on_put(lib: "MpiLibrary", msg: WireMessage) -> None:
    win = _window_for(lib, msg)
    disp = msg.meta["disp"]
    data = msg.payload
    win.memory[disp:disp + len(data)] = data
    _send_ack(lib, win, msg)


def _on_acc(lib: "MpiLibrary", msg: WireMessage) -> None:
    from ..coll import ops as _ops
    win = _window_for(lib, msg)
    disp = msg.meta["disp"]
    data = msg.payload
    op: Op = getattr(_ops, msg.meta["op"])
    # Applied in one event-loop step: atomic by construction.
    op.apply(win.memory[disp:disp + len(data)], data)
    _send_ack(lib, win, msg)


def _on_get_req(lib: "MpiLibrary", msg: WireMessage) -> None:
    win = _window_for(lib, msg)
    disp, n = msg.meta["disp"], msg.meta["count"]
    data = win.memory[disp:disp + n].copy()
    vci = lib.vci_pool.get(msg.dst_vci)
    resp = WireMessage(
        kind=MessageKind.RMA_GET_RESP,
        src_node=lib.node.node_id, dst_node=msg.meta["origin_node"],
        src_rank=lib.rank, dst_rank=msg.meta["origin_rank"],
        context_id=msg.context_id, tag=0, size=data.nbytes, payload=data,
        src_vci=msg.dst_vci, dst_vci=msg.meta["origin_vci"],
        meta={"rid": msg.meta["rid"], "target": msg.meta["dst_addr"]})
    lib.issue_async(vci, resp)


def _on_fetch_op(lib: "MpiLibrary", msg: WireMessage) -> None:
    from ..coll import ops as _ops
    win = _window_for(lib, msg)
    disp = msg.meta["disp"]
    n = msg.meta.get("count", 1)
    old = win.memory[disp:disp + n].copy()
    if msg.meta["op"] == "CAS":
        if old[0] == msg.meta["compare"]:
            win.memory[disp:disp + 1] = msg.payload
    else:
        op: Op = getattr(_ops, msg.meta["op"])
        op.apply(win.memory[disp:disp + n], msg.payload)
    vci = lib.vci_pool.get(msg.dst_vci)
    resp = WireMessage(
        kind=MessageKind.RMA_GET_RESP,
        src_node=lib.node.node_id, dst_node=msg.meta["origin_node"],
        src_rank=lib.rank, dst_rank=msg.meta["origin_rank"],
        context_id=msg.context_id, tag=0, size=old.nbytes, payload=old,
        src_vci=msg.dst_vci, dst_vci=msg.meta["origin_vci"],
        meta={"rid": msg.meta["rid"], "target": msg.meta["dst_addr"]})
    lib.issue_async(vci, resp)


def _on_get_resp(lib: "MpiLibrary", msg: WireMessage) -> None:
    req, win = lib.rma_get_pending.pop(msg.meta["rid"])
    buf: np.ndarray = req.user_data
    buf[: len(msg.payload)] = msg.payload
    win._acked(msg.meta["target"])
    req.complete(source=msg.meta["target"], tag=0, count=len(msg.payload))


def _on_ack(lib: "MpiLibrary", msg: WireMessage) -> None:
    win = lib.rma_windows[(msg.meta["win"], msg.meta["dst_addr"])]
    win._acked(msg.meta["target"])


# ----------------------------------------------------------------------
# creation
# ----------------------------------------------------------------------

def win_create(comm: "Communicator", memory: np.ndarray,
               info: Optional[Info] = None
               ) -> Generator[Event, Any, Window]:
    """``MPI_Win_create``: collective over ``comm``.

    Every rank (or endpoint, when ``comm`` is an endpoints communicator)
    exposes ``memory``; endpoints of one process may — and for the NWChem
    pattern should — pass the *same* array, sharing one memory region.
    """
    lib = comm.lib
    _ensure_handlers(lib)
    world = lib.world
    flat = check_buffer(memory)
    hints = parse_window_hints(info)
    seq = next(comm._create_seq)
    key = ("win_create", comm.context_id, seq)
    meeting = yield from world.meet(
        key, nmembers=comm.size, rank=comm.rank, contribution=flat.size,
        alloc=lambda: {"win_id": world.alloc_context_id()})
    win_id = meeting.shared["win_id"]
    sizes = [meeting.contributions[r] for r in range(comm.size)]
    win = Window(comm, flat, win_id, sizes, hints)
    lib.rma_windows[(win_id, comm.rank)] = win
    if lib.sim.checker is not None:
        lib.sim.checker.register_window(win)
    return win
