"""One-sided (RMA) communication: windows, Put/Get/Accumulate, flush."""

from .window import HASH_BLOCK_ELEMS, Window, win_create

__all__ = ["HASH_BLOCK_ELEMS", "Window", "win_create"]
