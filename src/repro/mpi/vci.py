"""Virtual Communication Interfaces (VCIs) and VCI-selection policies.

A VCI is MPICH's unit of software communication parallelism: an
independent communication channel with its own lock, its own matching
engine, and its own NIC hardware context [Zambre et al., ICS'20]. The MPI
library maps *logically parallel* operations onto distinct VCIs; operations
on the same VCI serialize on its lock and matching engine.

The mapping policies here implement the three ways the paper's mechanisms
expose parallelism:

- :class:`SingleVciMap` — MPI's default semantics: one VCI per
  communicator (chosen by hashing the context id into the pool). Multiple
  *communicators* therefore land on multiple VCIs, which is exactly the
  communicator mechanism of Lesson 1.
- :class:`TagBitsVciMap` — the "tags with hints" mechanism (Listing 2):
  VCIs selected from tag bits (one-to-one) or a tag hash. Receive-side
  spreading requires the no-wildcard assertions; ``allow_overtaking``
  alone unlocks only sender-side spreading.
- :class:`EndpointVciMap` — user-visible endpoints: every endpoint has a
  dedicated VCI; the sender derives the target VCI from the target
  endpoint rank. Matching information (ranks) and parallelism information
  coincide, so wildcards remain usable (Lesson 11).
"""

from __future__ import annotations

from typing import Optional

from ..errors import HintViolationError, MpiUsageError
from ..netsim.config import CpuCosts
from ..netsim.nic import HardwareContext, Nic
from ..obs.metrics import MetricsRegistry, instrument_lock
from ..sim.core import Simulator
from ..sim.resources import FIFOServer
from ..sim.sync import Lock
from .info import CommHints
from .matching import ANY_TAG, MatchingEngine

__all__ = ["TAG_BITS", "TAG_UB", "mix_hash", "Vci", "VciPool", "VciMap",
           "SingleVciMap", "TagBitsVciMap", "EndpointVciMap"]

#: Width of the MPI tag space in bits. MPI guarantees MPI_TAG_UB >= 32767;
#: we model a 20-bit space, small enough that encoding thread ids into tags
#: meaningfully eats the application's tag space (Lesson 9).
TAG_BITS = 20
TAG_UB = (1 << TAG_BITS) - 1


def mix_hash(x: int) -> int:
    """Deterministic 64-bit integer mixer (splitmix64 finalizer).

    Used wherever both sides of a transfer must agree on a hash (Python's
    ``hash`` is the identity on small ints, which would collapse tag hashes
    onto the application bits).
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class Vci:
    """One virtual communication interface.

    With metrics enabled the VCI pre-builds its issue-path metric handles
    (``m_*``) so the hot path in
    :meth:`~repro.mpi.library.MpiLibrary.issue_from_thread` records stage
    timings with plain attribute updates, and instruments its lock with a
    contention observer (the doorbell lock is instrumented by the NIC
    layer, which knows the node/context labels).
    """

    __slots__ = ("sim", "index", "lock", "engine", "match_server",
                 "hw_context", "sends", "recvs", "m_issue", "m_issue_async",
                 "m_lock_wait", "m_db_wait", "m_sw_cost", "m_inject_delay",
                 "m_shared_post")

    def __init__(self, sim: Simulator, index: int, cpu: CpuCosts,
                 hw_context: HardwareContext,
                 metrics: Optional[MetricsRegistry] = None, rank: int = 0):
        self.sim = sim
        self.index = index
        #: Serializes thread access to this channel's send path and queues.
        self.lock = Lock(sim, name=f"vci{index}.lock")
        labels = {"rank": rank, "vci": index}
        if metrics is not None and metrics.enabled:
            self.engine = MatchingEngine(metrics, labels)
            self.m_issue = metrics.counter("mpi.issue.count", **labels)
            self.m_issue_async = metrics.counter("mpi.issue.async", **labels)
            self.m_lock_wait = metrics.histogram("mpi.issue.lock_wait",
                                                 **labels)
            self.m_db_wait = metrics.histogram("mpi.issue.doorbell_wait",
                                               **labels)
            self.m_sw_cost = metrics.histogram("mpi.issue.sw_cost", **labels)
            self.m_inject_delay = metrics.histogram("mpi.issue.inject_delay",
                                                    **labels)
            self.m_shared_post = metrics.counter("nic.shared_post", **labels)
            instrument_lock(self.lock, metrics, rank=rank, vci=index)
        else:
            self.engine = MatchingEngine()
            self.m_issue = None
            self.m_issue_async = None
            self.m_lock_wait = None
            self.m_db_wait = None
            self.m_sw_cost = None
            self.m_inject_delay = None
            self.m_shared_post = None
        #: Serializes arrival-side matching work in *time* (matching is "a
        #: costly serial operation", Section II-C).
        self.match_server = FIFOServer(sim, name=f"vci{index}.match")
        self.hw_context = hw_context
        self.sends = 0
        self.recvs = 0


class VciPool:
    """The per-process pool of VCIs.

    Mirrors MPICH: the pool size is fixed at init (``MPIR_CVAR_CH4_NUM_VCIS``);
    logical channels are mapped into the pool, and each VCI draws a NIC
    hardware context from the node's (possibly smaller) context pool —
    creating the resource pressure of Lesson 3 when many communicators are
    used to express parallelism.
    """

    def __init__(self, sim: Simulator, nic: Nic, cpu: CpuCosts,
                 max_vcis: int = 64,
                 metrics: Optional[MetricsRegistry] = None, rank: int = 0):
        if max_vcis < 1:
            raise MpiUsageError("VCI pool needs at least one VCI")
        self.sim = sim
        self.nic = nic
        self.cpu = cpu
        self.max_vcis = max_vcis
        self.metrics = metrics
        self.rank = rank
        self._vcis: dict[int, Vci] = {}

    def get(self, index: int) -> Vci:
        """Return VCI ``index % max_vcis``, creating it on first use."""
        index %= self.max_vcis
        vci = self._vcis.get(index)
        if vci is None:
            vci = Vci(self.sim, index, self.cpu, self.nic.allocate_context(),
                      metrics=self.metrics, rank=self.rank)
            self._vcis[index] = vci
        return vci

    def vci_index_for_context(self, context_id: int) -> int:
        """Default communicator-to-VCI assignment: hash the context id.

        This is the "overloaded definition" hazard of Lesson 4: *every*
        communicator — whether created for grouping or for parallelism —
        consumes a slot by this hash, so grouping communicators can
        collide with parallelism communicators.
        """
        return mix_hash(context_id) % self.max_vcis

    @property
    def num_active(self) -> int:
        return len(self._vcis)

    @property
    def active_vcis(self) -> list[Vci]:
        return [self._vcis[i] for i in sorted(self._vcis)]

    def send_counts(self) -> list[int]:
        return [v.sends for v in self.active_vcis]


class VciMap:
    """Policy mapping an operation to (local VCI, remote VCI)."""

    def send_local(self, src_addr: int, dst_addr: int, tag: int) -> int:
        raise NotImplementedError

    def send_remote(self, src_addr: int, dst_addr: int, tag: int) -> int:
        raise NotImplementedError

    def recv_vci(self, dst_addr: int, source: int, tag: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class SingleVciMap(VciMap):
    """Everything on one VCI — MPI's default per-communicator behaviour."""

    def __init__(self, index: int):
        self.index = index

    def send_local(self, src_addr: int, dst_addr: int, tag: int) -> int:
        return self.index

    def send_remote(self, src_addr: int, dst_addr: int, tag: int) -> int:
        return self.index

    def recv_vci(self, dst_addr: int, source: int, tag: int) -> int:
        return self.index

    def describe(self) -> str:
        return f"single(vci={self.index})"


class TagBitsVciMap(VciMap):
    """Tag-driven VCI selection, configured by MPICH hints (Listing 2).

    Tag layout with MSB placement and ``b = num_tag_bits_vci``::

        | src_tid (b bits) | dst_tid (b bits) | application bits |
        ^ bit TAG_BITS-1                       ^ bit 0

    With LSB placement the src/dst fields sit in the low bits instead.

    - ``one-to-one``: local VCI from the sender-thread bits, remote VCI
      from the receiver-thread bits. Requires no-wildcard assertions.
    - ``hash``: both sides hash the whole tag. Receive-side hashing also
      requires no wildcards; with only ``allow_overtaking`` the hash is
      applied on the send side and the receive side stays on the base VCI.
    """

    def __init__(self, hints: CommHints, base_index: int, num_pool_vcis: int):
        if hints.num_vcis < 1:
            raise MpiUsageError("TagBitsVciMap requires num_vcis >= 1")
        self.hints = hints
        self.base = base_index
        self.n = min(hints.num_vcis, num_pool_vcis)
        self.bits = hints.num_tag_bits_vci
        self.msb = hints.place_tag_bits_local_vci == "MSB"
        self.one_to_one = hints.tag_vci_hash_type == "one-to-one"

    # -- tag-field extraction ------------------------------------------------
    def src_field(self, tag: int) -> int:
        mask = (1 << self.bits) - 1
        if self.msb:
            return (tag >> (TAG_BITS - self.bits)) & mask
        return tag & mask

    def dst_field(self, tag: int) -> int:
        mask = (1 << self.bits) - 1
        if self.msb:
            return (tag >> (TAG_BITS - 2 * self.bits)) & mask
        return (tag >> self.bits) & mask

    def _spread(self, value: int) -> int:
        return self.base + value % self.n

    # -- policy ---------------------------------------------------------------
    def send_local(self, src_addr: int, dst_addr: int, tag: int) -> int:
        if not self.hints.send_side_spreading:
            return self.base
        if self.one_to_one:
            return self._spread(self.src_field(tag))
        return self._spread(mix_hash(tag))

    def send_remote(self, src_addr: int, dst_addr: int, tag: int) -> int:
        if not self.hints.recv_side_spreading:
            return self.base
        if self.one_to_one:
            return self._spread(self.dst_field(tag))
        return self._spread(mix_hash(tag))

    def recv_vci(self, dst_addr: int, source: int, tag: int) -> int:
        """VCI whose queues a posted receive with this tag lives on."""
        if not self.hints.recv_side_spreading:
            return self.base
        if tag == ANY_TAG:
            raise HintViolationError(
                "ANY_TAG receive on a communicator asserting "
                "mpi_assert_no_any_tag")
        if self.one_to_one:
            return self._spread(self.dst_field(tag))
        return self._spread(mix_hash(tag))

    def describe(self) -> str:
        kind = "one-to-one" if self.one_to_one else "hash"
        return (f"tag-bits({kind}, n={self.n}, bits={self.bits}, "
                f"base={self.base})")


class EndpointVciMap(VciMap):
    """Dedicated VCI per endpoint; target VCI derived from target rank."""

    def __init__(self, my_vci: int, ep_vci_table: list[int]):
        self.my_vci = my_vci
        #: ``ep_vci_table[ep_rank]`` = VCI index on the *owner process* of
        #: that endpoint. Shared by all endpoints of the communicator.
        self.table = ep_vci_table

    def send_local(self, src_addr: int, dst_addr: int, tag: int) -> int:
        return self.my_vci

    def send_remote(self, src_addr: int, dst_addr: int, tag: int) -> int:
        return self.table[dst_addr]

    def recv_vci(self, dst_addr: int, source: int, tag: int) -> int:
        # Matching lives on the endpoint's own VCI regardless of source or
        # tag — wildcards remain legal (Lesson 11).
        return self.my_vci

    def describe(self) -> str:
        return f"endpoint(vci={self.my_vci})"
