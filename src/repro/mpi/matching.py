"""The message-matching engine.

Each VCI owns one matching engine (a posted-receive queue and an
unexpected-message queue); this per-channel separation is exactly what
gives the new MPI libraries their parallel matching ("a distinct matching
engine per communication channel", Section II-C of the paper) and what
makes matching on a *shared* channel an O(n) serial bottleneck.

Matching predicate: a receive posted with ``(context, source, tag,
dst_addr)`` matches an incoming message when the context ids and the
destination addresses are equal, the source matches (or the receive used
``ANY_SOURCE``), and the tag matches (or ``ANY_TAG``). ``dst_addr`` is the
receiver's address *within the communicator* — for ordinary communicators
this is simply the process's rank; for endpoints communicators it is the
endpoint rank, which is how endpoints separate matching between threads
that share a process (Lesson 11).

Queues are FIFO: an incoming message matches the earliest matching posted
receive and a new receive matches the earliest matching unexpected message,
which implements MPI's non-overtaking matching order. The
``allow_overtaking`` relaxation does not change the scan itself — it
changes which *channels* operations may be spread over (see
:mod:`repro.mpi.vci`), because once traffic is spread over independent
channels arrival order between them is unconstrained.

Simulated cost vs host cost
---------------------------

The O(n) scan is a *modelled* cost: the cost model charges
``match_per_element`` per element the linear scan would visit, and
``total_scans``/the ``match.scan`` histograms record exactly those counts.
Paying that O(n) a second time as real Python iteration on the host is
pure overhead, so :class:`MatchingEngine` is an **indexed** engine: hash
buckets keyed on ``(context_id, dst_addr, source, tag)`` (with side
buckets for the ``ANY_SOURCE``/``ANY_TAG`` wildcard combinations) find the
earliest candidate in O(1)-ish host time, and the ``scanned`` count the
linear scan *would* have produced is recovered analytically from the
position of the matched element's sequence number among the live queue —
so every simulated timing, ``total_scans`` and histogram is byte-identical
to the reference :class:`LinearMatchingEngine` kept below (the property
tests assert this under randomized interleavings; see
``docs/performance.md``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..netsim.message import WireMessage
from .request import Request

__all__ = ["ANY_SOURCE", "ANY_TAG", "PostedRecv", "MatchingEngine",
           "LinearMatchingEngine", "key_matches"]

#: Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1


def key_matches(context_id: int, source: int, tag: int, dst_addr: int,
                msg: WireMessage) -> bool:
    """The matching predicate, without a throwaway :class:`PostedRecv`."""
    meta = msg.meta
    return (msg.context_id == context_id
            and meta.get("dst_addr", msg.dst_rank) == dst_addr
            and (source == ANY_SOURCE
                 or source == meta.get("src_addr", msg.src_rank))
            and (tag == ANY_TAG or tag == msg.tag))


@dataclass
class PostedRecv:
    """One posted receive awaiting a message.

    ``seq`` is the receive's position in its engine's posted stream; it is
    assigned by the engine when the receive is appended to the posted
    queue (engines number their queues independently, so unrelated Worlds
    in one host process never interleave sequence numbers).
    """

    req: Request
    buf: np.ndarray
    count: int
    context_id: int
    source: int
    tag: int
    dst_addr: int
    seq: int = -1

    def matches(self, msg: WireMessage) -> bool:
        return key_matches(self.context_id, self.source, self.tag,
                           self.dst_addr, msg)


class _EngineBase:
    """Counters, depth high-water marks and metric handles shared by the
    indexed engine and the linear reference engine."""

    __slots__ = ("max_posted_depth", "max_unexpected_depth", "total_scans",
                 "_h_scan_posted", "_h_scan_unexpected",
                 "_h_posted_depth", "_h_unexpected_depth")

    def __init__(self, metrics=None, labels: Optional[dict] = None):
        self.max_posted_depth = 0
        self.max_unexpected_depth = 0
        #: Total queue elements scanned over the engine's lifetime — the
        #: O(n) matching-work metric.
        self.total_scans = 0
        if metrics is not None and metrics.enabled:
            from ..obs.metrics import DEPTH_BUCKETS
            labels = labels or {}
            self._h_scan_posted = metrics.histogram(
                "match.scan", bounds=DEPTH_BUCKETS, queue="posted", **labels)
            self._h_scan_unexpected = metrics.histogram(
                "match.scan", bounds=DEPTH_BUCKETS, queue="unexpected",
                **labels)
            self._h_posted_depth = metrics.histogram(
                "match.posted_depth", bounds=DEPTH_BUCKETS, **labels)
            self._h_unexpected_depth = metrics.histogram(
                "match.unexpected_depth", bounds=DEPTH_BUCKETS, **labels)
        else:
            self._h_scan_posted = None
            self._h_scan_unexpected = None
            self._h_posted_depth = None
            self._h_unexpected_depth = None


# Bucket-record field indices: a record is the mutable triple
# ``[seq, item, alive]`` shared by every bucket that indexes the item.
_SEQ, _ITEM, _ALIVE = 0, 1, 2


def _live_head(bucket: Optional[deque]) -> Optional[list]:
    """Drop dead records off the bucket head; return the live head."""
    if not bucket:
        return None
    while bucket:
        rec = bucket[0]
        if rec[_ALIVE]:
            return rec
        bucket.popleft()
    return None


class MatchingEngine(_EngineBase):
    """Posted-receive and unexpected-message queues for one channel.

    When constructed with a :class:`repro.obs.MetricsRegistry`, every
    match records its scan length and the queue depth it left behind —
    the per-match observability of the O(n) serial-matching cost
    (Section II-C); ``labels`` (typically ``rank``/``vci``) tag the
    series.

    Host-side lookups are O(1)-ish hash-bucket operations; the reported
    ``scanned`` counts are exactly those of a linear scan-until-match
    (see the module docstring). Wildcard side-indexes for the unexpected
    queue are built lazily on the first wildcard lookup, so engines that
    never see a wildcard maintain a single bucket per message; live
    wildcard-receive counters let arrivals skip the wildcard posted
    buckets entirely when none are pending.
    """

    __slots__ = ("_po_seq", "_po_seqs", "_po_buckets", "_po_by_req",
                 "_po_dead", "_po_w_src", "_po_w_tag", "_po_w_both",
                 "_ux_seq", "_ux_seqs", "_ux_full", "_ux_by_src",
                 "_ux_by_tag", "_ux_any", "_ux_wild", "_ux_dead")

    def __init__(self, metrics=None, labels: Optional[dict] = None):
        super().__init__(metrics, labels)
        # -- posted-receive queue ------------------------------------------
        self._po_seq = 0
        #: Live sequence numbers in ascending order — the FIFO order of the
        #: queue and the order-statistics structure behind the analytic
        #: scan counts (appends are monotonic, so the list stays sorted).
        self._po_seqs: list[int] = []
        #: (context, dst_addr, source, tag) -> deque of records; wildcard
        #: receives live under their literal ANY_* key, so an incoming
        #: message has at most four candidate buckets.
        self._po_buckets: dict[tuple, deque] = {}
        self._po_by_req: dict[Request, list] = {}
        self._po_dead = 0
        #: Live posted receives per wildcard class; arrivals only consult
        #: a wildcard bucket when its class has live entries.
        self._po_w_src = 0   # ANY_SOURCE, concrete tag
        self._po_w_tag = 0   # concrete source, ANY_TAG
        self._po_w_both = 0  # ANY_SOURCE and ANY_TAG
        # -- unexpected-message queue --------------------------------------
        self._ux_seq = 0
        self._ux_seqs: list[int] = []
        #: Concrete key -> records; the wildcard side-indexes below are
        #: only populated once a wildcard pattern has been looked up.
        self._ux_full: dict[tuple, deque] = {}
        self._ux_by_src: dict[tuple, deque] = {}
        self._ux_by_tag: dict[tuple, deque] = {}
        self._ux_any: dict[tuple, deque] = {}
        self._ux_wild = False
        self._ux_dead = 0

    # -- bucket plumbing ---------------------------------------------------
    def _enable_ux_wild(self) -> None:
        """First wildcard lookup: build the side-indexes from the full
        buckets; they are maintained incrementally from here on."""
        self._ux_wild = True
        live = []
        for bucket in self._ux_full.values():
            live.extend(rec for rec in bucket if rec[_ALIVE])
        live.sort(key=lambda rec: rec[_SEQ])
        for rec in live:
            self._index_ux_wild(rec)

    def _index_ux_wild(self, rec: list) -> None:
        msg = rec[_ITEM]
        meta = msg.meta
        ctx = msg.context_id
        dst = meta.get("dst_addr", msg.dst_rank)
        src = meta.get("src_addr", msg.src_rank)
        for index, key in ((self._ux_by_src, (ctx, dst, src)),
                           (self._ux_by_tag, (ctx, dst, msg.tag)),
                           (self._ux_any, (ctx, dst))):
            bucket = index.get(key)
            if bucket is None:
                index[key] = bucket = deque()
            bucket.append(rec)

    def _find_unexpected(self, context_id: int, source: int, tag: int,
                         dst_addr: int) -> Optional[list]:
        """Earliest live unexpected record matching the pattern."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            return _live_head(self._ux_full.get((context_id, dst_addr,
                                                 source, tag)))
        if not self._ux_wild:
            self._enable_ux_wild()
        if source != ANY_SOURCE:
            bucket = self._ux_by_src.get((context_id, dst_addr, source))
        elif tag != ANY_TAG:
            bucket = self._ux_by_tag.get((context_id, dst_addr, tag))
        else:
            bucket = self._ux_any.get((context_id, dst_addr))
        return _live_head(bucket)

    def _remove_unexpected(self, rec: list) -> None:
        rec[_ALIVE] = False
        seqs = self._ux_seqs
        seqs.pop(bisect_left(seqs, rec[_SEQ]))
        self._ux_dead += 1
        if self._ux_dead > len(seqs) + 64:
            self._compact_unexpected()

    def _compact_unexpected(self) -> None:
        """Rebuild the unexpected buckets without dead records (removals
        are lazy tombstones; this bounds their accumulation)."""
        live = []
        for bucket in self._ux_full.values():
            live.extend(rec for rec in bucket if rec[_ALIVE])
        live.sort(key=lambda rec: rec[_SEQ])
        self._ux_full = {}
        self._ux_by_src = {}
        self._ux_by_tag = {}
        self._ux_any = {}
        self._ux_dead = 0
        for rec in live:
            self._index_unexpected(rec)

    def _index_unexpected(self, rec: list) -> None:
        msg = rec[_ITEM]
        meta = msg.meta
        key = (msg.context_id, meta.get("dst_addr", msg.dst_rank),
               meta.get("src_addr", msg.src_rank), msg.tag)
        bucket = self._ux_full.get(key)
        if bucket is None:
            self._ux_full[key] = bucket = deque()
        bucket.append(rec)
        if self._ux_wild:
            self._index_ux_wild(rec)

    def _find_posted(self, msg: WireMessage) -> Optional[list]:
        """Earliest live posted receive matching a concrete message: the
        minimum-seq live head over the (up to four) candidate buckets."""
        meta = msg.meta
        ctx = msg.context_id
        dst = meta.get("dst_addr", msg.dst_rank)
        src = meta.get("src_addr", msg.src_rank)
        tag = msg.tag
        buckets = self._po_buckets
        best = _live_head(buckets.get((ctx, dst, src, tag)))
        if self._po_w_tag:
            rec = _live_head(buckets.get((ctx, dst, src, ANY_TAG)))
            if rec is not None and (best is None or rec[_SEQ] < best[_SEQ]):
                best = rec
        if self._po_w_src:
            rec = _live_head(buckets.get((ctx, dst, ANY_SOURCE, tag)))
            if rec is not None and (best is None or rec[_SEQ] < best[_SEQ]):
                best = rec
        if self._po_w_both:
            rec = _live_head(buckets.get((ctx, dst, ANY_SOURCE, ANY_TAG)))
            if rec is not None and (best is None or rec[_SEQ] < best[_SEQ]):
                best = rec
        return best

    def _uncount_posted(self, entry: PostedRecv) -> None:
        if entry.source == ANY_SOURCE:
            if entry.tag == ANY_TAG:
                self._po_w_both -= 1
            else:
                self._po_w_src -= 1
        elif entry.tag == ANY_TAG:
            self._po_w_tag -= 1

    def _remove_posted(self, rec: list) -> None:
        rec[_ALIVE] = False
        seqs = self._po_seqs
        seqs.pop(bisect_left(seqs, rec[_SEQ]))
        entry = rec[_ITEM]
        self._uncount_posted(entry)
        if entry.req is not None:
            self._po_by_req.pop(entry.req, None)
        self._po_dead += 1
        if self._po_dead > len(seqs) + 64:
            self._compact_posted()

    def _compact_posted(self) -> None:
        buckets = {}
        for key, bucket in self._po_buckets.items():
            live = deque(rec for rec in bucket if rec[_ALIVE])
            if live:
                buckets[key] = live
        self._po_buckets = buckets
        self._po_dead = 0

    # -- receive side ------------------------------------------------------
    def post_recv(self, entry: PostedRecv) -> tuple[Optional[WireMessage], int]:
        """Try to match ``entry`` against the unexpected queue.

        Returns ``(message, scanned)``: the matched (and removed) message
        or None — in which case the receive has been appended to the posted
        queue — plus the number of queue elements the linear scan would
        have visited (for the cost model).
        """
        rec = self._find_unexpected(entry.context_id, entry.source,
                                    entry.tag, entry.dst_addr)
        if rec is not None:
            scanned = bisect_right(self._ux_seqs, rec[_SEQ])
            self._remove_unexpected(rec)
            self.total_scans += scanned
            if self._h_scan_unexpected is not None:
                self._h_scan_unexpected.observe(scanned)
                self._h_unexpected_depth.observe(len(self._ux_seqs))
            return rec[_ITEM], scanned
        scanned = len(self._ux_seqs)
        entry.seq = seq = self._po_seq
        self._po_seq = seq + 1
        posted_rec = [seq, entry, True]
        key = (entry.context_id, entry.dst_addr, entry.source, entry.tag)
        bucket = self._po_buckets.get(key)
        if bucket is None:
            self._po_buckets[key] = bucket = deque()
        bucket.append(posted_rec)
        self._po_seqs.append(seq)
        if entry.source == ANY_SOURCE:
            if entry.tag == ANY_TAG:
                self._po_w_both += 1
            else:
                self._po_w_src += 1
        elif entry.tag == ANY_TAG:
            self._po_w_tag += 1
        if entry.req is not None:
            self._po_by_req[entry.req] = posted_rec
        depth = len(self._po_seqs)
        if depth > self.max_posted_depth:
            self.max_posted_depth = depth
        self.total_scans += scanned
        if self._h_scan_unexpected is not None:
            self._h_scan_unexpected.observe(scanned)
            self._h_posted_depth.observe(depth)
        return None, scanned

    def probe(self, context_id: int, source: int, tag: int,
              dst_addr: int) -> tuple[Optional[WireMessage], int]:
        """Non-destructive unexpected-queue search (MPI_Iprobe)."""
        rec = self._find_unexpected(context_id, source, tag, dst_addr)
        if rec is not None:
            scanned = bisect_right(self._ux_seqs, rec[_SEQ])
            self.total_scans += scanned
            return rec[_ITEM], scanned
        scanned = len(self._ux_seqs)
        self.total_scans += scanned
        return None, scanned

    def claim_unexpected(self, context_id: int, source: int, tag: int,
                         dst_addr: int) -> tuple[Optional[WireMessage], int]:
        """Destructive probe (MPI_Improbe): atomically remove and return
        the earliest matching unexpected message."""
        rec = self._find_unexpected(context_id, source, tag, dst_addr)
        if rec is not None:
            scanned = bisect_right(self._ux_seqs, rec[_SEQ])
            self._remove_unexpected(rec)
            self.total_scans += scanned
            return rec[_ITEM], scanned
        scanned = len(self._ux_seqs)
        self.total_scans += scanned
        return None, scanned

    def scan_cost_unexpected(self, context_id: int, source: int, tag: int,
                             dst_addr: int) -> int:
        """Elements a matching scan of the unexpected queue would visit
        (scan-until-match, or the whole queue on a miss) — used by the
        cost model without mutating the queues."""
        rec = self._find_unexpected(context_id, source, tag, dst_addr)
        if rec is not None:
            return bisect_right(self._ux_seqs, rec[_SEQ])
        return len(self._ux_seqs)

    def scan_cost_posted(self, msg: WireMessage) -> int:
        """Elements a matching scan of the posted queue would visit."""
        rec = self._find_posted(msg)
        if rec is not None:
            return bisect_right(self._po_seqs, rec[_SEQ])
        return len(self._po_seqs)

    # -- arrival side --------------------------------------------------------
    def incoming(self, msg: WireMessage) -> tuple[Optional[PostedRecv], int]:
        """Try to match an arriving message against the posted queue.

        Returns ``(posted_recv, scanned)``; when no receive matches, the
        message has been appended to the unexpected queue.
        """
        rec = self._find_posted(msg)
        if rec is not None:
            scanned = bisect_right(self._po_seqs, rec[_SEQ])
            self._remove_posted(rec)
            self.total_scans += scanned
            if self._h_scan_posted is not None:
                self._h_scan_posted.observe(scanned)
                self._h_posted_depth.observe(len(self._po_seqs))
            return rec[_ITEM], scanned
        scanned = len(self._po_seqs)
        seq = self._ux_seq
        self._ux_seq = seq + 1
        ux_rec = [seq, msg, True]
        self._index_unexpected(ux_rec)
        self._ux_seqs.append(seq)
        depth = len(self._ux_seqs)
        if depth > self.max_unexpected_depth:
            self.max_unexpected_depth = depth
        self.total_scans += scanned
        if self._h_scan_posted is not None:
            self._h_scan_posted.observe(scanned)
            self._h_unexpected_depth.observe(depth)
        return None, scanned

    def incoming_bulk(self, msgs: list[WireMessage]
                      ) -> list[tuple[Optional[PostedRecv], int]]:
        """Bulk match-poll: match a burst of arrivals in one call.

        Results, counters and histograms are identical to
        ``[self.incoming(m) for m in msgs]``. The common flood case —
        no receive posted, so every message parks unexpected with a
        zero-length scan — is fast-pathed: the burst's sequence numbers
        are appended to the order-statistics array in one ``extend``
        instead of one append (plus bisect bookkeeping) per message.
        """
        if self._po_seqs or self._h_scan_posted is not None or len(msgs) < 2:
            return [self.incoming(m) for m in msgs]
        seq = self._ux_seq
        for msg in msgs:
            self._index_unexpected([seq, msg, True])
            seq += 1
        self._ux_seq = seq
        self._ux_seqs.extend(range(seq - len(msgs), seq))
        depth = len(self._ux_seqs)
        if depth > self.max_unexpected_depth:
            self.max_unexpected_depth = depth
        return [(None, 0)] * len(msgs)

    # -- introspection ---------------------------------------------------
    @property
    def posted_depth(self) -> int:
        return len(self._po_seqs)

    @property
    def unexpected_depth(self) -> int:
        return len(self._ux_seqs)

    def cancel_posted(self, req: Request) -> bool:
        """Remove a posted receive by request (MPI_Cancel, simplified).

        O(1) through the request index — ``del queue[i]`` on a deque is
        O(n) and cancel storms are exactly when queues are deep."""
        rec = self._po_by_req.pop(req, None)
        if rec is None or not rec[_ALIVE]:
            return False
        rec[_ALIVE] = False
        seqs = self._po_seqs
        seqs.pop(bisect_left(seqs, rec[_SEQ]))
        self._uncount_posted(rec[_ITEM])
        self._po_dead += 1
        if self._po_dead > len(seqs) + 64:
            self._compact_posted()
        return True


class LinearMatchingEngine(_EngineBase):
    """The reference O(n) engine: plain deques and scan-until-match.

    Host-side cost equals the modelled cost — every lookup really walks
    the queue. Kept as the behavioural reference for the indexed engine
    (the equivalence property tests drive both through identical
    interleavings) and for host-cost ablations.
    """

    __slots__ = ("posted", "unexpected", "_po_seq")

    def __init__(self, metrics=None, labels: Optional[dict] = None):
        super().__init__(metrics, labels)
        self.posted: deque[PostedRecv] = deque()
        self.unexpected: deque[WireMessage] = deque()
        self._po_seq = 0

    # -- receive side ------------------------------------------------------
    def post_recv(self, entry: PostedRecv) -> tuple[Optional[WireMessage], int]:
        """Scan unexpected linearly for a match, else append to posted."""
        scanned = 0
        for i, msg in enumerate(self.unexpected):
            scanned += 1
            if entry.matches(msg):
                del self.unexpected[i]
                self.total_scans += scanned
                if self._h_scan_unexpected is not None:
                    self._h_scan_unexpected.observe(scanned)
                    self._h_unexpected_depth.observe(len(self.unexpected))
                return msg, scanned
        entry.seq = self._po_seq
        self._po_seq += 1
        self.posted.append(entry)
        self.max_posted_depth = max(self.max_posted_depth, len(self.posted))
        self.total_scans += scanned
        if self._h_scan_unexpected is not None:
            self._h_scan_unexpected.observe(scanned)
            self._h_posted_depth.observe(len(self.posted))
        return None, scanned

    def probe(self, context_id: int, source: int, tag: int,
              dst_addr: int) -> tuple[Optional[WireMessage], int]:
        """Non-destructive linear scan of the unexpected queue."""
        scanned = 0
        for msg in self.unexpected:
            scanned += 1
            if key_matches(context_id, source, tag, dst_addr, msg):
                self.total_scans += scanned
                return msg, scanned
        self.total_scans += scanned
        return None, scanned

    def claim_unexpected(self, context_id: int, source: int, tag: int,
                         dst_addr: int) -> tuple[Optional[WireMessage], int]:
        """Linearly find, remove and return a matching unexpected message."""
        scanned = 0
        for i, msg in enumerate(self.unexpected):
            scanned += 1
            if key_matches(context_id, source, tag, dst_addr, msg):
                del self.unexpected[i]
                self.total_scans += scanned
                return msg, scanned
        self.total_scans += scanned
        return None, scanned

    def scan_cost_unexpected(self, context_id: int, source: int, tag: int,
                             dst_addr: int) -> int:
        """Entries a matching scan of the unexpected queue would visit."""
        scanned = 0
        for msg in self.unexpected:
            scanned += 1
            if key_matches(context_id, source, tag, dst_addr, msg):
                return scanned
        return scanned

    def scan_cost_posted(self, msg: WireMessage) -> int:
        """Entries a matching scan of the posted queue would visit."""
        scanned = 0
        for entry in self.posted:
            scanned += 1
            if entry.matches(msg):
                return scanned
        return scanned

    # -- arrival side --------------------------------------------------------
    def incoming(self, msg: WireMessage) -> tuple[Optional[PostedRecv], int]:
        """Linearly match an arrival against posted, else enqueue unexpected."""
        scanned = 0
        for i, entry in enumerate(self.posted):
            scanned += 1
            if entry.matches(msg):
                del self.posted[i]
                self.total_scans += scanned
                if self._h_scan_posted is not None:
                    self._h_scan_posted.observe(scanned)
                    self._h_posted_depth.observe(len(self.posted))
                return entry, scanned
        self.unexpected.append(msg)
        self.max_unexpected_depth = max(self.max_unexpected_depth,
                                        len(self.unexpected))
        self.total_scans += scanned
        if self._h_scan_posted is not None:
            self._h_scan_posted.observe(scanned)
            self._h_unexpected_depth.observe(len(self.unexpected))
        return None, scanned

    def incoming_bulk(self, msgs: list[WireMessage]
                      ) -> list[tuple[Optional[PostedRecv], int]]:
        """Bulk match-poll, reference semantics: scalar calls in order."""
        return [self.incoming(m) for m in msgs]

    # -- introspection ---------------------------------------------------
    @property
    def posted_depth(self) -> int:
        return len(self.posted)

    @property
    def unexpected_depth(self) -> int:
        return len(self.unexpected)

    def cancel_posted(self, req: Request) -> bool:
        """Linear-scan removal of the posted entry for ``req``."""
        for i, entry in enumerate(self.posted):
            if entry.req is req:
                del self.posted[i]
                return True
        return False
