"""The message-matching engine.

Each VCI owns one matching engine (a posted-receive queue and an
unexpected-message queue); this per-channel separation is exactly what
gives the new MPI libraries their parallel matching ("a distinct matching
engine per communication channel", Section II-C of the paper) and what
makes matching on a *shared* channel an O(n) serial bottleneck.

Matching predicate: a receive posted with ``(context, source, tag,
dst_addr)`` matches an incoming message when the context ids and the
destination addresses are equal, the source matches (or the receive used
``ANY_SOURCE``), and the tag matches (or ``ANY_TAG``). ``dst_addr`` is the
receiver's address *within the communicator* — for ordinary communicators
this is simply the process's rank; for endpoints communicators it is the
endpoint rank, which is how endpoints separate matching between threads
that share a process (Lesson 11).

Queues are FIFO: an incoming message matches the earliest matching posted
receive and a new receive matches the earliest matching unexpected message,
which implements MPI's non-overtaking matching order. The
``allow_overtaking`` relaxation does not change the scan itself — it
changes which *channels* operations may be spread over (see
:mod:`repro.mpi.vci`), because once traffic is spread over independent
channels arrival order between them is unconstrained.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..netsim.message import WireMessage
from .request import Request

__all__ = ["ANY_SOURCE", "ANY_TAG", "PostedRecv", "MatchingEngine"]

#: Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1

_post_seq = itertools.count()


@dataclass
class PostedRecv:
    """One posted receive awaiting a message."""

    req: Request
    buf: np.ndarray
    count: int
    context_id: int
    source: int
    tag: int
    dst_addr: int
    seq: int = field(default_factory=lambda: next(_post_seq))

    def matches(self, msg: WireMessage) -> bool:
        return (msg.context_id == self.context_id
                and msg.meta.get("dst_addr", msg.dst_rank) == self.dst_addr
                and (self.source == ANY_SOURCE
                     or self.source == msg.meta.get("src_addr", msg.src_rank))
                and (self.tag == ANY_TAG or self.tag == msg.tag))


class MatchingEngine:
    """Posted-receive and unexpected-message queues for one channel.

    When constructed with a :class:`repro.obs.MetricsRegistry`, every
    match records its scan length and the queue depth it left behind —
    the per-match observability of the O(n) serial-matching cost
    (Section II-C); ``labels`` (typically ``rank``/``vci``) tag the
    series.
    """

    __slots__ = ("posted", "unexpected", "max_posted_depth",
                 "max_unexpected_depth", "total_scans",
                 "_h_scan_posted", "_h_scan_unexpected",
                 "_h_posted_depth", "_h_unexpected_depth")

    def __init__(self, metrics=None, labels: Optional[dict] = None):
        self.posted: deque[PostedRecv] = deque()
        self.unexpected: deque[WireMessage] = deque()
        self.max_posted_depth = 0
        self.max_unexpected_depth = 0
        #: Total queue elements scanned over the engine's lifetime — the
        #: O(n) matching-work metric.
        self.total_scans = 0
        if metrics is not None and metrics.enabled:
            from ..obs.metrics import DEPTH_BUCKETS
            labels = labels or {}
            self._h_scan_posted = metrics.histogram(
                "match.scan", bounds=DEPTH_BUCKETS, queue="posted", **labels)
            self._h_scan_unexpected = metrics.histogram(
                "match.scan", bounds=DEPTH_BUCKETS, queue="unexpected",
                **labels)
            self._h_posted_depth = metrics.histogram(
                "match.posted_depth", bounds=DEPTH_BUCKETS, **labels)
            self._h_unexpected_depth = metrics.histogram(
                "match.unexpected_depth", bounds=DEPTH_BUCKETS, **labels)
        else:
            self._h_scan_posted = None
            self._h_scan_unexpected = None
            self._h_posted_depth = None
            self._h_unexpected_depth = None

    # -- receive side ------------------------------------------------------
    def post_recv(self, entry: PostedRecv) -> tuple[Optional[WireMessage], int]:
        """Try to match ``entry`` against the unexpected queue.

        Returns ``(message, scanned)``: the matched (and removed) message
        or None — in which case the receive has been appended to the posted
        queue — plus the number of queue elements scanned (for the cost
        model).
        """
        scanned = 0
        for i, msg in enumerate(self.unexpected):
            scanned += 1
            if entry.matches(msg):
                del self.unexpected[i]
                self.total_scans += scanned
                if self._h_scan_unexpected is not None:
                    self._h_scan_unexpected.observe(scanned)
                    self._h_unexpected_depth.observe(len(self.unexpected))
                return msg, scanned
        self.posted.append(entry)
        self.max_posted_depth = max(self.max_posted_depth, len(self.posted))
        self.total_scans += scanned
        if self._h_scan_unexpected is not None:
            self._h_scan_unexpected.observe(scanned)
            self._h_posted_depth.observe(len(self.posted))
        return None, scanned

    def probe(self, context_id: int, source: int, tag: int,
              dst_addr: int) -> tuple[Optional[WireMessage], int]:
        """Non-destructive unexpected-queue search (MPI_Iprobe)."""
        probe_entry = PostedRecv(req=None, buf=None, count=0,
                                 context_id=context_id, source=source,
                                 tag=tag, dst_addr=dst_addr)
        scanned = 0
        for msg in self.unexpected:
            scanned += 1
            if probe_entry.matches(msg):
                self.total_scans += scanned
                return msg, scanned
        self.total_scans += scanned
        return None, scanned

    def scan_cost_unexpected(self, context_id: int, source: int, tag: int,
                             dst_addr: int) -> int:
        """Elements a matching scan of the unexpected queue would visit
        (scan-until-match, or the whole queue on a miss) — used by the
        cost model without mutating the queues."""
        probe_entry = PostedRecv(req=None, buf=None, count=0,
                                 context_id=context_id, source=source,
                                 tag=tag, dst_addr=dst_addr)
        scanned = 0
        for msg in self.unexpected:
            scanned += 1
            if probe_entry.matches(msg):
                return scanned
        return scanned

    def scan_cost_posted(self, msg: WireMessage) -> int:
        """Elements a matching scan of the posted queue would visit."""
        scanned = 0
        for entry in self.posted:
            scanned += 1
            if entry.matches(msg):
                return scanned
        return scanned

    # -- arrival side --------------------------------------------------------
    def incoming(self, msg: WireMessage) -> tuple[Optional[PostedRecv], int]:
        """Try to match an arriving message against the posted queue.

        Returns ``(posted_recv, scanned)``; when no receive matches, the
        message has been appended to the unexpected queue.
        """
        scanned = 0
        for i, entry in enumerate(self.posted):
            scanned += 1
            if entry.matches(msg):
                del self.posted[i]
                self.total_scans += scanned
                if self._h_scan_posted is not None:
                    self._h_scan_posted.observe(scanned)
                    self._h_posted_depth.observe(len(self.posted))
                return entry, scanned
        self.unexpected.append(msg)
        self.max_unexpected_depth = max(self.max_unexpected_depth,
                                        len(self.unexpected))
        self.total_scans += scanned
        if self._h_scan_posted is not None:
            self._h_scan_posted.observe(scanned)
            self._h_unexpected_depth.observe(len(self.unexpected))
        return None, scanned

    # -- introspection ---------------------------------------------------
    @property
    def posted_depth(self) -> int:
        return len(self.posted)

    @property
    def unexpected_depth(self) -> int:
        return len(self.unexpected)

    def cancel_posted(self, req: Request) -> bool:
        """Remove a posted receive by request (MPI_Cancel, simplified)."""
        for i, entry in enumerate(self.posted):
            if entry.req is req:
                del self.posted[i]
                return True
        return False
