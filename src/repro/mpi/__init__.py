"""The simulated MPI library (MPICH-flavoured, VCI-enabled).

Implements the three designs the paper compares:

- existing mechanisms: communicators (:class:`~repro.mpi.comm.Communicator`
  with Dup), tags + Info hints (:mod:`repro.mpi.info`), RMA windows
  (:mod:`repro.mpi.rma`);
- user-visible endpoints (:mod:`repro.mpi.endpoints`);
- partitioned communication (:mod:`repro.mpi.partitioned`).
"""

from .comm import Communicator, MatchedMessage
from .datatypes import (
    BYTE,
    COMPLEX,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Datatype,
    VectorType,
)
from .info import CommHints, Info, WindowHints, parse_comm_hints, parse_window_hints
from .library import MpiLibrary
from .matching import ANY_SOURCE, ANY_TAG, MatchingEngine, PostedRecv
from .persistent import PersistentRequest, recv_init, send_init
from .request import Request, Status, testall, testany, waitall, waitany
from .vci import (
    TAG_BITS,
    TAG_UB,
    EndpointVciMap,
    SingleVciMap,
    TagBitsVciMap,
    Vci,
    VciPool,
    mix_hash,
)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BYTE", "COMPLEX", "CommHints", "Communicator",
    "DOUBLE", "Datatype", "EndpointVciMap", "FLOAT", "INT", "Info", "LONG",
    "MatchedMessage", "MatchingEngine", "MpiLibrary", "PersistentRequest",
    "PostedRecv", "Request", "SingleVciMap", "Status", "TAG_BITS", "TAG_UB",
    "TagBitsVciMap", "Vci", "VciPool", "VectorType", "WindowHints",
    "mix_hash", "parse_comm_hints", "parse_window_hints", "recv_init",
    "send_init", "testall", "testany", "waitall", "waitany",
]
