"""MPI datatypes and buffer handling.

Buffers are numpy arrays; a :class:`Datatype` pairs a numpy dtype with its
wire size. Payloads are *actually copied* through the simulated network so
tests can assert data correctness, mirroring mpi4py's buffer-protocol
convention (upper-case communication methods take array buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MpiUsageError

__all__ = [
    "Datatype",
    "VectorType",
    "BYTE",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "from_numpy",
    "check_buffer",
    "nbytes",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype."""

    name: str
    np_dtype: np.dtype

    @property
    def size(self) -> int:
        """Size in bytes of one element."""
        return self.np_dtype.itemsize

    def empty(self, count: int) -> np.ndarray:
        return np.zeros(count, dtype=self.np_dtype)

    def zeros(self, count: int) -> np.ndarray:
        return np.zeros(count, dtype=self.np_dtype)

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


BYTE = Datatype("BYTE", np.dtype(np.uint8))
INT = Datatype("INT", np.dtype(np.int32))
LONG = Datatype("LONG", np.dtype(np.int64))
FLOAT = Datatype("FLOAT", np.dtype(np.float32))
DOUBLE = Datatype("DOUBLE", np.dtype(np.float64))
COMPLEX = Datatype("COMPLEX", np.dtype(np.complex128))

_BY_NP = {d.np_dtype: d for d in (BYTE, INT, LONG, FLOAT, DOUBLE, COMPLEX)}


def from_numpy(dtype: np.dtype) -> Datatype:
    """Map a numpy dtype to the corresponding MPI datatype."""
    dtype = np.dtype(dtype)
    try:
        return _BY_NP[dtype]
    except KeyError:
        raise MpiUsageError(f"no MPI datatype for numpy dtype {dtype}") from None


def check_buffer(buf, count: int | None = None) -> np.ndarray:
    """Validate a communication buffer and return it as a 1-D ndarray view.

    Accepts any C-contiguous numpy array; ``count`` (elements) must not
    exceed the buffer length.
    """
    if not isinstance(buf, np.ndarray):
        raise MpiUsageError(
            f"communication buffers must be numpy arrays, got {type(buf).__name__}")
    if not buf.flags.c_contiguous:
        raise MpiUsageError("communication buffers must be C-contiguous")
    flat = buf if buf.ndim == 1 else buf.reshape(-1)
    if count is not None:
        if count < 0:
            raise MpiUsageError(f"negative element count: {count}")
        if count > flat.size:
            raise MpiUsageError(
                f"count {count} exceeds buffer length {flat.size}")
    return flat


def nbytes(buf: np.ndarray, count: int | None = None) -> int:
    """Wire size in bytes of ``count`` elements of ``buf`` (all if None)."""
    flat = check_buffer(buf, count)
    n = flat.size if count is None else count
    return n * flat.dtype.itemsize


@dataclass(frozen=True)
class VectorType:
    """A strided derived datatype (MPI_Type_vector).

    ``count`` blocks of ``blocklength`` elements, with consecutive block
    starts ``stride`` elements apart — the classic layout of a non-unit
    stencil halo (e.g. a column of a row-major 2D patch). ``pack`` gathers
    the described elements into a contiguous buffer for the wire;
    ``unpack`` scatters a received buffer back.
    """

    count: int
    blocklength: int
    stride: int
    base: Datatype = DOUBLE

    def __post_init__(self):
        if self.count < 0 or self.blocklength < 0:
            raise MpiUsageError("vector count/blocklength must be >= 0")
        if self.stride < self.blocklength:
            raise MpiUsageError(
                f"vector stride {self.stride} overlaps blocks of length "
                f"{self.blocklength}")

    @property
    def elements(self) -> int:
        """Elements transferred per instance of the type."""
        return self.count * self.blocklength

    @property
    def extent(self) -> int:
        """Elements spanned in the origin buffer (incl. gaps)."""
        if self.count == 0:
            return 0
        return (self.count - 1) * self.stride + self.blocklength

    @property
    def size(self) -> int:
        """Wire bytes per instance."""
        return self.elements * self.base.size

    def _index(self, offset: int) -> np.ndarray:
        starts = offset + self.stride * np.arange(self.count)
        return (starts[:, None] + np.arange(self.blocklength)).reshape(-1)

    def pack(self, buf: np.ndarray, offset: int = 0) -> np.ndarray:
        """Gather the described elements into a fresh contiguous array."""
        flat = check_buffer(buf)
        if offset < 0 or offset + self.extent > flat.size:
            raise MpiUsageError(
                f"vector extent [{offset}, {offset + self.extent}) exceeds "
                f"buffer of {flat.size} elements")
        if self.count == 0:
            return flat[:0].copy()
        return flat[self._index(offset)].copy()

    def unpack(self, buf: np.ndarray, data: np.ndarray,
               offset: int = 0) -> None:
        """Scatter ``data`` (contiguous) into the described layout."""
        flat = check_buffer(buf)
        src = check_buffer(data)
        if src.size != self.elements:
            raise MpiUsageError(
                f"vector unpack needs {self.elements} elements, "
                f"got {src.size}")
        if offset < 0 or offset + self.extent > flat.size:
            raise MpiUsageError(
                f"vector extent [{offset}, {offset + self.extent}) exceeds "
                f"buffer of {flat.size} elements")
        if self.count:
            flat[self._index(offset)] = src
