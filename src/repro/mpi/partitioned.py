"""MPI 4.0 partitioned communication (Psend_init / Precv_init / Pready /
Parrived), Section II-C of the paper.

Semantics modelled faithfully:

- the operation is **persistent**: ``psend_init``/``precv_init`` are local;
  the first ``start`` performs a one-time matching handshake (PART_INIT /
  PART_INIT_ACK) after which partitions flow without any matching — the
  O(1) matching cost that motivated the interface;
- partitions may be driven by different threads, and may map to distinct
  VCIs (``mpich_part_num_vcis`` hint), so they can exploit network
  parallelism;
- BUT all threads share the *single* MPI request: every ``pready`` updates
  shared completion state under the request's lock. This is the
  fundamental contention/synchronization point of Lesson 14 that the other
  two designs do not have;
- partitioned receives cannot use wildcards (Lesson 15): ``precv_init``
  rejects ``ANY_SOURCE``/``ANY_TAG``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ..errors import MpiUsageError
from ..netsim.message import MessageKind, WireMessage
from ..sim.core import Event
from ..sim.sync import Lock
from .datatypes import check_buffer
from .info import Info
from .matching import ANY_SOURCE, ANY_TAG, PostedRecv
from .request import Request

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Communicator
    from .library import MpiLibrary

__all__ = ["PsendRequest", "PrecvRequest", "psend_init", "precv_init",
           "startall", "waitall_partitioned"]


def _ensure_handlers(lib: "MpiLibrary") -> None:
    """Install the partitioned protocol handlers on first use."""
    if MessageKind.PART_INIT in lib.handlers:
        return
    if not hasattr(lib, "part_recv_channels"):
        lib.part_recv_channels = {}
        lib.part_send_channels = {}
        lib.part_channel_seq = 0
    lib.handlers[MessageKind.PART_INIT] = lambda m: _on_part_init(lib, m)
    lib.handlers[MessageKind.PART_INIT_ACK] = lambda m: _on_part_init_ack(lib, m)
    lib.handlers[MessageKind.PARTITION] = lambda m: _on_partition(lib, m)


def _alloc_channel(lib: "MpiLibrary") -> int:
    """Allocate the next per-library channel id. Channel ids travel in
    wire-message meta, which lands in traces and state digests — so
    they must be deterministic across runs (``id(self)`` is not)."""
    chan = lib.part_channel_seq
    lib.part_channel_seq += 1
    return chan


class _PartitionedOp:
    """State shared by send- and receive-side partitioned operations."""

    def __init__(self, comm: "Communicator", buf: np.ndarray,
                 partitions: int, count: int, peer: int, tag: int,
                 info: Optional[Info]):
        if partitions < 1:
            raise MpiUsageError(f"partitions must be >= 1, got {partitions}")
        if count < 0:
            raise MpiUsageError(f"count must be >= 0, got {count}")
        self.comm = comm
        self.lib = comm.lib
        self.sim = comm.sim
        self.flat = check_buffer(buf, partitions * count)
        self.partitions = partitions
        self.count = count
        self.peer = peer
        self.tag = tag
        #: Number of VCIs that partitions are spread over.
        self.num_vcis = 1
        if info is not None and "mpich_part_num_vcis" in info:
            self.num_vcis = max(1, int(info.get("mpich_part_num_vcis")))
        self.base_vci = comm.vci_map.send_local(comm.rank, 0, tag) \
            if peer != ANY_SOURCE else 0
        #: The shared-request lock: the Lesson 14 contention point.
        self.shared_lock = Lock(self.sim, name="partreq.lock")
        self.active = False
        self.cycle = -1
        self.request: Optional[Request] = None
        #: Deterministic channel id, allocated when the op first touches
        #: the wire (handshake / init post). Never ``id(self)``: channel
        #: ids appear in message meta and hence in state digests.
        self.channel_id: Optional[int] = None

    @property
    def part_context_id(self) -> int:
        """Partitioned ops match in their own context stream."""
        return self.comm.context_id + 2

    def vci_index_for_partition(self, i: int) -> int:
        if self.num_vcis <= 1:
            return self.base_vci
        return (self.base_vci + i % self.num_vcis) \
            % self.lib.vci_pool.max_vcis

    def _check_active(self, what: str) -> bool:
        """True iff the operation has an active cycle.

        Without one this is a protocol error: recorded as CHK105 when the
        checker is on (warn mode lets the caller take a safe no-op path),
        otherwise the historical MpiUsageError.
        """
        if self.active:
            return True
        chk = self.sim.checker
        if chk is not None:
            chk.violation(
                "CHK105",
                f"{what} on an inactive partitioned request (call start() "
                f"first)",
                rank=self.lib.rank, tag=self.tag, peer=self.peer)
            return False
        raise MpiUsageError(f"{what} on an inactive partitioned request "
                            "(call start() first)")

    def wait(self) -> Generator[Event, Any, None]:
        """Complete the active cycle (MPI_Wait on the partitioned request).

        After wait() the operation is inactive again and may be
        re-started — persistence in action.
        """
        if not self._check_active("wait"):
            return
        yield from self.request.wait()
        self.active = False


class PsendRequest(_PartitionedOp):
    """Send side of a partitioned operation."""

    def __init__(self, comm, buf, partitions, count, dest, tag, info):
        super().__init__(comm, buf, partitions, count, dest, tag, info)
        self.channel_ready = False
        self.handshake_sent = False
        self.remote_channel: Optional[int] = None
        self._ready: list[bool] = []
        self._departed = 0
        #: Partitions made ready before the handshake completed.
        self._deferred: list[int] = []

    def start(self) -> Generator[Event, Any, None]:
        """Activate the operation for one cycle."""
        if self.active:
            raise MpiUsageError("start on an already-active partitioned send")
        self.active = True
        self.cycle += 1
        self.request = Request(self.sim, "psend")
        self._ready = [False] * self.partitions
        self._departed = 0
        if not self.handshake_sent:
            self.handshake_sent = True
            yield from self._send_handshake()
        else:
            yield self.sim.timeout(self.lib.cpu.send_post)

    def _send_handshake(self) -> Generator[Event, Any, None]:
        _ensure_handlers(self.lib)
        lib, comm = self.lib, self.comm
        self.channel_id = _alloc_channel(lib)
        yield self.sim.timeout(lib.cpu.send_post)
        vci = lib.vci_pool.get(self.base_vci)
        dst_world = comm.group[self.peer]
        dst_proc = lib.world.proc(dst_world)
        msg = WireMessage(
            kind=MessageKind.PART_INIT,
            src_node=lib.node.node_id, dst_node=dst_proc.node.node_id,
            src_rank=lib.rank, dst_rank=dst_world,
            context_id=self.part_context_id, tag=self.tag, size=0,
            src_vci=vci.index,
            dst_vci=comm.vci_map.send_remote(comm.rank, self.peer, self.tag)
            % lib.vci_pool.max_vcis,
            meta={"src_addr": comm.rank, "dst_addr": self.peer,
                  "channel": self.channel_id, "partitions": self.partitions,
                  "bytes_per_part": self.count * self.flat.dtype.itemsize})
        lib.part_send_channels[self.channel_id] = self
        yield from lib.issue_from_thread(vci, msg)

    def pready(self, i: int) -> Generator[Event, Any, None]:
        """Mark partition ``i`` ready (MPI_Pready) — callable from any
        thread. Contends on the shared request lock."""
        if not self._check_active("pready"):
            return
        if not 0 <= i < self.partitions:
            raise MpiUsageError(f"partition {i} out of range")
        lib = self.lib
        yield self.sim.timeout(lib.cpu.pready)
        # --- shared-request critical section (Lesson 14) ---
        was_contended = self.shared_lock.locked
        yield from self.shared_lock.acquire()
        cost = lib.cpu.lock_acquire \
            + (lib.cpu.lock_handoff if was_contended else 0.0)
        yield self.sim.timeout(cost)
        if self._ready[i]:
            self.shared_lock.release()
            chk = self.sim.checker
            if chk is not None:
                # Warn mode: the duplicate pready becomes a no-op (the
                # partition is already on its way).
                chk.violation(
                    "CHK106",
                    f"partition {i} marked ready twice in cycle "
                    f"{self.cycle}",
                    rank=self.lib.rank, part=i, tag=self.tag)
                return
            raise MpiUsageError(f"partition {i} marked ready twice")
        self._ready[i] = True
        deferred = not self.channel_ready
        if deferred:
            self._deferred.append(i)
        self.shared_lock.release()
        # --- issue outside the request lock: partitions are independent
        #     on the wire ---
        if not deferred:
            yield from self._issue_partition_from_thread(i)

    def pready_range(self, lo: int, hi: int) -> Generator[Event, Any, None]:
        """Mark partitions ``lo..hi`` (inclusive) ready (MPI_Pready_range)."""
        if lo > hi:
            raise MpiUsageError(f"bad partition range [{lo}, {hi}]")
        for i in range(lo, hi + 1):
            yield from self.pready(i)

    def pready_list(self, parts: list[int]) -> Generator[Event, Any, None]:
        """Mark a list of partitions ready (MPI_Pready_list)."""
        for i in parts:
            yield from self.pready(i)

    def _partition_msg(self, i: int, vci_index: int) -> WireMessage:
        comm, lib = self.comm, self.lib
        lo = i * self.count
        payload = self.flat[lo:lo + self.count].copy()
        dst_world = comm.group[self.peer]
        dst_proc = lib.world.proc(dst_world)
        return WireMessage(
            kind=MessageKind.PARTITION,
            src_node=lib.node.node_id, dst_node=dst_proc.node.node_id,
            src_rank=lib.rank, dst_rank=dst_world,
            context_id=self.part_context_id, tag=self.tag,
            size=payload.nbytes, payload=payload,
            src_vci=vci_index, dst_vci=0,
            meta={"src_addr": comm.rank, "dst_addr": self.peer,
                  "channel": self.remote_channel, "part": i,
                  "cycle": self.cycle})

    def _issue_partition_from_thread(self, i: int) -> Generator:
        vci = self.lib.vci_pool.get(self.vci_index_for_partition(i))
        msg = self._partition_msg(i, vci.index)
        depart = yield from self.lib.issue_from_thread(vci, msg)
        self._track_departure(depart)

    def _issue_partition_async(self, i: int) -> None:
        vci = self.lib.vci_pool.get(self.vci_index_for_partition(i))
        msg = self._partition_msg(i, vci.index)
        depart = self.lib.issue_async(vci, msg)
        self._track_departure(depart)

    def _track_departure(self, depart: float) -> None:
        done = Event(self.sim)
        done._triggered = True
        self.sim._enqueue(done, max(0.0, depart - self.sim.now), priority=1)
        done.add_callback(self._on_departed)

    def _on_departed(self, _event: Event) -> None:
        self._departed += 1
        if self._departed == self.partitions:
            self.request.complete(source=self.peer, tag=self.tag,
                                  count=self.partitions * self.count)

    def _on_channel_ready(self, remote_channel: int) -> None:
        self.channel_ready = True
        self.remote_channel = remote_channel
        deferred, self._deferred = self._deferred, []
        # Partitions marked ready before the channel handshake flush as
        # one burst per VCI run: contiguous runs preserve the scalar
        # issue order (and therefore event order and timings) while the
        # NIC injector chain is computed for the whole run at once.
        pool = self.lib.vci_pool
        i = 0
        while i < len(deferred):
            index = self.vci_index_for_partition(deferred[i])
            j = i + 1
            while j < len(deferred) \
                    and self.vci_index_for_partition(deferred[j]) == index:
                j += 1
            vci = pool.get(index)
            msgs = [self._partition_msg(p, index) for p in deferred[i:j]]
            self.lib.issue_async_batch(
                vci, msgs, after=lambda _m, d: self._track_departure(d))
            i = j


class PrecvRequest(_PartitionedOp):
    """Receive side of a partitioned operation."""

    def __init__(self, comm, buf, partitions, count, source, tag, info):
        if source in (ANY_SOURCE,):
            raise MpiUsageError(
                "partitioned receives cannot use ANY_SOURCE (Lesson 15: "
                "partitioned ops are persistent and wildcard-free)")
        if tag == ANY_TAG:
            raise MpiUsageError(
                "partitioned receives cannot use ANY_TAG (Lesson 15)")
        super().__init__(comm, buf, partitions, count, source, tag, info)
        self.posted = False
        self._arrived: list[bool] = []
        self._arrived_count = 0
        #: Partitions that arrived ahead of their cycle's start.
        self._buffered: dict[tuple[int, int], WireMessage] = {}

    def start(self) -> Generator[Event, Any, None]:
        """Begin a new reception cycle; reposts partition receives."""
        if self.active:
            raise MpiUsageError("start on an already-active partitioned recv")
        self.active = True
        self.cycle += 1
        self.request = Request(self.sim, "precv")
        self._arrived = [False] * self.partitions
        self._arrived_count = 0
        if not self.posted:
            self.posted = True
            yield from self._post_init()
        else:
            yield self.sim.timeout(self.lib.cpu.recv_post)
        # Drain partitions that raced ahead of this start.
        for key in sorted(k for k in self._buffered if k[0] == self.cycle):
            self._accept_partition(self._buffered.pop(key))

    def _post_init(self) -> Generator[Event, Any, None]:
        """Post the one-time matching entry for the PART_INIT handshake."""
        _ensure_handlers(self.lib)
        lib, comm = self.lib, self.comm
        self.channel_id = _alloc_channel(lib)
        lib.part_recv_channels[self.channel_id] = self
        yield self.sim.timeout(lib.cpu.recv_post)
        vci = lib.vci_pool.get(
            comm.vci_map.recv_vci(comm.rank, self.peer, self.tag))
        yield from vci.lock.acquire()
        yield self.sim.timeout(lib.cpu.lock_acquire + lib.cpu.match_base)
        marker = Request(self.sim, "precv-init")
        marker.user_data = self
        entry = PostedRecv(req=marker, buf=self.flat, count=0,
                           context_id=self.part_context_id,
                           source=self.peer, tag=self.tag,
                           dst_addr=comm.rank)
        msg, _ = vci.engine.post_recv(entry)
        vci.lock.release()
        if msg is not None:  # the PART_INIT was already here (unexpected)
            _establish_recv_channel(lib, self, msg)

    def parrived(self, i: int) -> Generator[Event, Any, bool]:
        """Check arrival of partition ``i`` (MPI_Parrived): a lightweight
        flag read, no lock."""
        if not self._check_active("parrived"):
            return False
        if not 0 <= i < self.partitions:
            raise MpiUsageError(f"partition {i} out of range")
        yield self.sim.timeout(self.lib.cpu.parrived)
        return self._arrived[i]

    def _accept_partition(self, msg: WireMessage) -> None:
        i = msg.meta["part"]
        if msg.meta["cycle"] != self.cycle or not self.active:
            self._buffered[(msg.meta["cycle"], i)] = msg
            return
        lo = i * self.count
        n = len(msg.payload)
        self.flat[lo:lo + n] = msg.payload
        if not self._arrived[i]:
            self._arrived[i] = True
            self._arrived_count += 1
            if self._arrived_count == self.partitions:
                self.request.complete(source=self.peer, tag=self.tag,
                                      count=self.partitions * self.count)


# ----------------------------------------------------------------------
# protocol handlers
# ----------------------------------------------------------------------

def _on_part_init(lib: "MpiLibrary", msg: WireMessage) -> None:
    """PART_INIT arrival: matched through the normal engine, once."""
    vci = lib.vci_pool.get(msg.dst_vci)
    service = (lib.cpu.match_base
               + lib.cpu.match_per_element * vci.engine.posted_depth)
    done = vci.match_server.submit(service)

    def _match(_e):
        entry, _ = vci.engine.incoming(msg)
        if entry is not None:
            _establish_recv_channel(lib, entry.req.user_data, msg)

    done.add_callback(_match)


def _establish_recv_channel(lib: "MpiLibrary", preq: PrecvRequest,
                            init_msg: WireMessage) -> None:
    """Receiver side: bind the channel and ACK the sender."""
    sender_channel = init_msg.meta["channel"]
    comm = preq.comm
    vci = lib.vci_pool.get(
        comm.vci_map.recv_vci(comm.rank, preq.peer, preq.tag))
    ack = WireMessage(
        kind=MessageKind.PART_INIT_ACK,
        src_node=lib.node.node_id, dst_node=init_msg.src_node,
        src_rank=lib.rank, dst_rank=init_msg.src_rank,
        context_id=init_msg.context_id, tag=init_msg.tag, size=0,
        src_vci=vci.index, dst_vci=init_msg.src_vci,
        meta={"channel": sender_channel, "recv_channel": preq.channel_id})
    lib.issue_async(vci, ack)


def _on_part_init_ack(lib: "MpiLibrary", msg: WireMessage) -> None:
    psend: PsendRequest = lib.part_send_channels[msg.meta["channel"]]
    psend._on_channel_ready(msg.meta["recv_channel"])


def _on_partition(lib: "MpiLibrary", msg: WireMessage) -> None:
    """PARTITION arrival: direct channel delivery — no matching (O(1))."""
    preq: PrecvRequest = lib.part_recv_channels[msg.meta["channel"]]
    preq._accept_partition(msg)


# ----------------------------------------------------------------------
# public constructors / conveniences
# ----------------------------------------------------------------------

def psend_init(comm: "Communicator", buf: np.ndarray, partitions: int,
               count: int, dest: int, tag: int,
               info: Optional[Info] = None) -> PsendRequest:
    """``MPI_Psend_init``: define a persistent partitioned send (local)."""
    comm._check_alive()
    comm._check_peer(dest, wildcard_ok=False)
    comm._check_tag(tag, wildcard_ok=False)
    return PsendRequest(comm, buf, partitions, count, dest, tag, info)


def precv_init(comm: "Communicator", buf: np.ndarray, partitions: int,
               count: int, source: int, tag: int,
               info: Optional[Info] = None) -> PrecvRequest:
    """``MPI_Precv_init``: define a persistent partitioned receive (local)."""
    comm._check_alive()
    return PrecvRequest(comm, buf, partitions, count, source, tag, info)


def startall(ops: list[_PartitionedOp]) -> Generator[Event, Any, None]:
    """``MPI_Startall`` over partitioned requests."""
    for op in ops:
        yield from op.start()


def waitall_partitioned(ops: list[_PartitionedOp]
                        ) -> Generator[Event, Any, None]:
    """Wait for every partitioned request's active cycle to complete."""
    for op in ops:
        yield from op.wait()
