"""The per-process MPI library instance.

One :class:`MpiLibrary` exists per simulated MPI process. It owns the
process's VCI pool, routes arriving wire messages to protocol handlers
(point-to-point eager/rendezvous, partitioned, RMA), and provides the
serialized *issue path* that models how a thread pushes a message through a
VCI onto a NIC hardware context.

Timing model of the issue path (per message, charged to the calling
thread/task):

1. software posting cost — outside any lock (``cpu.send_post`` etc. is
   charged by the caller);
2. VCI lock acquire — FIFO contention with other threads on the same VCI
   (+``cpu.lock_acquire``, +``cpu.lock_handoff`` when contended);
3. doorbell critical section on the hardware context — serialized among
   the VCIs sharing that context (+``nic.doorbell``; when the context is
   shared, +``nic.shared_post_penalty``, the Lesson 3 penalty);
4. injection — the hardware context's FIFO injector enforces the
   per-message gap; the fabric then applies node egress/ingress limits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

import numpy as np

from ..errors import MpiUsageError, TruncationError
from ..netsim.config import NetworkConfig
from ..netsim.message import MessageKind, WireMessage
from ..sim.core import Event, Simulator
from ..sim.trace import TraceCategory, Tracer
from .matching import MatchingEngine, PostedRecv
from .request import Request
from .vci import Vci, VciPool

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.world import World
    from .comm import Communicator

__all__ = ["MpiLibrary"]


class MpiLibrary:
    """MPI library state of one simulated process."""

    def __init__(self, sim: Simulator, world: "World", rank: int,
                 node, cfg: NetworkConfig, max_vcis: int):
        self.sim = sim
        self.world = world
        self.rank = rank
        self.node = node
        self.cfg = cfg
        self.cpu = cfg.cpu
        #: Observability handles; the world owns both (see
        #: ``World(metrics=..., tracer=...)``). Libraries constructed
        #: outside a World fall back to disabled instruments.
        self.metrics = getattr(world, "metrics", None)
        tracer = getattr(world, "tracer", None)
        # `is None`, not truthiness: an empty tracer is falsy.
        self.tracer: Tracer = Tracer(enabled=False) if tracer is None \
            else tracer
        self.vci_pool = VciPool(sim, node.nic, cfg.cpu, max_vcis=max_vcis,
                                metrics=self.metrics, rank=rank)
        #: Rendezvous sends awaiting CTS, by send-request id.
        self._rndv_sends: dict[int, dict] = {}
        #: Rendezvous receives awaiting DATA, by send-request id.
        self._rndv_recvs: dict[int, PostedRecv] = {}
        #: Protocol handlers installed by subsystems (partitioned, RMA).
        self.handlers: dict[MessageKind, Callable[[WireMessage], None]] = {
            MessageKind.EAGER: self._on_pt2pt_arrival,
            MessageKind.RNDV_RTS: self._on_pt2pt_arrival,
            MessageKind.RNDV_CTS: self._on_rndv_cts,
            MessageKind.RNDV_DATA: self._on_rndv_data,
        }
        #: Next VCI index to hand to a newly created endpoint.
        self._next_ep_vci = 0
        #: Optional :class:`repro.faults.ReliableTransport`. When set (the
        #: World does this for fault-injected runs), every inter-node
        #: message is sequenced/checksummed on send and filtered through
        #: the transport on arrival; when None, messages go straight to
        #: the fabric and handlers — the lossless fast path.
        self.transport = None
        # -- counters --------------------------------------------------
        self.sends_posted = 0
        self.recvs_posted = 0
        self.recvs_completed = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # issue paths
    # ------------------------------------------------------------------
    def _trace_payload(self, vci: Vci, msg: WireMessage,
                       span: Optional[int] = None) -> dict:
        task = self.sim.active_process
        payload = {
            "rank": self.rank, "vci": vci.index, "tag": msg.tag,
            "kind": msg.kind.value, "bytes": msg.wire_bytes,
            "task": task.name if task is not None else f"rank{self.rank}",
        }
        if span is not None:
            payload["span"] = span
        return payload

    def issue_from_thread(self, vci: Vci, msg: WireMessage
                          ) -> Generator[Event, Any, float]:
        """Serialized thread-side message issue; returns the departure time
        (absolute simulated seconds) of the message from its NIC context.

        Stage accounting (per message, recorded when metrics are enabled):
        ``lock_wait`` = time queued on the VCI lock, ``doorbell_wait`` =
        time queued on the hardware context's doorbell lock, ``sw_cost`` =
        the software critical section (lock acquire + doorbell ring +
        shared-context penalty), ``inject_delay`` = serialization behind
        earlier messages in the context's injector.
        """
        cpu, nicp = self.cpu, self.node.nic.params
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.span_id()
            tracer.emit(TraceCategory.ISSUE_BEGIN,
                        self._trace_payload(vci, msg, span))
        t_post = self.sim.now
        lock = vci.lock
        was_contended = lock.locked
        if was_contended:
            yield from lock.acquire()
        else:
            lock.try_acquire()
        t_lock = self.sim.now
        cost = cpu.lock_acquire + (cpu.lock_handoff if was_contended else 0.0)
        ctx = vci.hw_context
        db_lock = ctx.doorbell_lock
        db_contended = db_lock.locked
        if db_contended:
            yield from db_lock.acquire()
        else:
            db_lock.try_acquire()
        t_doorbell = self.sim.now
        cost += nicp.doorbell
        shared = ctx.is_shared
        if shared:
            cost += nicp.shared_post_penalty
        if db_contended:
            cost += cpu.lock_handoff
        yield self.sim.timeout(cost)
        depart = ctx.issue(msg.wire_bytes)
        vci.sends += 1
        self._transmit(msg, depart)
        ctx.doorbell_lock.release()
        vci.lock.release()
        self.sends_posted += 1
        self.bytes_sent += msg.size
        if vci.m_issue is not None:
            vci.m_issue.inc()
            vci.m_lock_wait.observe(t_lock - t_post)
            vci.m_db_wait.observe(t_doorbell - t_lock)
            vci.m_sw_cost.observe(cost)
            vci.m_inject_delay.observe(max(0.0, depart - self.sim.now))
            if shared:
                vci.m_shared_post.inc()
        if tracer.enabled:
            tracer.emit(TraceCategory.ISSUE_END, {
                "rank": self.rank, "vci": vci.index, "span": span,
                "depart": depart, "shared_ctx": shared,
            })
        return depart

    def issue_async(self, vci: Vci, msg: WireMessage) -> float:
        """Library-internal issue from a callback context (protocol
        responses: CTS, acks, rendezvous data). Models asynchronous
        progress: charged to the NIC, not to any thread."""
        depart = vci.hw_context.issue(msg.wire_bytes)
        vci.sends += 1
        self._transmit(msg, depart)
        if vci.m_issue_async is not None:
            vci.m_issue_async.inc()
        if self.tracer.enabled:
            self.tracer.emit(TraceCategory.ISSUE_ASYNC,
                             self._trace_payload(vci, msg))
        return depart

    def issue_async_batch(self, vci: Vci, msgs: list[WireMessage],
                          after: Optional[Callable[[WireMessage, float],
                                                   None]] = None
                          ) -> list[float]:
        """Bulk :meth:`issue_async`: one burst through the NIC context.

        Departure times, counters and event order are byte-identical to
        calling ``issue_async`` once per message in list order — the NIC
        injector chain is vectorized by
        :meth:`~repro.netsim.nic.HardwareContext.issue_batch`, and
        ``after(msg, depart)`` (when given) runs right after each
        message's transmit, preserving any per-message event
        interleaving the caller relies on. Without ``after``, messages
        bound for the fabric are handed over in one
        :meth:`~repro.netsim.fabric.Fabric.transmit_batch` call.
        """
        departs = vci.hw_context.issue_batch([m.wire_bytes for m in msgs])
        vci.sends += len(msgs)
        tracer = self.tracer
        if after is None:
            # Contiguous fabric-bound runs batch; intra-node and
            # transport-tracked messages keep their scalar paths. Runs
            # preserve list order, so arrival events enqueue in the same
            # sequence as scalar transmits would produce.
            run: list[tuple[WireMessage, float]] = []
            for msg, depart in zip(msgs, departs):
                if msg.dst_node != self.node.node_id \
                        and self.transport is None:
                    run.append((msg, depart))
                    continue
                if run:
                    self.world.fabric.transmit_batch(run)
                    run = []
                self._transmit(msg, depart)
            if run:
                self.world.fabric.transmit_batch(run)
        else:
            for msg, depart in zip(msgs, departs):
                self._transmit(msg, depart)
                after(msg, depart)
        if vci.m_issue_async is not None:
            for _ in msgs:
                vci.m_issue_async.inc()
        if tracer.enabled:
            for msg in msgs:
                self.tracer.emit(TraceCategory.ISSUE_ASYNC,
                                 self._trace_payload(vci, msg))
        return departs

    def _transmit(self, msg: WireMessage, depart: float) -> None:
        if msg.dst_node == self.node.node_id:
            # Intra-node transport bypasses the fabric: shared-memory copy.
            delay = max(0.0, depart - self.sim.now) \
                + self.cpu.shm_copy_base + msg.size / self.cpu.shm_bandwidth
            event = Event.__new__(Event)
            event.sim = self.sim
            event.callbacks = [
                lambda e: self.world.proc(msg.dst_rank).lib.deliver(e._value)]
            event._value = msg
            event._exc = None
            event._triggered = True
            event._processed = False
            self.sim._enqueue(event, delay, priority=1)
        elif self.transport is not None:
            # Reliable transport: sequence + checksum the message, track
            # it for ACK/retransmission, then hand it to the fabric.
            self.transport.send(msg, depart)
        else:
            self.world.fabric.transmit(msg, depart)

    # ------------------------------------------------------------------
    # delivery / protocol handlers
    # ------------------------------------------------------------------
    def deliver(self, msg: WireMessage) -> None:
        """Entry point for every wire message addressed to this process."""
        if self.transport is not None and self.transport.intercept(msg):
            return  # consumed: ACK, duplicate, corrupt, or buffered
        self._dispatch(msg)

    def _dispatch(self, msg: WireMessage) -> None:
        """Route one (transport-cleared) message to its protocol handler."""
        handler = self.handlers.get(msg.kind)
        if handler is None:
            raise MpiUsageError(f"no handler for message kind {msg.kind}")
        handler(msg)

    def _on_pt2pt_arrival(self, msg: WireMessage) -> None:
        """EAGER or RNDV_RTS arrival: serialized matching on the dst VCI.

        Matching work is scan-until-match over the posted queue; a miss
        scans the whole queue (and parks the message as unexpected).
        """
        vci = self.vci_pool.get(msg.dst_vci)
        service = (self.cpu.match_base
                   + self.cpu.match_per_element
                   * vci.engine.scan_cost_posted(msg))
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.span_id()
            payload = self._trace_payload(vci, msg, span)
            payload["task"] = f"vci{vci.index}.match"
            tracer.emit(TraceCategory.MATCH_BEGIN, payload)
        done = vci.match_server.submit(service)
        done.add_callback(lambda e: self._match_incoming(vci, msg, span))

    def _match_incoming(self, vci: Vci, msg: WireMessage,
                        span: Optional[int] = None) -> None:
        entry, scanned = vci.engine.incoming(msg)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(TraceCategory.MATCH_END, {
                "rank": self.rank, "vci": vci.index, "span": span,
                "scanned": scanned, "matched": entry is not None,
            })
            if entry is None:
                tracer.emit(TraceCategory.MATCH_UNEXPECTED, {
                    "rank": self.rank, "vci": vci.index, "tag": msg.tag,
                    "task": f"vci{vci.index}.match",
                })
        if entry is None:
            return  # parked in the unexpected queue
        if msg.kind is MessageKind.EAGER:
            self._complete_recv(entry, msg, _inline=True)
        else:  # RNDV_RTS matched by a pre-posted receive
            self._send_cts(vci, entry, msg)

    def _complete_recv(self, entry: PostedRecv, msg: WireMessage, *,
                       _inline: bool = False) -> None:
        """Copy an eager/rendezvous-data payload and complete the recv.

        ``_inline=True`` dispatches the request's completion synchronously
        (see :meth:`Request._complete_inline`); callers must be the last
        action of the current event dispatch. The rendezvous-DATA arrival
        path must NOT use it: the reliable transport can flush several
        buffered arrivals back-to-back in one dispatch, and inlining would
        resume the first waiter before the later messages are delivered.
        """
        payload = msg.payload
        if self.sim.checker is not None:
            hb = msg.meta.get("_hb")
            if hb is not None:
                # The sender's clock rode in the meta; the receive's
                # completion inherits the send's happens-before edges.
                self.sim.checker.on_msg_join(entry.req, hb)
        recv_bytes = entry.count * entry.buf.dtype.itemsize
        if msg.size > recv_bytes:
            entry.req.complete_with_error(TruncationError(
                f"message of {msg.size} bytes truncates receive buffer of "
                f"{recv_bytes} bytes (tag={msg.tag})"))
            return
        if payload is not None:
            n = len(payload)
            entry.buf[:n] = payload
            count = n
        else:
            count = 0
        vci = self.vci_pool.get(msg.dst_vci)
        vci.recvs += 1
        self.recvs_completed += 1
        source = msg.meta.get("src_addr", msg.src_rank)
        if _inline:
            entry.req._complete_inline(source, msg.tag, count)
        else:
            entry.req.complete(source=source, tag=msg.tag, count=count)

    # -- rendezvous ------------------------------------------------------
    def _send_cts(self, vci: Vci, entry: PostedRecv, rts: WireMessage) -> None:
        """Receiver side: a RTS met a posted receive — grant the send."""
        rid = rts.meta["rid"]
        self._rndv_recvs[rid] = entry
        cts = WireMessage(
            kind=MessageKind.RNDV_CTS,
            src_node=self.node.node_id, dst_node=rts.src_node,
            src_rank=self.rank, dst_rank=rts.src_rank,
            context_id=rts.context_id, tag=rts.tag, size=0,
            src_vci=rts.dst_vci, dst_vci=rts.src_vci,
            meta={"rid": rid},
        )
        self.issue_async(vci, cts)

    def register_rndv_send(self, rid: int, state: dict) -> None:
        self._rndv_sends[rid] = state

    def _on_rndv_cts(self, msg: WireMessage) -> None:
        """Sender side: CTS arrived — stream the payload."""
        state = self._rndv_sends.pop(msg.meta["rid"])
        vci = self.vci_pool.get(msg.dst_vci)
        meta = {"rid": msg.meta["rid"],
                "src_addr": state["src_addr"],
                "dst_addr": state["dst_addr"]}
        if state.get("hb") is not None:
            meta["_hb"] = state["hb"]
        data = WireMessage(
            kind=MessageKind.RNDV_DATA,
            src_node=self.node.node_id, dst_node=state["dst_node"],
            src_rank=self.rank, dst_rank=state["dst_rank"],
            context_id=state["context_id"], tag=state["tag"],
            size=state["size"], payload=state["payload"],
            src_vci=vci.index, dst_vci=state["dst_vci"],
            meta=meta,
        )
        depart = self.issue_async(vci, data)
        # The send request completes locally once the payload has left.
        self.complete_at(state["req"], depart, source=state["dst_addr"],
                         tag=state["tag"], count=state["count"])

    def _on_rndv_data(self, msg: WireMessage) -> None:
        """Receiver side: rendezvous payload arrived — no matching needed."""
        entry = self._rndv_recvs.pop(msg.meta["rid"])
        self._complete_recv(entry, msg)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def alloc_endpoint_vci(self) -> int:
        """Hand out the next VCI index for a new endpoint (round-robin
        through the pool, like MPICH's endpoint-to-VCI assignment)."""
        idx = self._next_ep_vci % self.vci_pool.max_vcis
        self._next_ep_vci += 1
        return idx

    def progress(self) -> Generator[Event, Any, None]:
        """Charge one progress-engine poll to the calling thread."""
        yield self.sim.timeout(self.cpu.progress_poll)

    def complete_at(self, req: Request, when: float, *, source: int,
                    tag: int, count: int) -> None:
        """Complete ``req`` at absolute time ``when`` (>= now).

        Schedules the request's ``_done`` event itself at ``when`` instead
        of an intermediate shell event whose callback triggers ``_done``
        as a second (urgent, same-time) heap entry. Nothing can interpose
        between a shell and the urgent completion it enqueues, so merging
        the two preserves the processing order of every other event — only
        the host-side event count changes, never simulated timings. The
        request is finalized (``_completed`` set) by the first callback,
        before any waiter resumes.
        """
        if req._completed or req._done._triggered:
            raise MpiUsageError(f"request {req.rid} completed twice")
        status = req.status
        status.source = source
        status.tag = tag
        status.count = count
        done = req._done
        done._triggered = True
        done._value = status
        done.callbacks.insert(0, req._finalize)
        if self.sim.checker is not None:
            # The completion is scheduled, not immediate, but the
            # happens-before contribution is the scheduling task's clock
            # (a local send completion), so record it here.
            self.sim.checker.on_request_complete(req)
        self.sim._enqueue(done, max(0.0, when - self.sim.now), priority=1)
