"""Requests and statuses for nonblocking operations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import MpiUsageError
from ..sim.core import Event, Simulator

__all__ = ["Status", "Request", "waitall", "testall", "waitany",
           "testany"]


@dataclass
class Status:
    """Completion status of one operation (MPI_Status)."""

    source: int = -1
    tag: int = -1
    count: int = 0
    error: Optional[BaseException] = None
    cancelled: bool = False


class Request:
    """Handle for a nonblocking operation.

    A request is created *active* and is completed exactly once by the
    library (locally for sends, on matching+delivery for receives). Waiting
    is done with ``status = yield from req.wait()``.
    """

    __slots__ = ("sim", "kind", "rid", "_done", "status", "_completed",
                 "user_data", "vci")

    def __init__(self, sim: Simulator, kind: str = "generic"):
        self.sim = sim
        self.kind = kind
        # Per-simulator numbering: request ids (which appear in checker
        # diagnostics) must be a function of the run alone, not of how
        # many Worlds this process executed before — campaign replays
        # compare diagnostics byte for byte.
        self.rid = getattr(sim, "_next_rid", 0)
        sim._next_rid = self.rid + 1
        # Hand-built pending Event: requests are the hot path's dominant
        # allocation after timeouts, and the shell needs no __init__ logic.
        done = Event.__new__(Event)
        done.sim = sim
        done.callbacks = []
        done._value = None
        done._exc = None
        done._triggered = False
        done._processed = False
        self._done: Event = done
        self.status = Status()
        self._completed = False
        #: Scratch slot for library internals (e.g. matching bookkeeping).
        self.user_data: Any = None
        #: The VCI the operation was posted on (set by the posting path);
        #: MPI_Test on the request serializes on this channel's lock.
        self.vci = None
        if sim.checker is not None:
            sim.checker.on_request_new(self)

    # -- library side ------------------------------------------------------
    def complete(self, source: int = -1, tag: int = -1, count: int = 0) -> None:
        """Mark the request complete (library-internal)."""
        if self._completed:
            raise MpiUsageError(f"request {self.rid} completed twice")
        self._completed = True
        self.status.source = source
        self.status.tag = tag
        self.status.count = count
        if self.sim.checker is not None:
            self.sim.checker.on_request_complete(self)
        self._done.succeed(self.status)

    def _complete_inline(self, source: int, tag: int, count: int) -> None:
        """Like :meth:`complete`, but processes ``_done`` synchronously
        instead of via a same-time urgent heap event.

        Only valid when the caller is the last action of the current event
        dispatch (nothing else runs between it and the urgent completion
        event the normal path would enqueue), so the waiters' resume point
        in the global event order is identical either way. The eager
        receive-completion path qualifies; see ``MpiLibrary._complete_recv``.
        """
        if self._completed:
            raise MpiUsageError(f"request {self.rid} completed twice")
        self._completed = True
        status = self.status
        status.source = source
        status.tag = tag
        status.count = count
        if self.sim.checker is not None:
            self.sim.checker.on_request_complete(self)
        done = self._done
        done._triggered = True
        done._value = status
        done._process()

    def _finalize(self, event: Event) -> None:
        """First callback of a pre-scheduled completion (see
        ``MpiLibrary.complete_at``): mark the request complete at the
        moment the ``_done`` event processes, before waiters resume."""
        self._completed = True

    def complete_with_error(self, exc: BaseException) -> None:
        """Complete the request carrying ``exc`` in its status."""
        if self._completed:
            raise MpiUsageError(f"request {self.rid} completed twice")
        self._completed = True
        self.status.error = exc
        if self.sim.checker is not None:
            self.sim.checker.on_request_complete(self)
        self._done.fail(exc)

    # -- user side ----------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the operation if it has not yet matched (MPI_Cancel).

        Only a receive still sitting in its VCI's posted queue can be
        cancelled: a request that already completed, a receive that
        already matched a message (the race is decided by the matching
        engine, atomically in simulated time), and any send request all
        report False and complete normally. On success the request
        completes immediately with ``status.cancelled`` set — visible
        through :meth:`test`, :meth:`wait`, and :func:`waitall`.
        """
        if self.sim.checker is not None:
            self.sim.checker.on_request_access(self)
        if self._completed:
            return False
        if self.vci is None or not self.vci.engine.cancel_posted(self):
            return False
        self._completed = True
        self.status.cancelled = True
        if self.sim.checker is not None:
            self.sim.checker.on_request_complete(self)
        self._done.succeed(self.status)
        return True

    @property
    def done(self) -> bool:
        return self._completed

    @property
    def done_event(self) -> Event:
        return self._done

    def test(self) -> Optional[Status]:
        """Nonblocking completion check (MPI_Test): Status or None."""
        chk = self.sim.checker
        if chk is not None:
            chk.on_request_access(self)
        if self._completed:
            if chk is not None:
                chk.on_request_join(self)
            if self.status.error is not None:
                raise self.status.error
            return self.status
        return None

    def wait(self) -> Generator[Event, Any, Status]:
        """Block (in simulated time) until complete; returns the Status."""
        chk = self.sim.checker
        if chk is not None:
            chk.on_request_access(self)
        if not self._completed:
            yield self._done
        if chk is not None:
            chk.on_request_join(self)
        if self.status.error is not None:
            raise self.status.error
        return self.status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._completed else "active"
        return f"<Request #{self.rid} {self.kind} {state}>"


def waitall(requests: list[Request]) -> Generator[Event, Any, list[Status]]:
    """Wait for all requests; returns their statuses in order."""
    statuses = []
    for req in requests:
        statuses.append((yield from req.wait()))
    return statuses


def testall(requests: list[Request]) -> Optional[list[Status]]:
    """If every request is complete, return all statuses, else None."""
    if all(r.done for r in requests):
        return [r.test() for r in requests]
    return None


def waitany(requests: list[Request]
            ) -> Generator[Event, Any, tuple[int, Status]]:
    """Wait until any request completes (MPI_Waitany).

    Returns ``(index, status)`` of the first completion. Already-complete
    requests win immediately, lowest index first.
    """
    if not requests:
        raise MpiUsageError("waitany needs at least one request")
    for i, r in enumerate(requests):
        if r.done:
            return i, r.test()
    sim = requests[0].sim
    any_of = sim.any_of([r.done_event for r in requests])
    index, _value = yield any_of
    status = requests[index].test()
    return index, status


def testany(requests: list[Request]) -> Optional[tuple[int, Status]]:
    """If any request is complete, return ``(index, status)`` else None."""
    for i, r in enumerate(requests):
        if r.done:
            return i, r.test()
    return None
