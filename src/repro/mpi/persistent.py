"""Persistent point-to-point operations (MPI_Send_init / MPI_Recv_init).

Classic persistent requests predate partitioned communication and are the
natural baseline for it: the argument setup is hoisted out of the critical
path, but — unlike partitioned operations — every ``start`` still produces
a full message that is matched anew, so the O(n) matching behaviour of
multithreaded communication is unchanged. Comparing the two isolates what
partitioned communication actually buys (match-once channels) from mere
persistence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ..errors import MpiUsageError
from ..sim.core import Event
from .datatypes import check_buffer
from .request import Request

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Communicator

__all__ = ["PersistentRequest", "send_init", "recv_init",
           "start_all_persistent", "wait_all_persistent"]


class PersistentRequest:
    """A reusable send or receive: init once, then start/wait repeatedly."""

    def __init__(self, comm: "Communicator", kind: str, buf: np.ndarray,
                 peer: int, tag: int, count: Optional[int]):
        if kind not in ("send", "recv"):
            raise MpiUsageError(f"bad persistent request kind {kind!r}")
        self.comm = comm
        self.kind = kind
        self.buf = buf
        self.peer = peer
        self.tag = tag
        self.count = count
        self.active: Optional[Request] = None
        self.cycles = 0

    def start(self) -> Generator[Event, Any, None]:
        """Activate the operation (MPI_Start)."""
        if self.active is not None and not self.active.done:
            raise MpiUsageError(
                "MPI_Start on a persistent request whose previous cycle "
                "has not completed")
        if self.kind == "send":
            self.active = yield from self.comm.Isend(self.buf, self.peer,
                                                     self.tag, self.count)
        else:
            self.active = yield from self.comm.Irecv(self.buf, self.peer,
                                                     self.tag, self.count)
        self.cycles += 1

    def wait(self) -> Generator[Event, Any, Any]:
        """Complete the active cycle; the request stays reusable."""
        if self.active is None:
            raise MpiUsageError("wait on a never-started persistent request")
        status = yield from self.active.wait()
        return status

    def test(self):
        if self.active is None:
            return None
        return self.active.test()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PersistentRequest {self.kind} peer={self.peer} "
                f"tag={self.tag} cycles={self.cycles}>")


def send_init(comm: "Communicator", buf: np.ndarray, dest: int, tag: int,
              count: Optional[int] = None) -> PersistentRequest:
    """``MPI_Send_init``: local; validates arguments eagerly."""
    comm._check_alive()
    comm._check_peer(dest, wildcard_ok=False)
    comm._check_tag(tag, wildcard_ok=False)
    check_buffer(buf, count)
    return PersistentRequest(comm, "send", buf, dest, tag, count)


def recv_init(comm: "Communicator", buf: np.ndarray, source: int, tag: int,
              count: Optional[int] = None) -> PersistentRequest:
    """``MPI_Recv_init``: local; wildcards permitted (unlike partitioned
    receives — Lesson 15's distinction)."""
    comm._check_alive()
    comm._check_peer(source, wildcard_ok=True)
    comm._check_tag(tag, wildcard_ok=True)
    check_buffer(buf, count)
    return PersistentRequest(comm, "recv", buf, source, tag, count)


def start_all_persistent(reqs: list[PersistentRequest]
                         ) -> Generator[Event, Any, None]:
    """Start every persistent request (MPI_Startall)."""
    for r in reqs:
        yield from r.start()


def wait_all_persistent(reqs: list[PersistentRequest]
                        ) -> Generator[Event, Any, list]:
    """Wait on every persistent request; returns their results in order."""
    out = []
    for r in reqs:
        out.append((yield from r.wait()))
    return out
