"""Point kinds and job expansion: the service's unit of work.

A *point* is one self-contained simulation — exactly the unit
:func:`repro.bench.parallel.run_points` fans across a fork pool. Here
the same unit is named (a *point kind*), executed through one registry
(:func:`execute_point`) whether it runs in-process, in a local worker or
on a remote host, and always JSON-canonicalized, so every execution path
returns byte-identical data.

A *job* is a named expansion into points (:func:`expand_job`):

``sweep``
    Cartesian product of ``spec["params"]`` over the message-rate
    microbenchmark (the Fig 1(a) sweep as a service).
``campaign``
    ``sample_scenarios(seed, n, apps)`` — the chaos campaign's scenario
    list, one scenario per point.
``scenarios``
    An explicit list of :class:`~repro.scenarios.spec.ScenarioSpec`
    dicts (e.g. parsed from YAML documents).
``selftest``
    Tiny deterministic arithmetic points (optionally sleepy or failing)
    used by the protocol tests and the smoke job.

Expansion is deterministic: the same job document always yields the
same point list in the same order, which is what lets a restarted
orchestrator rebuild its queue from job manifests plus the result cache.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable

from ..errors import ServeError

__all__ = ["POINT_KINDS", "JOB_KINDS", "execute_point", "expand_job",
           "msgrate_point", "scenario_point", "selftest_point"]


def _json_roundtrip(result: Any) -> Any:
    from ..bench.memo import json_roundtrip
    return json_roundtrip(result)


def msgrate_point(mode: str, cores: int, msgs_per_core: int = 64,
                  msg_bytes: int = 8, window: int = 16,
                  seed: int = 0) -> dict[str, Any]:
    """One message-rate sweep point (module-level: pool workers and
    service workers both import it by name)."""
    from ..bench.msgrate import MsgRateConfig, run_msgrate
    r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                  msgs_per_core=msgs_per_core,
                                  msg_bytes=msg_bytes, window=window,
                                  seed=seed))
    return {"rate": r.rate, "span": r.span, "messages": r.messages,
            "rate_Mmsgs": round(r.rate / 1e6, 2)}


def scenario_point(spec: dict) -> dict[str, Any]:
    """One chaos scenario, classified (see ``repro.scenarios.executor``)."""
    from ..scenarios.executor import run_scenario_dict
    return run_scenario_dict(spec)


def selftest_point(i: int, ms: float = 0.0, fail: bool = False) -> dict:
    """Deterministic arithmetic point for protocol tests and smoke runs.

    ``ms`` sleeps host milliseconds (a window for kill/stall tests);
    ``fail`` raises, exercising the error-result path.
    """
    if ms:
        time.sleep(ms / 1000.0)
    if fail:
        raise ValueError(f"selftest point {i} asked to fail")
    return {"i": i, "value": i * i}


#: Point kind registry: name -> point function taking ``**point``.
POINT_KINDS: dict[str, Callable[..., Any]] = {
    "msgrate": msgrate_point,
    "scenario": scenario_point,
    "selftest": selftest_point,
}


def execute_point(kind: str, point: dict) -> Any:
    """Run one point through its registered kind; JSON-canonical result.

    This is the single execution path shared by in-process runs, local
    fork-pool workers and socket-attached service workers — all three
    return byte-identical data for the same (kind, point).
    """
    fn = POINT_KINDS.get(kind)
    if fn is None:
        raise ServeError(f"unknown point kind {kind!r} "
                         f"(known: {', '.join(sorted(POINT_KINDS))})")
    return _json_roundtrip(fn(**point))


# -- job expansion ---------------------------------------------------------
def _expand_sweep(spec: dict) -> tuple[str, list[dict]]:
    params = spec.get("params")
    if not isinstance(params, dict) or not params:
        raise ServeError("sweep job needs a non-empty 'params' mapping "
                         "(e.g. {'mode': [...], 'cores': [...]})")
    experiment = spec.get("experiment", "msgrate")
    if experiment != "msgrate":
        raise ServeError(f"unknown sweep experiment {experiment!r}")
    # Canonical (sorted) key order: a job document's expansion must not
    # depend on mapping key order, which JSON/YAML round-trips (e.g. a
    # client serializing with sort_keys) do not preserve.
    keys = sorted(params)
    values = [params[k] if isinstance(params[k], list) else [params[k]]
              for k in keys]
    points = [dict(zip(keys, combo))
              for combo in itertools.product(*values)]
    return "msgrate", points


def _expand_campaign(spec: dict) -> tuple[str, list[dict]]:
    from ..scenarios.sample import sample_scenarios
    seed = int(spec.get("seed", 0))
    n = int(spec.get("n", 0))
    if n < 1:
        raise ServeError("campaign job needs n >= 1 scenarios")
    specs = sample_scenarios(seed, n, apps=spec.get("apps"))
    return "scenario", [{"spec": s.to_dict()} for s in specs]


def _expand_scenarios(spec: dict) -> tuple[str, list[dict]]:
    from ..scenarios.spec import ScenarioSpec
    raw = spec.get("specs")
    if not isinstance(raw, list) or not raw:
        raise ServeError("scenarios job needs a non-empty 'specs' list")
    # Validate eagerly: a malformed spec fails at submit, not on a worker.
    points = [{"spec": ScenarioSpec.from_dict(d).to_dict()} for d in raw]
    return "scenario", points


def _expand_selftest(spec: dict) -> tuple[str, list[dict]]:
    n = int(spec.get("n", 0))
    if n < 1:
        raise ServeError("selftest job needs n >= 1 points")
    ms = float(spec.get("ms", 0.0))
    points: list[dict] = []
    for i in range(n):
        point: dict[str, Any] = {"i": i}
        if ms:
            point["ms"] = ms
        if spec.get("fail_at") == i:
            point["fail"] = True
        points.append(point)
    return "selftest", points


#: Job kind registry: name -> expansion into (point kind, point list).
JOB_KINDS: dict[str, Callable[[dict], tuple[str, list[dict]]]] = {
    "sweep": _expand_sweep,
    "campaign": _expand_campaign,
    "scenarios": _expand_scenarios,
    "selftest": _expand_selftest,
}


def expand_job(kind: str, spec: dict) -> tuple[str, list[dict]]:
    """Deterministically expand a job document into its point list.

    Returns ``(point_kind, points)``. The same ``(kind, spec)`` always
    expands to the same ordered list — resubmission and orchestrator
    restart both rely on it.
    """
    expander = JOB_KINDS.get(kind)
    if expander is None:
        raise ServeError(f"unknown job kind {kind!r} "
                         f"(known: {', '.join(sorted(JOB_KINDS))})")
    if not isinstance(spec, dict):
        raise ServeError(f"job spec must be a mapping, got "
                         f"{type(spec).__name__}")
    point_kind, points = expander(spec)
    return point_kind, [_json_roundtrip(p) for p in points]
