"""Socket worker: connects to the orchestrator, runs points, reports.

A worker is deliberately dumb — it owns no queue, no cache and no retry
policy. It connects, says hello, and then loops: read a job frame, run
the point via the single shared execution path
(:func:`repro.serve.points.execute_point`), write back a result or error
frame. All scheduling intelligence (dedupe, requeue, caching) lives in
the orchestrator, so a worker can die at any instant — ``kill -9``
included — and the only observable effect is a dropped socket, which the
orchestrator treats as "re-queue whatever that worker held".

While a point runs, a daemon thread writes heartbeat frames every
``heartbeat`` seconds so the orchestrator can tell a *slow* worker from
a *wedged* one (a SIGSTOP'd worker stops heartbeating and is declared
dead after the timeout; a worker grinding through a big simulation keeps
heartbeating and is left alone).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import traceback
from typing import Optional

from .points import execute_point
from .protocol import (
    heartbeat_frame,
    hello_frame,
    read_frame,
    result_frame,
    write_frame,
)
from .protocol import error_frame as _error_frame

__all__ = ["worker_main", "spawn_worker"]


class _Heart(threading.Thread):
    """Daemon thread writing heartbeat frames while a point executes.

    Socket writes are serialized with the result writes through ``lock``
    so a heartbeat can never interleave bytes mid-frame.
    """

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 name: str, interval: float):
        super().__init__(daemon=True)
        self._sock = sock
        self._lock = lock
        self._name = name
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        """Beat every ``interval`` host seconds until :meth:`stop`."""
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    write_frame(self._sock, heartbeat_frame(self._name,
                                                            busy=True))
            except OSError:
                return  # orchestrator is gone; main loop will notice too

    def stop(self) -> None:
        """Stop heartbeating (the point finished)."""
        self._stop.set()


def worker_main(host: str, port: int, name: str,
                heartbeat: float = 0.5) -> None:
    """Run the worker loop until the orchestrator closes the connection.

    Connects to the orchestrator's worker port, sends a hello frame
    (name + pid, so the service can expose worker pids for test
    harnesses to ``kill -9``), then serves job frames one at a time.
    A failing point produces an ``error`` frame with the traceback; the
    worker itself survives and asks for the next job. EOF or a
    ``shutdown`` frame ends the loop — so orphaned workers exit on
    their own when the orchestrator dies.
    """
    sock = socket.create_connection((host, port))
    lock = threading.Lock()
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with lock:
            write_frame(sock, hello_frame(name, os.getpid()))
        while True:
            frame = read_frame(sock)
            if frame is None or frame["type"] == "shutdown":
                return
            if frame["type"] != "job":
                continue  # future-proof: ignore unknown orchestrator frames
            heart = _Heart(sock, lock, name, heartbeat)
            heart.start()
            try:
                result = execute_point(frame["kind"], frame["point"])
            except Exception:
                heart.stop()
                with lock:
                    write_frame(sock, _error_frame(
                        frame["id"], traceback.format_exc()))
            else:
                heart.stop()
                with lock:
                    write_frame(sock, result_frame(frame["id"], result))
    except OSError:
        return  # connection lost: orchestrator will requeue our job
    finally:
        sock.close()


def spawn_worker(host: str, port: int, name: str,
                 heartbeat: float = 0.5
                 ) -> Optional[multiprocessing.process.BaseProcess]:
    """Fork a local worker process running :func:`worker_main`.

    Uses the ``fork`` start method for the same reason as the bench
    pool: workers inherit loaded modules and start in milliseconds.
    Returns ``None`` where ``fork`` is unavailable (non-POSIX hosts).
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return None
    proc = ctx.Process(target=worker_main, args=(host, port, name),
                       kwargs={"heartbeat": heartbeat},
                       name=f"repro-serve-{name}", daemon=False)
    proc.start()
    return proc
