"""Simulation-as-a-service: shard sweep/campaign points across workers.

This package turns the local toolkit — :func:`repro.bench.parallel.run_points`,
the campaign runner and the digest-keyed memo cache — into a long-running
service (see ``docs/serving.md``):

- :mod:`repro.serve.protocol` — the transport-agnostic worker protocol:
  length-prefixed JSON job/result/heartbeat frames over sockets, so
  points run on local processes today and remote hosts later;
- :mod:`repro.serve.points` — the unit of work: point kinds (msgrate
  sweep point, chaos scenario) and deterministic job expansion;
- :mod:`repro.serve.cache` — the shared persistent result cache, keyed
  by the canonical (point kind, parameters) JSON under a version string
  that embeds the snapshot format versions;
- :mod:`repro.serve.orchestrator` — the asyncio job queue/scheduler:
  shards points across workers, dedupes in-flight keys, serves warm
  cache hits, re-queues on worker death, resumes after its own death;
- :mod:`repro.serve.http` — the HTTP API (``POST /jobs``,
  ``GET /jobs/<id>``, ``.../result``, ``.../trace``);
- :mod:`repro.serve.service`/:mod:`repro.serve.client` — process
  wiring (``python -m repro serve``) and the blocking client used by
  ``repro submit`` / ``repro jobs``.
"""

from .cache import SERVE_CACHE_VERSION, ResultCache, cache_key
from .client import ServeClient
from .orchestrator import Job, Orchestrator, PointTask
from .points import execute_point, expand_job, msgrate_point
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from .service import ServiceHandle, run_service, spawn_service
from .worker import worker_main

__all__ = [
    "PROTOCOL_VERSION", "FrameDecoder", "encode_frame", "read_frame",
    "write_frame",
    "SERVE_CACHE_VERSION", "ResultCache", "cache_key",
    "execute_point", "expand_job", "msgrate_point",
    "Job", "Orchestrator", "PointTask",
    "ServeClient", "ServiceHandle", "run_service", "spawn_service",
    "worker_main",
]
