"""Stdlib-only HTTP API over the orchestrator.

One asyncio streams server, HTTP/1.1, ``Connection: close`` — no
framework, no dependency beyond the interpreter. The surface:

========================== =============================================
``GET  /healthz``            liveness: workers (with pids), queue, cache
``GET  /metrics``            metrics-registry snapshot (JSON)
``POST /jobs``               submit ``{"kind": ..., "spec": {...}}``
                             (JSON or YAML body) → ``201`` + status doc
``GET  /jobs``               status documents for all jobs
``GET  /jobs/<id>``          one job's live progress
``GET  /jobs/<id>/result``   full result doc; ``409`` while running
``GET  /jobs/<id>/trace``    Chrome-trace JSON of the job's executions
``POST /shutdown``           stop the service loop cleanly
========================== =============================================

Job documents are the same shape on the wire as on the CLI: ``kind``
names an expansion from :data:`repro.serve.points.JOB_KINDS` and
``spec`` is its parameter mapping, so a sweep/campaign YAML file can be
POSTed as-is by ``python -m repro submit``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

import yaml

from ..errors import ServeError
from .orchestrator import Orchestrator

__all__ = ["HttpApi", "parse_job_document"]

_MAX_BODY = 8 * 1024 * 1024


def parse_job_document(body: bytes) -> tuple[str, dict]:
    """Parse a POST /jobs body (JSON or YAML) into ``(kind, spec)``."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        try:
            doc = yaml.safe_load(body.decode("utf-8", "replace"))
        except yaml.YAMLError as exc:
            raise ServeError(f"job body is neither JSON nor YAML: {exc}"
                             ) from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("kind"), str):
        raise ServeError(
            "job document must be a mapping with a 'kind' string "
            "(e.g. {'kind': 'sweep', 'spec': {...}})")
    spec = doc.get("spec", {})
    if not isinstance(spec, dict):
        raise ServeError("job 'spec' must be a mapping")
    return doc["kind"], spec


class HttpApi:
    """The HTTP front of one :class:`Orchestrator`.

    Runs on the same event loop as the orchestrator, so handlers may
    call its synchronous methods directly — there is exactly one thread
    touching scheduler state.
    """

    def __init__(self, orchestrator: Orchestrator, host: str = "127.0.0.1"):
        self.orchestrator = orchestrator
        self._host = host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set when a POST /shutdown arrives; the service loop awaits it.
        self.shutdown_requested: asyncio.Event = asyncio.Event()

    async def start(self) -> int:
        """Bind the API port (ephemeral by default); returns it."""
        self._server = await asyncio.start_server(
            self._handle, self._host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Close the API server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request plumbing --------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, doc = await self._dispatch(reader)
        except ServeError as exc:
            status, doc = 400, {"error": str(exc)}
        except (ConnectionError, asyncio.IncompleteReadError, ValueError,
                asyncio.LimitOverrunError) as exc:
            status, doc = 400, {"error": f"bad request: {exc}"}
        body = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                          default=str).encode("utf-8")
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 500: "Internal Server Error"}
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to clean up
        finally:
            writer.close()

    async def _dispatch(self, reader: asyncio.StreamReader
                        ) -> tuple[int, Any]:
        request = await reader.readuntil(b"\r\n\r\n")
        line, _, header_blob = request.partition(b"\r\n")
        try:
            method, path, _version = line.decode("ascii").split(" ", 2)
        except ValueError as exc:
            raise ServeError(f"malformed request line {line!r}") from exc
        length = 0
        for header in header_blob.decode("ascii", "replace").split("\r\n"):
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY:
            raise ServeError(f"body of {length} bytes exceeds the "
                             f"{_MAX_BODY}-byte bound")
        body = await reader.readexactly(length) if length else b""
        return self._route(method.upper(), path.rstrip("/") or "/", body)

    # -- routing -----------------------------------------------------------
    def _route(self, method: str, path: str, body: bytes) -> tuple[int, Any]:
        orch = self.orchestrator
        if path == "/healthz" and method == "GET":
            return 200, orch.healthz()
        if path == "/metrics" and method == "GET":
            return 200, {"metrics": orch.metrics.snapshot(),
                         "cache": {"hits": orch.cache.hits,
                                   "misses": orch.cache.misses,
                                   "stored": len(orch.cache)}}
        if path == "/shutdown" and method == "POST":
            self.shutdown_requested.set()
            return 200, {"ok": True, "shutting_down": True}
        if path == "/jobs" and method == "POST":
            kind, spec = parse_job_document(body)
            job_id = orch.submit(kind, spec)
            return 201, orch.job_status(job_id)
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": orch.list_jobs()}
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": f"{method} not allowed on {path}"}
            parts = path.split("/")  # ['', 'jobs', '<id>', ('result'|...)]
            job_id = parts[2]
            sub = parts[3] if len(parts) > 3 else None
            if job_id not in orch.jobs:
                return 404, {"error": f"no such job {job_id!r}"}
            if sub is None:
                return 200, orch.job_status(job_id)
            if sub == "result":
                status = orch.job_status(job_id)
                if status["status"] == "running":
                    # status carries error=None; message must win the merge
                    return 409, {**status, "error": "job still running"}
                if status["status"] == "failed":
                    return 500, {**status, "error": status["error"]}
                return 200, orch.job_result(job_id)
            if sub == "trace":
                return 200, orch.job_trace(job_id)
            return 404, {"error": f"unknown job endpoint {sub!r}"}
        return 404, {"error": f"no route for {method} {path}"}
