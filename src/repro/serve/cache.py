"""The service's shared result cache: one point, one file, one key.

Results persist in the :class:`repro.bench.parallel._PointStore`
checkpoint format (atomic per-point JSON files), keyed by the canonical
JSON of ``(cache version, point kind, point parameters)`` — i.e. the
full (program, config, seed) triple that determines a simulation. Two
points collide on a key only if their canonical parameter JSON is
byte-identical, in which case they *are* the same simulation; the store
additionally verifies the stored key record on load, so even a SHA-256
filename collision reads as a miss, never as a wrong result.

:data:`SERVE_CACHE_VERSION` embeds :data:`repro.bench.memo.MEMO_VERSION`
(which embeds the SNAP/STATE format versions), so bumping any snapshot
format invalidates every served result at once — stale keys simply
never match again, exactly like the warm-prefix memo cache.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..bench.memo import MEMO_VERSION
from ..bench.parallel import _PENDING, _PointStore, point_key

__all__ = ["SERVE_CACHE_VERSION", "PENDING", "ResultCache", "cache_key",
           "cache_record"]

#: Cache-key version: embeds the memo/SNAP/STATE format versions, so a
#: format bump anywhere below invalidates every served result at once.
SERVE_CACHE_VERSION = f"serve1-{MEMO_VERSION}"

#: Sentinel returned by :meth:`ResultCache.load` for a miss.
PENDING = _PENDING


def cache_record(kind: str, point: dict) -> dict:
    """The full key record stored (and verified) with each result."""
    return {"kind": "serve-result", "version": SERVE_CACHE_VERSION,
            "point_kind": kind, "point": point}


def cache_key(kind: str, point: dict) -> str:
    """Stable content key for one (point kind, parameters) pair.

    Also the orchestrator's dedupe identity: two queued points with the
    same key are the same simulation, so only one ever runs at a time.
    """
    return point_key(cache_record(kind, point))


class ResultCache:
    """Persistent, shared result cache for served points.

    A thin, counting wrapper over the checkpoint store: ``load`` returns
    :data:`PENDING` on a miss and the byte-identical JSON result on a
    hit. ``directory=None`` disables persistence (every load misses) —
    the orchestrator code path stays identical either way.
    """

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        self._store = _PointStore(directory) if directory else None
        #: Lifetime hit/miss counts (also mirrored into the service's
        #: metrics registry by the orchestrator).
        self.hits = 0
        self.misses = 0

    def load(self, kind: str, point: dict) -> Any:
        """The cached result for ``(kind, point)``, or :data:`PENDING`."""
        if self._store is None:
            self.misses += 1
            return PENDING
        result = self._store.load(cache_record(kind, point))
        if result is PENDING:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def save(self, kind: str, point: dict, result: Any) -> None:
        """Atomically persist ``result`` for ``(kind, point)``."""
        if self._store is not None:
            self._store.save(cache_record(kind, point), result)

    def __len__(self) -> int:
        if self.directory is None or not os.path.isdir(self.directory):
            return 0
        return sum(1 for name in os.listdir(self.directory)
                   if name.startswith("point-") and name.endswith(".json"))
