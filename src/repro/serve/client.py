"""Stdlib HTTP client for the serve API (used by the CLI and tests)."""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Optional

from ..errors import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """Synchronous client for one service URL.

    One connection per request (the server answers ``Connection:
    close``); every method returns the decoded JSON document. The
    convenience methods raise :class:`~repro.errors.ServeError` on
    non-2xx answers; :meth:`request` returns ``(status, doc)`` raw for
    callers that care about 409/500 semantics themselves.
    """

    def __init__(self, url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServeError(f"unsupported service URL {url!r}")
        self.url = url
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout

    def request(self, method: str, path: str,
                body: Optional[Any] = None) -> tuple[int, Any]:
        """One HTTP round-trip; returns ``(status, decoded JSON)``."""
        conn = http.client.HTTPConnection(self._host, self._port,
                                          timeout=self._timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, sort_keys=True,
                                     separators=(",", ":"),
                                     default=str).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, OSError) as exc:
            raise ServeError(f"service at {self.url} unreachable: {exc}"
                             ) from exc
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError as exc:
            raise ServeError(f"non-JSON response from {path}: {exc}"
                             ) from exc
        return response.status, doc

    def _ok(self, method: str, path: str,
            body: Optional[Any] = None) -> Any:
        status, doc = self.request(method, path, body)
        if status >= 300:
            error = (doc or {}).get("error", f"HTTP {status}")
            raise ServeError(f"{method} {path}: {error}")
        return doc

    # -- conveniences ------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._ok("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._ok("GET", "/metrics")

    def submit(self, kind: str, spec: dict) -> dict:
        """``POST /jobs``; returns the new job's status document."""
        return self._ok("POST", "/jobs", {"kind": kind, "spec": spec})

    def jobs(self) -> list[dict]:
        """``GET /jobs``; status documents for every job."""
        return self._ok("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``; one job's live progress."""
        return self._ok("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /jobs/<id>/result``; raises while the job runs (409)."""
        return self._ok("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> dict:
        """``GET /jobs/<id>/trace``; Chrome-trace JSON."""
        return self._ok("GET", f"/jobs/{job_id}/trace")

    def shutdown(self) -> dict:
        """``POST /shutdown``."""
        return self._ok("POST", "/shutdown")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job leaves ``running``; returns its status doc.

        Raises :class:`~repro.errors.ServeError` on job failure or when
        ``timeout`` host-seconds elapse first.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] == "done":
                return status
            if status["status"] == "failed":
                raise ServeError(f"{job_id} failed: {status['error']}")
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"{job_id} still running after {timeout}s "
                    f"({status['done']}/{status['total']} points)")
            time.sleep(poll)
