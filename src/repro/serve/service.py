"""Service assembly: orchestrator + HTTP API + supervised local workers.

:func:`run_service` is the whole service in one call (the CLI's
``python -m repro serve`` is a thin wrapper): start the orchestrator's
worker port and the HTTP API on one event loop, fork the local worker
pool, supervise it (a dead worker is respawned, its in-flight point
having already been requeued by the orchestrator), and announce
readiness by atomically writing ``state_dir/serve.json`` — the
discovery file tests and ``repro submit`` read to find the URL.

Worker-pool sizing is the fork pool's lesson applied to the service
(:func:`repro.bench.parallel.auto_jobs`): never more workers than host
CPUs unless ``oversubscribe=True`` — on the 1-CPU CI host, extra
workers only add dispatch overhead.

:func:`spawn_service` forks the service into a child process and waits
for the discovery file, returning a :class:`ServiceHandle` that tests
use to ``kill -9`` the service (crash-resume) or individual workers
(requeue), then restart on the same ``state_dir``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..bench.parallel import auto_jobs
from ..errors import ServeError
from .client import ServeClient
from .http import HttpApi
from .orchestrator import Orchestrator
from .worker import spawn_worker

__all__ = ["ServiceHandle", "run_service", "spawn_service"]

_DISCOVERY = "serve.json"


def _write_discovery(state_dir: str, doc: dict) -> str:
    path = os.path.join(state_dir, _DISCOVERY)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
    os.replace(tmp, path)
    return path


async def _serve(state_dir: str, workers: Optional[int],
                 oversubscribe: bool, heartbeat: float,
                 heartbeat_timeout: float, host: str,
                 announce: Callable[[str], None]) -> None:
    orch = Orchestrator(state_dir, heartbeat_timeout=heartbeat_timeout,
                        host=host)
    worker_port = await orch.start()
    api = HttpApi(orch, host=host)
    port = await api.start()
    n = 0 if workers == 0 else auto_jobs(requested=workers,
                                         oversubscribe=oversubscribe)
    seq = itertools.count()
    procs = [spawn_worker(host, worker_port, f"w{next(seq)}", heartbeat)
             for _ in range(n)]
    url = f"http://{host}:{port}"
    _write_discovery(state_dir, {"url": url, "pid": os.getpid(),
                                 "worker_port": worker_port, "workers": n})
    announce(f"serving on {url} ({n} worker(s), state={state_dir})")

    async def supervise() -> None:
        # A worker that died (crash, kill -9) already had its in-flight
        # point requeued by the orchestrator; respawning just restores
        # execution capacity.
        while True:
            for i, proc in enumerate(procs):
                if proc is not None and not proc.is_alive():
                    proc.join()
                    procs[i] = spawn_worker(host, worker_port,
                                            f"w{next(seq)}", heartbeat)
            await asyncio.sleep(0.2)

    supervisor = asyncio.ensure_future(supervise()) if procs else None
    try:
        await api.shutdown_requested.wait()
    finally:
        if supervisor is not None:
            supervisor.cancel()
        await orch.stop()
        await api.stop()
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc is not None:
                proc.join(timeout=5)
        try:
            os.remove(os.path.join(state_dir, _DISCOVERY))
        except OSError:
            pass  # crash-killed earlier run already removed it


def run_service(state_dir: str, workers: Optional[int] = None,
                oversubscribe: bool = False, heartbeat: float = 0.5,
                heartbeat_timeout: float = 5.0, host: str = "127.0.0.1",
                announce: Optional[Callable[[str], None]] = None) -> None:
    """Run the service until a ``POST /shutdown`` arrives (blocking).

    ``workers=None`` auto-sizes the local pool to the host
    (:func:`~repro.bench.parallel.auto_jobs`); an explicit count is
    capped at the CPU count unless ``oversubscribe=True``; ``workers=0``
    starts no local pool (external workers may still attach to the
    worker port published in ``serve.json``).
    """
    os.makedirs(state_dir, exist_ok=True)
    asyncio.run(_serve(state_dir, workers, oversubscribe, heartbeat,
                       heartbeat_timeout, host, announce or (lambda _: None)))


@dataclass
class ServiceHandle:
    """A forked service process and how to reach (and kill) it."""

    state_dir: str
    url: str
    pid: int
    proc: multiprocessing.process.BaseProcess

    def client(self) -> ServeClient:
        """An HTTP client bound to this service."""
        return ServeClient(self.url)

    def worker_pids(self) -> list[int]:
        """Pids of the currently attached workers (for kill tests)."""
        workers = self.client().healthz()["workers"]
        return sorted(info["pid"] for info in workers.values()
                      if info.get("pid"))

    def alive(self) -> bool:
        """Whether the service process is still running."""
        return self.proc.is_alive()

    def kill(self) -> None:
        """``kill -9`` the service process (crash-resume testing)."""
        try:
            os.kill(self.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # already gone
        self.proc.join(timeout=10)

    def stop(self) -> None:
        """Clean shutdown via ``POST /shutdown``; joins the process."""
        try:
            self.client().shutdown()
        except (ServeError, OSError):
            pass  # already dead; join below still reaps it
        self.proc.join(timeout=10)
        if self.proc.is_alive():  # pragma: no cover - hung service
            self.kill()


def spawn_service(state_dir: str, workers: Optional[int] = None,
                  oversubscribe: bool = False, heartbeat: float = 0.5,
                  heartbeat_timeout: float = 5.0,
                  timeout: float = 30.0) -> ServiceHandle:
    """Fork :func:`run_service` and wait for its discovery file.

    Returns once ``state_dir/serve.json`` names the child's URL, so the
    caller can immediately submit jobs. Raises
    :class:`~repro.errors.ServeError` if the child dies or the file
    does not appear within ``timeout`` seconds.
    """
    os.makedirs(state_dir, exist_ok=True)
    discovery = os.path.join(state_dir, _DISCOVERY)
    try:
        os.remove(discovery)
    except OSError:
        pass  # no stale file to clear
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX hosts
        raise ServeError("spawn_service needs the fork start method"
                         ) from exc
    proc = ctx.Process(
        target=run_service, args=(state_dir,),
        kwargs={"workers": workers, "oversubscribe": oversubscribe,
                "heartbeat": heartbeat,
                "heartbeat_timeout": heartbeat_timeout},
        name="repro-serve", daemon=False)
    proc.start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc: Optional[dict[str, Any]] = None
        try:
            with open(discovery, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = None  # not written (or mid-write) yet
        if doc and doc.get("pid") == proc.pid and doc.get("url"):
            return ServiceHandle(state_dir=state_dir, url=doc["url"],
                                 pid=proc.pid, proc=proc)
        if not proc.is_alive():
            raise ServeError(
                f"service process died during startup "
                f"(exitcode {proc.exitcode})")
        time.sleep(0.02)
    proc.terminate()
    raise ServeError(f"service did not become ready in {timeout}s")
