"""The worker protocol: length-prefixed JSON frames over a byte stream.

This is the transport-agnostic extraction of the fork-pool executor's
job dispatch (:func:`repro.bench.parallel.run_points` hands points to
workers through a multiprocessing pipe; the service hands the same
points to workers through *sockets*). A frame is::

    [4-byte big-endian payload length][canonical JSON object]

Frames are small, self-describing objects with a ``type`` field:

========== ==========================================================
``hello``      worker → orchestrator: name, pid, protocol version
``job``        orchestrator → worker: one point to execute
``result``     worker → orchestrator: the point's JSON result or error
``heartbeat``  worker → orchestrator: liveness while idle *and* busy
``shutdown``   orchestrator → worker: drain and exit cleanly
========== ==========================================================

Why length-prefixed JSON and not pickle: frames cross trust and version
boundaries once workers live on remote hosts, so the wire format is the
same canonical JSON the result cache and checkpoint stores already use —
a result is byte-identical whether it came from an in-process run, a
local worker or (later) a remote one. Truncated or oversized frames
raise :class:`repro.errors.ProtocolError`; the peer is dropped and its
in-flight job re-queued, never silently retried on a corrupt stream.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "FrameDecoder",
    "encode_frame", "read_frame", "write_frame",
    "hello_frame", "job_frame", "result_frame", "error_frame",
    "heartbeat_frame", "shutdown_frame",
]

#: Version of the frame vocabulary; a worker whose ``hello`` carries a
#: different version is rejected (no silent cross-version dispatch).
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload. Large enough for any report
#: the simulator produces, small enough that a corrupt length prefix
#: (e.g. ASCII read as a length) cannot make a reader allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame: 4-byte length prefix + canonical JSON."""
    payload = json.dumps(frame, sort_keys=True, separators=(",", ":"),
                         default=str).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"corrupt frame payload: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError(
            f"frame is not an object with a 'type' field: {frame!r}")
    return frame


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed it whatever chunks the transport hands you; it returns every
    complete frame and buffers the remainder. :meth:`close` raises
    :class:`~repro.errors.ProtocolError` if the stream ended mid-frame —
    a truncated frame is an error, never a silently dropped job.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Consume ``data``; return all frames completed by it."""
        self._buf.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buf) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte bound (corrupt stream?)")
            if len(self._buf) < _HEADER.size + length:
                return frames
            payload = bytes(self._buf[_HEADER.size:_HEADER.size + length])
            del self._buf[:_HEADER.size + length]
            frames.append(_decode_payload(payload))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def close(self) -> None:
        """Declare EOF; raises if the stream ended inside a frame."""
        if self._buf:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buf)} buffered "
                f"byte(s) (truncated frame)")


def read_frame(sock: socket.socket) -> Optional[dict]:
    """Blocking read of exactly one frame from a connected socket.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`~repro.errors.ProtocolError` if the peer vanished mid-frame.
    """
    header = _read_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound (corrupt stream?)")
    payload = _read_exact(sock, length, at_boundary=False)
    assert payload is not None  # at_boundary=False raises instead
    return _decode_payload(payload)


def _read_exact(sock: socket.socket, n: int,
                at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes; EOF is clean only at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise ProtocolError(
                f"stream ended after {len(chunks)}/{n} byte(s) "
                f"(truncated frame)")
        chunks.extend(chunk)
    return bytes(chunks)


def write_frame(sock: socket.socket, frame: dict) -> None:
    """Blocking write of one frame to a connected socket."""
    sock.sendall(encode_frame(frame))


# -- frame constructors ----------------------------------------------------
def hello_frame(worker: str, pid: int) -> dict:
    """The worker's opening frame: identity + protocol version."""
    return {"type": "hello", "worker": worker, "pid": pid,
            "protocol": PROTOCOL_VERSION}


def job_frame(task_id: str, kind: str, point: dict) -> dict:
    """One point of work: the task id echoes back on the result."""
    return {"type": "job", "id": task_id, "kind": kind, "point": point}


def result_frame(task_id: str, result: Any) -> dict:
    """A successfully executed point's JSON-able result."""
    return {"type": "result", "id": task_id, "ok": True, "result": result}


def error_frame(task_id: str, error: str) -> dict:
    """A point whose execution raised; ``error`` is one line of blame."""
    return {"type": "result", "id": task_id, "ok": False, "error": error}


def heartbeat_frame(worker: str, busy: Optional[str] = None) -> dict:
    """Liveness beacon; ``busy`` names the task the worker is running."""
    return {"type": "heartbeat", "worker": worker, "busy": busy}


def shutdown_frame() -> dict:
    """Orchestrator → worker: finish the current frame and exit."""
    return {"type": "shutdown"}
