"""Asyncio orchestrator: job queue, scheduler, dedupe, requeue, resume.

The orchestrator owns every piece of scheduling state the workers do
not: the point queue, the in-flight table, the shared result cache and
the job manifests. Its contract mirrors the fork-pool executor's —
results are byte-identical to an in-process :func:`run_points` run —
plus the service properties the pool cannot offer:

- **dedupe** — points are identified by their cache key
  (:func:`repro.serve.cache.cache_key`); if two jobs (or a resubmitted
  job) contain the same point, one execution serves every waiter.
- **warm hits** — completed points persist in the result cache, so a
  resubmitted job is answered without running anything.
- **requeue on worker death** — a worker that drops its socket or
  stops heartbeating (``heartbeat_timeout``) has its in-flight point
  put back on the queue, up to ``max_attempts`` tries.
- **crash resume** — every accepted job's ``(kind, spec)`` document is
  persisted under ``state_dir/jobs/`` before the submit call returns.
  Because expansion is deterministic and results live in the cache, a
  restarted orchestrator rebuilds its entire queue from manifests +
  cache: finished points are served warm, only the rest re-run.

Scheduling runs on one asyncio event loop; workers attach over TCP
(one connection each) and the per-connection coroutine is the whole
scheduler for that worker: claim a point, send the job frame, await
result frames with a heartbeat deadline. Host wall-clock (not simulated
time) feeds the metrics registry and trace spans — this is the service
layer, the one place in the tree where host time is the measurand.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ProtocolError, ServeError
from ..obs.metrics import MetricsRegistry
from .cache import PENDING, ResultCache, cache_key
from .points import expand_job
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    job_frame,
    shutdown_frame,
)

__all__ = ["Job", "PointTask", "Orchestrator"]

_READ_CHUNK = 65536


@dataclass
class PointTask:
    """One deduped unit of work: a (point kind, point) pair and its fans.

    ``waiters`` lists every ``(job_id, index)`` slot awaiting this
    point's result — the in-flight dedupe table is exactly the mapping
    from cache key to one of these.
    """

    key: str
    kind: str
    point: dict
    status: str = "queued"  # queued | running | done | failed
    attempts: int = 0
    result: Any = None
    error: Optional[str] = None
    waiters: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class Job:
    """One submitted job: its document, expansion and fill-in results."""

    job_id: str
    kind: str
    spec: dict
    point_kind: str
    points: list[dict]
    keys: list[str]
    results: list[Any]
    status: str = "running"  # running | done | failed
    error: Optional[str] = None
    submitted: float = 0.0
    finished: Optional[float] = None
    cache_hits: int = 0

    @property
    def total(self) -> int:
        """Number of points in the job."""
        return len(self.keys)

    @property
    def done_count(self) -> int:
        """Number of points with a result (cached or computed)."""
        return sum(1 for r in self.results if r is not PENDING)


class Orchestrator:
    """The service's scheduler: submit jobs, feed workers, track results.

    All mutation happens on the event loop thread; the HTTP layer calls
    the synchronous query/submit methods from its own coroutines on the
    same loop, so no locking is needed.
    """

    def __init__(self, state_dir: str, heartbeat_timeout: float = 5.0,
                 max_attempts: int = 3, host: str = "127.0.0.1"):
        self.state_dir = state_dir
        self.jobs_dir = os.path.join(state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.cache = ResultCache(os.path.join(state_dir, "cache"))
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.metrics = MetricsRegistry(clock=time.monotonic)
        self.jobs: dict[str, Job] = {}
        self.tasks: dict[str, PointTask] = {}
        self.workers: dict[str, dict[str, Any]] = {}
        self.worker_port: Optional[int] = None
        self._host = host
        self._t0 = time.monotonic()
        self._trace: dict[str, list[dict]] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._next_id = 1 + max(
            (int(name[4:9]) for name in os.listdir(self.jobs_dir)
             if name.startswith("job-") and name.endswith(".json")),
            default=0)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> int:
        """Bind the worker port, reload persisted jobs; returns the port."""
        self._server = await asyncio.start_server(
            self._handle_worker, self._host, 0)
        self.worker_port = self._server.sockets[0].getsockname()[1]
        self._resume_jobs()
        return self.worker_port

    async def stop(self) -> None:
        """Tell workers to exit and close the worker server."""
        for writer in list(self._writers):
            try:
                writer.write(encode_frame(shutdown_frame()))
                await writer.drain()
                writer.close()
            except (ConnectionError, OSError):
                continue
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _resume_jobs(self) -> None:
        """Rebuild queue state from job manifests + the result cache.

        This IS the crash-resume path: manifests are tiny (the job
        document, not the expansion), expansion is deterministic, and
        every completed point is in the cache — so the rebuilt queue
        contains exactly the points the dead orchestrator hadn't
        finished, with zero lost and zero duplicated work.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not (name.startswith("job-") and name.endswith(".json")):
                continue
            with open(os.path.join(self.jobs_dir, name),
                      encoding="utf-8") as fh:
                manifest = json.load(fh)
            try:
                point_kind, points = expand_job(manifest["kind"],
                                                manifest["spec"])
            except ServeError as exc:
                # Sampler/format version moved underneath a persisted
                # job: surface it as a failed job, don't wedge startup.
                self.jobs[manifest["job_id"]] = Job(
                    job_id=manifest["job_id"], kind=manifest["kind"],
                    spec=manifest["spec"], point_kind="", points=[],
                    keys=[], results=[], status="failed", error=str(exc),
                    submitted=time.monotonic())
                continue
            self._register_job(manifest["job_id"], manifest["kind"],
                               manifest["spec"], point_kind, points)
            self.metrics.inc("serve.job.resumed")

    # -- job intake --------------------------------------------------------
    def submit(self, kind: str, spec: dict) -> str:
        """Validate, persist and enqueue one job; returns its id.

        The manifest hits disk *before* any point is queued, so a crash
        at any later instant leaves a resumable record.
        """
        point_kind, points = expand_job(kind, spec)  # raises on bad spec
        job_id = f"job-{self._next_id:05d}"
        self._next_id += 1
        path = os.path.join(self.jobs_dir, f"{job_id}.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"job_id": job_id, "kind": kind, "spec": spec},
                      fh, sort_keys=True, separators=(",", ":"),
                      default=str)
        os.replace(tmp, path)
        self._register_job(job_id, kind, spec, point_kind, points)
        self.metrics.inc("serve.job.submitted")
        return job_id

    def _register_job(self, job_id: str, kind: str, spec: dict,
                      point_kind: str, points: list[dict]) -> None:
        keys = [cache_key(point_kind, p) for p in points]
        job = Job(job_id=job_id, kind=kind, spec=spec,
                  point_kind=point_kind, points=points, keys=keys,
                  results=[PENDING] * len(points),
                  submitted=time.monotonic())
        self.jobs[job_id] = job
        self._trace.setdefault(job_id, [])
        for index, (key, point) in enumerate(zip(keys, points)):
            cached = self.cache.load(point_kind, point)
            if cached is not PENDING:
                job.results[index] = cached
                job.cache_hits += 1
                self.metrics.inc("serve.cache.hit")
                continue
            self.metrics.inc("serve.cache.miss")
            task = self.tasks.get(key)
            if task is None or task.status == "failed":
                task = PointTask(key=key, kind=point_kind, point=point)
                self.tasks[key] = task
                self._queue.put_nowait(key)
                self.metrics.inc("serve.point.queued")
            elif task.status == "done":
                # In-memory completion that predates cache persistence
                # being enabled; serve it like a hit.
                job.results[index] = task.result
                job.cache_hits += 1
                continue
            task.waiters.append((job_id, index))
        self._maybe_finish(job)

    # -- worker side -------------------------------------------------------
    async def _next_frame(self, reader: asyncio.StreamReader,
                          decoder: FrameDecoder, frames: deque,
                          timeout: float) -> Optional[dict]:
        """Next decoded frame, or None on clean EOF; enforces ``timeout``
        per read — a live worker heartbeats well inside it."""
        while not frames:
            data = await asyncio.wait_for(reader.read(_READ_CHUNK), timeout)
            if not data:
                decoder.close()  # raises ProtocolError if mid-frame
                return None
            frames.extend(decoder.feed(data))
        return frames.popleft()

    async def _handle_worker(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Per-worker scheduler loop: claim, dispatch, await, repeat."""
        decoder = FrameDecoder()
        frames: deque = deque()
        name: Optional[str] = None
        task: Optional[PointTask] = None
        reason = "connection closed"
        self._writers.add(writer)
        try:
            hello = await self._next_frame(
                reader, decoder, frames, timeout=self.heartbeat_timeout * 4)
            if (hello is None or hello.get("type") != "hello"
                    or hello.get("protocol") != PROTOCOL_VERSION):
                return
            name = str(hello["worker"])
            self.workers[name] = {"pid": hello.get("pid"), "busy": None}
            self.metrics.inc("serve.worker.connected")
            while True:
                key = await self._queue.get()
                task = self.tasks.get(key)
                if task is None or task.status != "queued":
                    task = None  # stale queue entry (completed elsewhere)
                    continue
                task.status = "running"
                self.workers[name]["busy"] = key
                writer.write(encode_frame(job_frame(key, task.kind,
                                                    task.point)))
                await writer.drain()
                started = time.monotonic()
                while True:
                    frame = await self._next_frame(
                        reader, decoder, frames,
                        timeout=self.heartbeat_timeout)
                    if frame is None:
                        raise ConnectionError("worker EOF mid-job")
                    if frame["type"] == "heartbeat":
                        continue
                    if frame["type"] == "result":
                        if frame.get("ok"):
                            self._complete(task, frame["result"],
                                           worker=name, started=started)
                        else:
                            self._fail_task(task, str(frame.get("error")))
                        task = None
                        break
                self.workers[name]["busy"] = None
        except asyncio.TimeoutError:
            reason = f"no heartbeat for {self.heartbeat_timeout}s"
        except asyncio.CancelledError:
            reason = "orchestrator shutting down"  # loop teardown
        except (ConnectionError, ProtocolError, OSError) as exc:
            reason = str(exc) or type(exc).__name__
        finally:
            self._writers.discard(writer)
            if name is not None:
                self.workers.pop(name, None)
                self.metrics.inc("serve.worker.lost")
            if task is not None and task.status == "running":
                self._requeue(task, reason)
            writer.close()

    def _requeue(self, task: PointTask, reason: str) -> None:
        """Put a lost worker's point back on the queue (bounded tries)."""
        task.attempts += 1
        self.metrics.inc("serve.point.requeued")
        if task.attempts >= self.max_attempts:
            self._fail_task(
                task, f"gave up after {task.attempts} attempts "
                f"(last worker: {reason})")
        else:
            task.status = "queued"
            self._queue.put_nowait(task.key)

    def _complete(self, task: PointTask, result: Any, worker: str,
                  started: float) -> None:
        now = time.monotonic()
        task.status = "done"
        task.result = result
        self.cache.save(task.kind, task.point, result)
        self.metrics.inc("serve.point.done")
        self.metrics.observe("serve.point.host_sec", now - started)
        event = {"name": task.kind, "cat": "serve", "ph": "X",
                 "pid": 1, "tid": worker,
                 "ts": round((started - self._t0) * 1e6),
                 "dur": round((now - started) * 1e6),
                 "args": {"key": task.key, "attempts": task.attempts}}
        for job_id, index in task.waiters:
            job = self.jobs[job_id]
            job.results[index] = result
            self._trace[job_id].append(event)
            self._maybe_finish(job)

    def _fail_task(self, task: PointTask, error: str) -> None:
        task.status = "failed"
        task.error = error
        self.metrics.inc("serve.point.failed")
        for job_id, index in task.waiters:
            job = self.jobs[job_id]
            if job.status == "running":
                job.status = "failed"
                job.error = f"point {index} failed: {error}"
                job.finished = time.monotonic()

    def _maybe_finish(self, job: Job) -> None:
        if job.status == "running" and job.done_count == job.total:
            job.status = "done"
            job.finished = time.monotonic()
            self.metrics.inc("serve.job.done")

    # -- queries (HTTP layer) ----------------------------------------------
    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(f"no such job {job_id!r}")
        return job

    def job_status(self, job_id: str) -> dict[str, Any]:
        """Live progress document for one job."""
        job = self._job(job_id)
        end = job.finished if job.finished is not None else time.monotonic()
        return {"job_id": job.job_id, "kind": job.kind,
                "status": job.status, "error": job.error,
                "total": job.total, "done": job.done_count,
                "cache_hits": job.cache_hits,
                "elapsed_sec": round(end - job.submitted, 6)}

    def list_jobs(self) -> list[dict[str, Any]]:
        """Status documents for every known job, in submit order."""
        return [self.job_status(job_id) for job_id in sorted(self.jobs)]

    def job_result(self, job_id: str) -> dict[str, Any]:
        """The completed job's full result document.

        Raises :class:`~repro.errors.ServeError` while the job is still
        running (the HTTP layer maps that to 409) or when it failed.
        Campaign jobs additionally carry the same summary document a
        local ``run_campaign`` writes (via
        :func:`~repro.scenarios.campaign.summarize_outcomes`).
        """
        job = self._job(job_id)
        if job.status == "failed":
            raise ServeError(f"{job_id} failed: {job.error}")
        if job.status != "done":
            raise ServeError(
                f"{job_id} still running "
                f"({job.done_count}/{job.total} points)")
        doc: dict[str, Any] = {
            "job_id": job.job_id, "kind": job.kind,
            "point_kind": job.point_kind, "spec": job.spec,
            "points": job.points, "results": job.results,
            "cache_hits": job.cache_hits,
        }
        if job.kind == "campaign":
            from ..scenarios.campaign import summarize_outcomes
            from ..scenarios.sample import SAMPLER_VERSION
            apps = job.spec.get("apps")
            manifest = {"seed": int(job.spec.get("seed", 0)),
                        "n": int(job.spec.get("n", 0)),
                        "apps": sorted(apps) if apps else None,
                        "sampler_version": SAMPLER_VERSION}
            doc["summary"] = summarize_outcomes(manifest, job.results, [])
        return doc

    def job_trace(self, job_id: str) -> dict[str, Any]:
        """Chrome-trace document of the job's point executions.

        Load it in ``chrome://tracing`` / Perfetto: one lane per worker,
        one slice per executed point (cache hits execute nothing and so
        draw nothing — an all-warm job has an empty trace).
        """
        self._job(job_id)
        return {"traceEvents": sorted(self._trace.get(job_id, []),
                                      key=lambda e: e["ts"]),
                "displayTimeUnit": "ms"}

    def healthz(self) -> dict[str, Any]:
        """Liveness document: workers (with pids), queue and cache state."""
        return {"ok": True, "worker_port": self.worker_port,
                "workers": {name: dict(info)
                            for name, info in sorted(self.workers.items())},
                "jobs": len(self.jobs),
                "queue_depth": self._queue.qsize(),
                "cache": {"hits": self.cache.hits,
                          "misses": self.cache.misses,
                          "stored": len(self.cache)}}
