"""Communicator maps for stencil exchanges (Lessons 1-5).

A *communicator map* assigns a communicator label to every inter-process
patch exchange of a stencil decomposition. The label is the mechanism's
whole job: both endpoints must compute the same label (matching
correctness, Lesson 1) while two *different* threads of one process should
never use the same label concurrently (parallelism, Lessons 2-3).

Three maps are implemented, mirroring the paper's discussion:

- :class:`NaiveCommMap` — Lesson 2's "intuitive" approach: one communicator
  per thread id; sends use the sender's id, so receives land on the remote
  sender's communicator. Correct, but threads on opposite edges share
  communicators — only *half* the parallelism is exposed.
- :class:`MirroredCommMap` — the Listing 1 strategy generalized to any
  dimensionality and any stencil: per direction-family communicator sets,
  with assignments mirrored between neighbouring processes so that matching
  works out. Exposes *all* the parallelism, at the cost of many
  communicators (Lesson 3).
- :class:`CornerOptimizedCommMap` — Fig 4's further optimization: threads
  on a process corner funnel all their exchanges through a single
  per-corner communicator (their operations are serial anyway). Fewer
  communicators; the residual label sharing this introduces between a
  corner and the neighbours of *remote* corners is measured, not hidden —
  quantifying exactly the complexity trade-off Lesson 1 describes.

Geometry conventions: a world is a ``proc_grid`` of processes, each with a
``thread_grid`` of threads, one patch per thread. Patches are addressed by
global coordinates ``g = p * thread_grid + t``. The stencil is a set of
directions (unit offsets); exchanges exist for every (patch, direction)
pair whose target patch lies in a different process (in-process neighbours
use shared memory, as in the paper's listings).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, Sequence

from ..errors import MpiUsageError

__all__ = [
    "STENCIL_2D_5PT",
    "STENCIL_2D_9PT",
    "STENCIL_3D_7PT",
    "STENCIL_3D_27PT",
    "Exchange",
    "StencilGeometry",
    "CommMap",
    "NaiveCommMap",
    "MirroredCommMap",
    "CornerOptimizedCommMap",
    "MapReport",
    "analyze_map",
]

Coord = tuple[int, ...]


def _directions(dim: int, diagonals: bool) -> frozenset[Coord]:
    dirs = []
    for d in itertools.product((-1, 0, 1), repeat=dim):
        if all(c == 0 for c in d):
            continue
        if not diagonals and sum(abs(c) for c in d) != 1:
            continue
        dirs.append(d)
    return frozenset(dirs)


STENCIL_2D_5PT = _directions(2, diagonals=False)
STENCIL_2D_9PT = _directions(2, diagonals=True)
STENCIL_3D_7PT = _directions(3, diagonals=False)
STENCIL_3D_27PT = _directions(3, diagonals=True)


@dataclass(frozen=True)
class Exchange:
    """One directed inter-process message: patch ``src`` -> patch ``dst``."""

    src: Coord
    dst: Coord

    @property
    def direction(self) -> Coord:
        return tuple(b - a for a, b in zip(self.src, self.dst))

    @property
    def gmin(self) -> Coord:
        return min(self.src, self.dst)

    @property
    def family(self) -> Coord:
        """Canonical (undirected) direction of the exchange."""
        d = self.direction
        return d if d > tuple(0 for _ in d) else tuple(-c for c in d)


class StencilGeometry:
    """Decomposition geometry: process grid x thread grid, one patch per
    thread, non-periodic boundaries."""

    def __init__(self, proc_grid: Sequence[int], thread_grid: Sequence[int],
                 stencil: frozenset[Coord]):
        if len(proc_grid) != len(thread_grid):
            raise MpiUsageError("process and thread grids must share rank")
        if any(n < 1 for n in (*proc_grid, *thread_grid)):
            raise MpiUsageError("grid dimensions must be >= 1")
        self.proc_grid = tuple(proc_grid)
        self.thread_grid = tuple(thread_grid)
        self.dim = len(self.proc_grid)
        for d in stencil:
            if len(d) != self.dim:
                raise MpiUsageError(f"direction {d} has wrong dimensionality")
        self.stencil = stencil
        self.global_grid = tuple(p * t for p, t in zip(proc_grid, thread_grid))

    # -- coordinate helpers ------------------------------------------------
    def proc_of(self, g: Coord) -> Coord:
        return tuple(gi // ti for gi, ti in zip(g, self.thread_grid))

    def thread_of(self, g: Coord) -> Coord:
        return tuple(gi % ti for gi, ti in zip(g, self.thread_grid))

    def in_domain(self, g: Coord) -> bool:
        return all(0 <= gi < ni for gi, ni in zip(g, self.global_grid))

    def linear_tid(self, t: Coord) -> int:
        """Row-major linear index of a thread coordinate."""
        tid = 0
        for c, n in zip(t, self.thread_grid):
            tid = tid * n + c
        return tid

    def procs(self) -> Iterator[Coord]:
        return itertools.product(*(range(n) for n in self.proc_grid))

    def threads(self) -> Iterator[Coord]:
        return itertools.product(*(range(n) for n in self.thread_grid))

    def is_corner_thread(self, t: Coord) -> bool:
        return all(c in (0, n - 1) for c, n in zip(t, self.thread_grid))

    # -- exchange enumeration ---------------------------------------------
    def exchanges_from(self, p: Coord, t: Coord) -> Iterator[Exchange]:
        """Outgoing inter-process messages of thread ``t`` on process ``p``."""
        g = tuple(pi * ti + ci for pi, ti, ci in
                  zip(p, self.thread_grid, t))
        for d in self.stencil:
            g2 = tuple(a + b for a, b in zip(g, d))
            if not self.in_domain(g2):
                continue
            if self.proc_of(g2) == p:
                continue  # shared-memory neighbour
            yield Exchange(g, g2)

    def exchanges_of_process(self, p: Coord) -> Iterator[tuple[Coord, str, Exchange]]:
        """All (local thread, 'send'|'recv', exchange) ops of process ``p``.

        A receive is represented by the exchange whose *dst* is local —
        its label is by construction the label the remote sender used.
        """
        for t in self.threads():
            for ex in self.exchanges_from(p, t):
                yield t, "send", ex
        # incoming: enumerate from each neighbour patch
        for t in self.threads():
            g = tuple(pi * ti + ci for pi, ti, ci in
                      zip(p, self.thread_grid, t))
            for d in self.stencil:
                g_src = tuple(a - b for a, b in zip(g, d))
                if not self.in_domain(g_src):
                    continue
                if self.proc_of(g_src) == p:
                    continue
                yield t, "recv", Exchange(g_src, g)

    def communicating_threads(self, p: Coord) -> set[Coord]:
        """Threads of process ``p`` that touch at least one exchange."""
        out = set()
        for t in self.threads():
            if any(True for _ in self.exchanges_from(p, t)):
                out.add(t)
                continue
            g = tuple(pi * ti + ci for pi, ti, ci in
                      zip(p, self.thread_grid, t))
            for d in self.stencil:
                g_src = tuple(a - b for a, b in zip(g, d))
                if self.in_domain(g_src) and self.proc_of(g_src) != p:
                    out.add(t)
                    break
        return out


class CommMap:
    """Base class: assigns a communicator label to each exchange."""

    def __init__(self, geom: StencilGeometry):
        self.geom = geom

    def label(self, ex: Exchange) -> Hashable:
        raise NotImplementedError

    def all_labels(self) -> set[Hashable]:
        """Every distinct label this scheme assigns across the geometry."""
        seen = set()
        for p in self.geom.procs():
            for t in self.geom.threads():
                for ex in self.geom.exchanges_from(p, t):
                    seen.add(self.label(ex))
        return seen

    def num_communicators(self) -> int:
        return len(self.all_labels())

    def describe(self) -> str:
        return type(self).__name__


class NaiveCommMap(CommMap):
    """Lesson 2: communicator per thread id; sends use the sender's id."""

    def label(self, ex: Exchange) -> Hashable:
        sender_tid = self.geom.linear_tid(self.geom.thread_of(ex.src))
        return ("tid", sender_tid)


class MirroredCommMap(CommMap):
    """Listing 1's mirroring strategy, generalized.

    Label = (direction family, per-axis residue of the lexicographically
    smaller endpoint). Residues are taken modulo ``thread_grid[i]`` along
    axes the exchange does not cross and modulo ``2 * thread_grid[i]``
    along axes it does — the factor 2 is the a/b mirroring of Listing 1
    (lines 12-17/23-26) that keeps a process's "north" set distinct from
    its "south" set while matching its neighbours' choices.
    """

    def label(self, ex: Exchange) -> Hashable:
        """Parity-based label keeping opposite directions distinct."""
        fam = ex.family
        g = ex.gmin
        residues = []
        for gi, ti, di in zip(g, self.geom.thread_grid, fam):
            residues.append(gi % ti if di == 0 else gi % (2 * ti))
        return ("mir", fam, tuple(residues))


class CornerOptimizedCommMap(CommMap):
    """Fig 4: corner threads funnel exchanges through per-corner comms.

    Rule: if the exchange's *destination* thread sits on a process corner,
    use the destination corner's communicator; else if the *source* does,
    use the source corner's; otherwise fall back to the mirrored label.
    A corner communicator is identified by the corner patch's coordinates
    modulo ``2 * thread_grid`` (the same mirroring trick, applied to a
    single patch instead of an edge).
    """

    def __init__(self, geom: StencilGeometry):
        super().__init__(geom)
        self._mirrored = MirroredCommMap(geom)

    def _corner_label(self, g: Coord) -> Hashable:
        residues = tuple(gi % (2 * ti)
                         for gi, ti in zip(g, self.geom.thread_grid))
        return ("corner", residues)

    def label(self, ex: Exchange) -> Hashable:
        if self.geom.is_corner_thread(self.geom.thread_of(ex.dst)):
            return self._corner_label(ex.dst)
        if self.geom.is_corner_thread(self.geom.thread_of(ex.src)):
            return self._corner_label(ex.src)
        return self._mirrored.label(ex)


@dataclass
class MapReport:
    """Correctness/parallelism analysis of a communicator map."""

    num_communicators: int
    #: Worst case over processes: threads with inter-process communication.
    communicating_threads: int
    #: Worst case over processes: distinct labels used on the process.
    max_labels_per_process: int
    #: Worst case over processes: labels used by >= 2 distinct local
    #: threads (each such label serializes those threads).
    max_conflicting_labels: int
    #: Worst case over processes: largest number of distinct local threads
    #: sharing one label (the per-channel concurrency; 1 = no sharing,
    #: 2 = the "opposite edges share a communicator" of Lesson 2).
    max_threads_per_label: int
    #: Worst case (minimum) over processes of
    #: ``serial groups / communicating threads``; threads sharing any
    #: label are merged into one serial group (union-find). 1.0 means the
    #: map exposes all the available parallelism.
    min_parallel_efficiency: float

    @property
    def parallel_efficiency(self) -> float:
        return self.min_parallel_efficiency


def analyze_map(cmap: CommMap) -> MapReport:
    """Validate and measure a communicator map.

    Matching correctness is by construction (labels are pure functions of
    the exchange, so both endpoints agree); the analysis measures
    parallelism: per process, threads that share a label are merged into
    one serial group, and efficiency = groups / communicating threads.
    """
    geom = cmap.geom
    max_labels = 0
    max_conflicts = 0
    max_sharing = 0
    min_eff: Optional[float] = None
    comm_threads = 0
    for p in geom.procs():
        users: dict[Hashable, set[Coord]] = {}
        for t, _kind, ex in geom.exchanges_of_process(p):
            users.setdefault(cmap.label(ex), set()).add(t)
        threads_here = geom.communicating_threads(p)
        comm_threads = max(comm_threads, len(threads_here))
        max_labels = max(max_labels, len(users))
        conflicts = sum(1 for ts in users.values() if len(ts) > 1)
        max_conflicts = max(max_conflicts, conflicts)
        if users:
            max_sharing = max(max_sharing,
                              max(len(ts) for ts in users.values()))

        # Union-find over threads: sharing any label merges two threads.
        parent: dict[Coord, Coord] = {t: t for t in threads_here}

        def find(a: Coord) -> Coord:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for ts in users.values():
            ts = list(ts)
            for other in ts[1:]:
                ra, rb = find(ts[0]), find(other)
                if ra != rb:
                    parent[ra] = rb
        if threads_here:
            groups = len({find(t) for t in threads_here})
            eff = groups / len(threads_here)
            if min_eff is None or eff < min_eff:
                min_eff = eff
    return MapReport(
        num_communicators=cmap.num_communicators(),
        communicating_threads=comm_threads,
        max_labels_per_process=max_labels,
        max_conflicting_labels=max_conflicts,
        max_threads_per_label=max_sharing,
        min_parallel_efficiency=1.0 if min_eff is None else min_eff,
    )
