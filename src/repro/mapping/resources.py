"""Closed-form resource-requirement formulas from Lesson 3.

The paper quantifies the communicator mechanism's resource hunger for a 3D
27-point stencil with an ``[x, y, z]`` arrangement of threads per process:

- the least number of communicators that expresses all available logical
  communication parallelism::

      2xy + 2yz + 2xz            (faces)
      + 8(xy + yz + xz - 1)      (corner diagonals)
      + 4(xz + yz - z)           (edge diagonals)
      + 4(xy + yz - y)
      + 4(xy + xz - x)

- the minimum number of parallel communication channels actually required,
  which is simply the number of threads that communicate inter-node::

      xyz - (x-2)(y-2)(z-2)

For ``[4, 4, 4]`` (a 64-core node, e.g. AMD EPYC Rome) these give 808
communicators vs 56 channels — over 14x more (the number the paper's
Lesson 3 and Lesson 12 quote).
"""

from __future__ import annotations

from ..errors import MpiUsageError

__all__ = [
    "communicators_required_3d27",
    "min_channels_3d27",
    "communicator_overhead_ratio_3d27",
    "min_channels_2d9",
    "communicating_threads_3d",
    "communicating_threads_2d",
]


def _check_dims(*dims: int) -> None:
    for d in dims:
        if d < 1:
            raise MpiUsageError(f"thread-grid dimensions must be >= 1, got {dims}")


def communicators_required_3d27(x: int, y: int, z: int) -> int:
    """Paper's Lesson 3 formula: least communicators exposing all the
    logical communication parallelism of a 3D 27-point stencil."""
    _check_dims(x, y, z)
    faces = 2 * x * y + 2 * y * z + 2 * x * z
    corners = 8 * (x * y + y * z + x * z - 1)
    edges = (4 * (x * z + y * z - z)
             + 4 * (x * y + y * z - y)
             + 4 * (x * y + x * z - x))
    return faces + corners + edges


def min_channels_3d27(x: int, y: int, z: int) -> int:
    """Minimum parallel channels = threads communicating inter-node
    (threads on the boundary of the thread grid)."""
    _check_dims(x, y, z)
    interior = max(0, (x - 2)) * max(0, (y - 2)) * max(0, (z - 2))
    return x * y * z - interior


#: Alias with the paper's vocabulary.
communicating_threads_3d = min_channels_3d27


def communicator_overhead_ratio_3d27(x: int, y: int, z: int) -> float:
    """Communicators-to-channels ratio (14.43x for [4,4,4])."""
    return communicators_required_3d27(x, y, z) / min_channels_3d27(x, y, z)


def min_channels_2d9(x: int, y: int) -> int:
    """2D analogue: boundary threads of an ``x * y`` thread grid."""
    _check_dims(x, y)
    interior = max(0, (x - 2)) * max(0, (y - 2))
    return x * y - interior


communicating_threads_2d = min_channels_2d9
