"""Partition planning for stencils (Lessons 13-15, Listing 4).

With partitioned communication, a process defines one persistent
partitioned send/receive *per neighbour process face*; the threads on that
face each drive one partition (Listing 4: ``MPI_Psend_init`` to ``n_rank``
with ``tx`` partitions, thread ``tid_x`` driving partition ``tid_x``).

Partitioned operations are persistent and wildcard-free, so the plan is
computed once, for *face* directions only: diagonal exchanges do not map
naturally onto partitions (Lesson 15) — callers fall back to another
mechanism (or fold diagonal data into face messages) for stencils with
diagonals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import MpiUsageError
from .communicators import Coord, StencilGeometry

__all__ = ["FacePlan", "PartitionPlan"]


@dataclass(frozen=True)
class FacePlan:
    """One partitioned operation: all of a process's traffic through one
    face toward one neighbour process."""

    direction: Coord
    neighbor_proc: Coord
    #: Number of partitions = threads on the face.
    partitions: int
    #: Face-local partition index per participating thread.
    partition_of: dict[Coord, int]

    @property
    def threads(self) -> list[Coord]:
        return sorted(self.partition_of)


class PartitionPlan:
    """Per-process partitioned-operation plan for a stencil's faces."""

    def __init__(self, geom: StencilGeometry):
        for d in geom.stencil:
            if sum(abs(c) for c in d) != 1:
                raise MpiUsageError(
                    "partitioned plans support face (non-diagonal) stencils "
                    "only — diagonal exchanges do not map onto partitions "
                    "(Lesson 15); use a 5-point/7-point stencil or another "
                    "mechanism")
        self.geom = geom

    def faces(self, p: Coord) -> list[FacePlan]:
        """The partitioned operations process ``p`` participates in."""
        geom = self.geom
        plans = []
        for d in sorted(geom.stencil):
            axis = next(i for i, c in enumerate(d) if c != 0)
            neighbor = tuple(pi + di for pi, di in zip(p, d))
            if not all(0 <= ni < gi for ni, gi in
                       zip(neighbor, geom.proc_grid)):
                continue
            # Threads on the face: extreme layer along `axis`.
            layer = geom.thread_grid[axis] - 1 if d[axis] > 0 else 0
            part_of: dict[Coord, int] = {}
            for t in geom.threads():
                if t[axis] != layer:
                    continue
                # Face-local linear index over the remaining axes.
                idx = 0
                for i, (c, n) in enumerate(zip(t, geom.thread_grid)):
                    if i == axis:
                        continue
                    idx = idx * n + c
                part_of[t] = idx
            plans.append(FacePlan(direction=d, neighbor_proc=neighbor,
                                  partitions=len(part_of),
                                  partition_of=part_of))
        return plans

    def total_operations(self, p: Coord) -> int:
        """Partitioned send+recv pairs the process needs (2 per face)."""
        return 2 * len(self.faces(p))
