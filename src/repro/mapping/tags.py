"""Tag encoding for the "tags with hints" mechanism (Lessons 6-9,
Listing 2).

MPI+threads applications already encode thread ids into tags (hypre,
Smilei); this module provides the Listing 2 encoding::

    tag = src_tid << (NUM_TID_BITS + NUM_APP_BITS)
        | dst_tid << NUM_APP_BITS
        | app_tag

together with the Info bundles that (a) relax the semantics the pattern
does not need and (b) tell the (MPICH-like) library which bits carry the
parallelism information. The schema validates bit budgets against the
modelled ``TAG_BITS``-wide tag space, raising
:class:`~repro.errors.TagOverflowError` when thread bits plus application
bits no longer fit — Lesson 9's tag-overflow hazard, made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MpiUsageError, TagOverflowError
from ..mpi.info import Info
from ..mpi.vci import TAG_BITS

__all__ = ["TagSchema", "listing2_info", "overtaking_only_info"]


@dataclass(frozen=True)
class TagSchema:
    """Bit layout of a parallelism-encoding tag.

    ``placement='MSB'`` puts the src/dst thread fields at the top of the
    tag (Listing 2); ``'LSB'`` puts them at the bottom.
    """

    num_tid_bits: int
    num_app_bits: int
    placement: str = "MSB"

    def __post_init__(self):
        if self.num_tid_bits < 0 or self.num_app_bits < 0:
            raise MpiUsageError("bit counts must be non-negative")
        if self.placement not in ("MSB", "LSB"):
            raise MpiUsageError(f"placement must be MSB or LSB, "
                                f"got {self.placement!r}")
        if 2 * self.num_tid_bits + self.num_app_bits > TAG_BITS:
            raise TagOverflowError(
                f"tag layout needs {2 * self.num_tid_bits + self.num_app_bits} "
                f"bits but the tag space has only {TAG_BITS} — encoding "
                "parallelism information into tags exacerbates tag overflow "
                "(Lesson 9)")

    @property
    def max_threads(self) -> int:
        return 1 << self.num_tid_bits

    @property
    def max_app_tag(self) -> int:
        return (1 << self.num_app_bits) - 1

    def encode(self, src_tid: int, dst_tid: int, app_tag: int = 0) -> int:
        """Build the wire tag (Listing 2's encoding)."""
        if not 0 <= src_tid < self.max_threads:
            raise TagOverflowError(
                f"src_tid {src_tid} does not fit in {self.num_tid_bits} bits")
        if not 0 <= dst_tid < self.max_threads:
            raise TagOverflowError(
                f"dst_tid {dst_tid} does not fit in {self.num_tid_bits} bits")
        if not 0 <= app_tag <= self.max_app_tag:
            raise TagOverflowError(
                f"app_tag {app_tag} does not fit in {self.num_app_bits} bits")
        if self.placement == "MSB":
            src_shift = TAG_BITS - self.num_tid_bits
            dst_shift = TAG_BITS - 2 * self.num_tid_bits
            return (src_tid << src_shift) | (dst_tid << dst_shift) | app_tag
        return (dst_tid << self.num_tid_bits) | src_tid \
            | (app_tag << (2 * self.num_tid_bits))

    def decode(self, tag: int) -> tuple[int, int, int]:
        """Return ``(src_tid, dst_tid, app_tag)``."""
        mask = self.max_threads - 1
        if self.placement == "MSB":
            src = (tag >> (TAG_BITS - self.num_tid_bits)) & mask
            dst = (tag >> (TAG_BITS - 2 * self.num_tid_bits)) & mask
            app = tag & ((1 << (TAG_BITS - 2 * self.num_tid_bits)) - 1)
        else:
            src = tag & mask
            dst = (tag >> self.num_tid_bits) & mask
            app = tag >> (2 * self.num_tid_bits)
        return src, dst, app


def listing2_info(n_threads: int, num_tid_bits: int,
                  placement: str = "MSB") -> Info:
    """The full Listing 2 hint bundle: relax wildcards, request one VCI per
    thread, and describe the tag layout one-to-one."""
    if n_threads > (1 << num_tid_bits):
        raise MpiUsageError(
            f"{n_threads} threads do not fit in {num_tid_bits} tag bits")
    info = Info()
    info.set("mpi_assert_no_any_tag", "true")
    info.set("mpi_assert_no_any_source", "true")
    info.set("mpich_num_vcis", n_threads)
    info.set("mpich_num_tag_bits_vci", num_tid_bits)
    info.set("mpich_place_tag_bits_local_vci", placement)
    info.set("mpich_tag_vci_hash_type", "one-to-one")
    return info


def overtaking_only_info(num_vcis: int) -> Info:
    """Only ``allow_overtaking``: the application still needs wildcards, so
    just the sends become logically parallel (Section II-A)."""
    info = Info()
    info.set("mpi_assert_allow_overtaking", "true")
    info.set("mpich_num_vcis", num_vcis)
    return info
