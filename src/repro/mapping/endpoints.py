"""Endpoint addressing for stencils (Lesson 10, Listing 3).

With user-visible endpoints, each thread drives its own endpoint and
addresses the partner *thread* directly by its global endpoint rank —
"MPI-everywhere-like addressing". The helpers here compute those ranks for
a :class:`~repro.mapping.communicators.StencilGeometry` exactly as Listing
3 does for 2D (``n_ep = n_rank*N_THREADS + tx*(ty-1) + tid_x`` etc.),
generalized to any dimensionality and stencil.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MpiUsageError
from .communicators import Coord, StencilGeometry

__all__ = ["EndpointAddressing"]


class EndpointAddressing:
    """Maps (process, thread) to endpoint ranks and partner endpoints."""

    def __init__(self, geom: StencilGeometry):
        self.geom = geom
        self.threads_per_proc = 1
        for n in geom.thread_grid:
            self.threads_per_proc *= n

    def linear_proc(self, p: Coord) -> int:
        """Row-major linear rank of a process coordinate."""
        rank = 0
        for c, n in zip(p, self.geom.proc_grid):
            rank = rank * n + c
        return rank

    def ep_rank(self, p: Coord, t: Coord) -> int:
        """Endpoint rank of thread ``t`` on process ``p`` (Listing 3
        layout: process rank * N_THREADS + linear tid)."""
        return self.linear_proc(p) * self.threads_per_proc \
            + self.geom.linear_tid(t)

    def partner_ep(self, p: Coord, t: Coord, direction: Coord
                   ) -> Optional[int]:
        """Endpoint rank of the partner patch in ``direction``.

        Returns None when the neighbour is outside the domain, and the
        partner endpoint rank otherwise — including in-process partners
        (the caller decides whether to use shared memory for those, as the
        paper's listings do).
        """
        if direction not in self.geom.stencil:
            raise MpiUsageError(f"direction {direction} not in the stencil")
        g = tuple(pi * ti + ci for pi, ti, ci in
                  zip(p, self.geom.thread_grid, t))
        g2 = tuple(a + b for a, b in zip(g, direction))
        if not self.geom.in_domain(g2):
            return None
        return self.ep_rank(self.geom.proc_of(g2), self.geom.thread_of(g2))

    def is_remote(self, p: Coord, t: Coord, direction: Coord) -> bool:
        """True when the partner in ``direction`` lives on another process
        (i.e. the exchange needs MPI, not shared memory)."""
        g = tuple(pi * ti + ci for pi, ti, ci in
                  zip(p, self.geom.thread_grid, t))
        g2 = tuple(a + b for a, b in zip(g, direction))
        return self.geom.in_domain(g2) and self.geom.proc_of(g2) != p
