"""Mechanism-mapping helpers — the paper's core subject.

How each of the three designs exposes a stencil's (and other patterns')
communication parallelism:

- :mod:`repro.mapping.communicators` — communicator maps with mirroring
  (Lessons 1-5, Fig 4) and their analysis;
- :mod:`repro.mapping.tags` — tag encoding + MPI-4.0/MPICH hint bundles
  (Lessons 6-9, Listing 2);
- :mod:`repro.mapping.endpoints` — endpoint-rank addressing (Lessons
  10-12, Listing 3);
- :mod:`repro.mapping.partitioned` — partition plans (Lessons 13-15,
  Listing 4);
- :mod:`repro.mapping.resources` — Lesson 3's closed-form resource counts.
"""

from .communicators import (
    STENCIL_2D_5PT,
    STENCIL_2D_9PT,
    STENCIL_3D_7PT,
    STENCIL_3D_27PT,
    CommMap,
    CornerOptimizedCommMap,
    Exchange,
    MapReport,
    MirroredCommMap,
    NaiveCommMap,
    StencilGeometry,
    analyze_map,
)
from .endpoints import EndpointAddressing
from .partitioned import FacePlan, PartitionPlan
from .resources import (
    communicator_overhead_ratio_3d27,
    communicators_required_3d27,
    min_channels_2d9,
    min_channels_3d27,
)
from .tags import TagSchema, listing2_info, overtaking_only_info

__all__ = [
    "STENCIL_2D_5PT", "STENCIL_2D_9PT", "STENCIL_3D_7PT", "STENCIL_3D_27PT",
    "CommMap", "CornerOptimizedCommMap", "EndpointAddressing", "Exchange",
    "FacePlan", "MapReport", "MirroredCommMap", "NaiveCommMap",
    "PartitionPlan", "StencilGeometry", "TagSchema", "analyze_map",
    "communicator_overhead_ratio_3d27", "communicators_required_3d27",
    "listing2_info", "min_channels_2d9", "min_channels_3d27",
    "overtaking_only_info",
]
