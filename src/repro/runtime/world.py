"""Cluster construction: nodes, MPI processes, simulated threads.

A :class:`World` assembles the whole simulated machine — simulator, fabric,
nodes with NICs, one :class:`MpiProcess` (with its
:class:`~repro.mpi.library.MpiLibrary`) per rank — and hands out
``COMM_WORLD`` handles. Application code is written as generator functions
("simulated threads") spawned via :meth:`MpiProcess.spawn`.

Typical use::

    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=4)
    for proc in world.procs:
        for tid in range(4):
            proc.spawn(worker(proc, tid))
    world.run()
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from ..check.checker import CheckConfig, Checker
from ..check.report import CheckReport
from ..check.session import default_check
from ..errors import MpiUsageError
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.transport import ReliableTransport, TransportParams
from ..mpi.comm import Communicator
from ..mpi.library import MpiLibrary
from ..netsim.config import NetworkConfig
from ..netsim.fabric import Fabric
from ..netsim.message import WireMessage
from ..netsim.nic import Nic
from ..netsim.topology import ClusterSpec, RoutedFabric
from ..obs.collect import collect_world
from ..obs.metrics import MetricsRegistry
from ..sim.calendar import make_simulator
from ..sim.core import Event, Process, Simulator
from ..sim.random import RandomStreams
from ..sim.sync import Gate
from ..sim.trace import Tracer
from ..snap.session import default_snap_controller

__all__ = ["Node", "MpiProcess", "World"]


class Node:
    """One compute node: a NIC shared by the node's processes."""

    def __init__(self, sim: Simulator, node_id: int, cfg: NetworkConfig,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.node_id = node_id
        self.nic = Nic(sim, cfg.nic, node_id=node_id, metrics=metrics)
        self.procs: list["MpiProcess"] = []

    def deliver(self, msg: WireMessage) -> None:
        """Fabric handler: route an arriving message to its process."""
        self.procs_by_rank[msg.dst_rank].lib.deliver(msg)

    @property
    def procs_by_rank(self) -> dict[int, "MpiProcess"]:
        return {p.rank: p for p in self.procs}


class MpiProcess:
    """One MPI process (rank) with any number of simulated threads."""

    def __init__(self, world: "World", rank: int, node: Node):
        self.world = world
        self.rank = rank
        self.node = node
        self.lib = MpiLibrary(world.sim, world, rank, node, world.cfg,
                              max_vcis=world.max_vcis_per_proc)
        self.comm_world = Communicator(
            self.lib, list(range(world.num_procs)), rank,
            context_id=0, name="COMM_WORLD")
        self.threads: list[Process] = []

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a simulated thread on this process."""
        proc = self.world.sim.spawn(gen, name or f"rank{self.rank}.thread")
        self.threads.append(proc)
        return proc

    def compute(self, seconds: float):
        """Charge ``seconds`` of local computation (``yield proc.compute(x)``)."""
        return self.world.sim.timeout(seconds)

    def shm_exchange(self, nbytes: int):
        """Charge a thread-to-thread shared-memory copy of ``nbytes``
        (the non-MPI path of the paper's listings: ``else: use shared
        memory``)."""
        cpu = self.world.cfg.cpu
        return self.world.sim.timeout(cpu.shm_copy_base
                                      + nbytes / cpu.shm_bandwidth)

    def __repr__(self) -> str:
        return f"<MpiProcess rank={self.rank} node={self.node.node_id}>"


@dataclass
class _Meeting:
    """Rendezvous state for one collective setup call (dup, win create...)."""

    expected: int
    gate: Gate
    contributions: dict[int, Any] = field(default_factory=dict)
    shared: dict[str, Any] = field(default_factory=dict)
    arrived: int = 0
    #: Merged vector clock of all arrivers (checker-only, else None).
    hb_clock: Optional[dict[int, int]] = None


class World:
    """The whole simulated machine plus MPI job.

    Observability is opt-in through two keyword hooks — the documented
    path to instrumented runs (callers should not reach into ``world.sim``
    internals):

    - ``metrics=`` — a :class:`repro.obs.MetricsRegistry`. The world binds
      it to the simulated clock and threads it through every layer (VCI
      locks, issue path, matching engines, NIC contexts, fabric links).
      Call :meth:`finalize_metrics` after the run to harvest structural
      stats (queue high-water marks, context occupancy, link saturation).
    - ``tracer=`` — a :class:`repro.sim.trace.Tracer`; may be constructed
      without a simulator (``Tracer()``), the world binds its clock. Feed
      it to :func:`repro.obs.export_chrome_trace` for a Perfetto timeline.

    Both default to disabled instruments with zero hot-path cost, and
    neither affects simulated timings when enabled: metric recording
    schedules no events, so instrumented and bare runs of the same seed
    produce identical timings.

    A third hook, ``check=``, enables the correctness analyzer
    (:mod:`repro.check`): pass a :class:`repro.check.CheckConfig` (or
    ``True`` for defaults) and read :meth:`check_report` after the run.
    Like the instruments it is observer-only — simulated timings are
    byte-identical with checking on or off.
    """

    def __init__(self, num_nodes: Optional[int] = None,
                 procs_per_node: Optional[int] = None,
                 threads_per_proc: Optional[int] = None,
                 cfg: Optional[NetworkConfig] = None,
                 max_vcis_per_proc: int = 64, seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 faults: Optional[FaultPlan] = None,
                 transport: Optional[TransportParams] = None,
                 check: Optional[CheckConfig | bool] = None,
                 cluster: Optional[ClusterSpec] = None,
                 engine: Optional[str] = None):
        # -- cluster resolution -----------------------------------------
        # The declarative path is `cluster=ClusterSpec(...)`; bare
        # dimension keywords remain first-class sugar for a direct
        # (single-hop) cluster. `cfg=` survives as a deprecation shim
        # mapping onto `ClusterSpec(topology="direct", network=cfg)`.
        if cluster is not None:
            if cfg is not None:
                raise MpiUsageError(
                    "pass either cluster= or the deprecated cfg=, not both "
                    "(put the NetworkConfig in ClusterSpec(network=...))")
            if (num_nodes is not None or procs_per_node is not None
                    or threads_per_proc is not None):
                raise MpiUsageError(
                    "with cluster=, the cluster dimensions come from the "
                    "ClusterSpec (nodes/procs_per_node/threads_per_proc)")
        else:
            if cfg is not None:
                warnings.warn(
                    "World(cfg=...) is deprecated; use "
                    "World(cluster=ClusterSpec(..., network=cfg)) — see "
                    "docs/model.md (migration note) and docs/topology.md",
                    DeprecationWarning, stacklevel=2)
            num_nodes = 2 if num_nodes is None else num_nodes
            procs_per_node = 1 if procs_per_node is None else procs_per_node
            threads_per_proc = 1 if threads_per_proc is None else threads_per_proc
            if num_nodes < 1 or procs_per_node < 1 or threads_per_proc < 1:
                raise MpiUsageError("world dimensions must be positive")
            cluster = ClusterSpec(nodes=num_nodes,
                                  procs_per_node=procs_per_node,
                                  threads_per_proc=threads_per_proc,
                                  topology="direct", network=cfg)
        self.cluster = cluster
        num_nodes = cluster.nodes
        procs_per_node = cluster.procs_per_node
        threads_per_proc = cluster.threads_per_proc
        # `engine` picks the event-loop implementation ("calendar" is the
        # batched default, "heap" the legacy reference; None defers to
        # REPRO_SIM_ENGINE). Both execute byte-identical event sequences —
        # see repro.sim.calendar — so this only affects host wall-clock.
        self.sim = make_simulator(engine)
        # -- correctness checking (opt-in) ------------------------------
        # check=None adopts the session default (set by `python -m repro
        # check`), check=False forces it off, check=True/CheckConfig(...)
        # turns it on for this world. Installed before any simulation
        # object exists so every task spawn is observed.
        if check is None:
            check = default_check()
        if check is True:
            check = CheckConfig()
        self.checker: Optional[Checker] = None
        if check:
            self.checker = Checker(self.sim, check)
            self.sim.checker = self.checker
        # `is None`, not truthiness: both instruments are falsy when empty.
        if metrics is None:
            metrics = MetricsRegistry(enabled=False)
        if tracer is None:
            tracer = Tracer(enabled=False)
        self.metrics = metrics.bind_clock(lambda: self.sim.now)
        self.tracer = tracer.bind(self.sim)
        self._metrics_finalized = False
        self.cfg = cluster.network
        self.num_nodes = num_nodes
        self.procs_per_node = procs_per_node
        self.threads_per_proc = threads_per_proc
        self.num_procs = num_nodes * procs_per_node
        self.max_vcis_per_proc = max_vcis_per_proc
        self.rng = RandomStreams(seed)
        #: The bound interconnect graph, or None on a direct (single-hop)
        #: cluster — in which case the fabric is the legacy `Fabric` and
        #: timing is byte-identical to the pre-ClusterSpec code path.
        self.topology = cluster.build_topology()
        if self.topology is None:
            self.fabric = Fabric(self.sim, self.cfg.fabric,
                                 metrics=self.metrics, tracer=self.tracer)
        else:
            self.fabric = RoutedFabric(self.sim, self.cfg.fabric,
                                       self.topology, metrics=self.metrics,
                                       tracer=self.tracer)

        self.nodes = [Node(self.sim, i, self.cfg, metrics=self.metrics)
                      for i in range(num_nodes)]
        self.procs: list[MpiProcess] = []
        for node in self.nodes:
            self.fabric.register_node(node.node_id, node.deliver)
        for rank in range(self.num_procs):
            node = self.nodes[rank // procs_per_node]
            proc = MpiProcess(self, rank, node)
            node.procs.append(proc)
            self.procs.append(proc)

        # -- fault injection + reliable transport (opt-in) -------------
        # With a fault plan, the fabric and NICs consult one injector
        # (seeded by the world seed, so the fault schedule reproduces per
        # seed) and every process gets a ReliableTransport restoring MPI's
        # delivery guarantees. Passing transport= alone runs the reliable
        # protocol on a lossless fabric (useful for overhead studies).
        self.fault_plan = faults
        #: Installed background-traffic session, set by
        #: :func:`repro.netsim.traffic.install_traffic`; None when the
        #: world runs without background load.
        self.traffic = None
        self.injector: Optional[FaultInjector] = None
        self.transport_params: Optional[TransportParams] = None
        if faults is not None:
            self.injector = FaultInjector(faults, seed=seed)
            self.injector.bind(self.metrics, self.tracer)
            self.fabric.injector = self.injector
            for node in self.nodes:
                node.nic.attach_fault_injector(self.injector)
        if faults is not None or transport is not None:
            self.transport_params = transport or TransportParams()
            for proc in self.procs:
                proc.lib.transport = ReliableTransport(
                    proc.lib, self.transport_params)
        self.sim.add_diagnostic(self._pending_mpi_report)

        # Context ids are allocated in strides of four per communicator:
        # +0 point-to-point, +1 collectives, +2 partitioned, +3 reserved.
        # COMM_WORLD holds 0..3.
        self._next_context = itertools.count(4, 4)
        self._meetings: dict[Any, _Meeting] = {}

        # -- snapshot / record-replay session (opt-in) ------------------
        # Like check=, a session default installed by `python -m repro
        # replay` (or snap.recording()) adopts this world: run()/run_all()
        # then execute in slices with checkpoint hooks at step boundaries.
        # Slicing is invisible to the simulation — event order and all
        # simulated results are byte-identical to an unsliced run.
        self._snap = default_snap_controller()
        if self._snap is not None:
            self._snap.attach(self)

    # ------------------------------------------------------------------
    def _pending_mpi_report(self) -> list[str]:
        """Deadlock-diagnostic lines: per-rank, per-VCI pending MPI state.

        Registered with the simulator so that when a run deadlocks, the
        error names what each rank was still waiting for — posted receives
        that never matched, unexpected messages nobody received, stuck
        rendezvous handshakes, and unacknowledged transport packets —
        instead of a bare "deadlock?".
        """
        lines: list[str] = []
        for proc in self.procs:
            lib = proc.lib
            detail: list[str] = []
            for vci in lib.vci_pool.active_vcis:
                engine = vci.engine
                bits = []
                if engine.posted_depth:
                    bits.append(f"{engine.posted_depth} posted recv(s) "
                                "never matched")
                if engine.unexpected_depth:
                    bits.append(f"{engine.unexpected_depth} unexpected "
                                "msg(s) never received")
                if bits:
                    detail.append(f"    vci {vci.index}: " + "; ".join(bits))
            if lib._rndv_sends:
                detail.append(f"    {len(lib._rndv_sends)} rendezvous "
                              "send(s) awaiting CTS")
            if lib._rndv_recvs:
                detail.append(f"    {len(lib._rndv_recvs)} rendezvous "
                              "recv(s) awaiting DATA")
            if lib.transport is not None and lib.transport.unacked:
                detail.extend("    transport " + line for line in
                              lib.transport.pending_description())
            if detail:
                lines.append(f"  rank {proc.rank}:")
                lines.extend(detail)
        if lines:
            lines.insert(0, "pending MPI state per rank:")
        return lines

    def proc(self, rank: int) -> MpiProcess:
        return self.procs[rank]

    def comm_world(self, rank: int) -> Communicator:
        return self.procs[rank].comm_world

    def alloc_context_id(self) -> int:
        """Allocate a fresh (even) context id, globally consistent."""
        return next(self._next_context)

    # ------------------------------------------------------------------
    def meet(self, key: Any, nmembers: int, rank: int,
             contribution: Any = None,
             alloc: Optional[Callable[[], dict]] = None,
             finalize: Optional[Callable[["_Meeting"], None]] = None
             ) -> Generator[Event, Any, _Meeting]:
        """Rendezvous of ``nmembers`` participants under ``key``.

        Used by collective *setup* operations (Comm_dup, endpoint and
        window creation): every participant blocks until all have arrived,
        contributions are exchanged, and the first arriver runs ``alloc``
        to populate the meeting's shared dictionary (e.g. allocate a
        context id that all members must agree on). ``finalize`` runs once,
        by the *last* arriver, after all contributions are in — for
        allocations whose size depends on the contributions (Comm_split's
        per-color context ids). Setup calls are outside every benchmark's
        critical path, so the rendezvous itself is time-free by design.
        """
        meeting = self._meetings.get(key)
        if meeting is None:
            meeting = _Meeting(expected=nmembers, gate=Gate(self.sim))
            if alloc is not None:
                meeting.shared.update(alloc())
            self._meetings[key] = meeting
        if meeting.expected != nmembers:
            raise MpiUsageError(
                f"meeting {key!r} size mismatch: {meeting.expected} vs {nmembers}")
        if rank in meeting.contributions:
            raise MpiUsageError(f"rank {rank} joined meeting {key!r} twice")
        meeting.contributions[rank] = contribution
        meeting.arrived += 1
        chk = self.sim.checker
        if chk is not None:
            chk.meet_arrive(meeting)
        if meeting.arrived == meeting.expected:
            del self._meetings[key]
            if finalize is not None:
                finalize(meeting)
            meeting.gate.open()
        else:
            yield from meeting.gate.wait()
        if chk is not None:
            chk.meet_depart(meeting)
        return meeting

    # ------------------------------------------------------------------
    def launch(self, fn: Callable[[MpiProcess, int], Generator],
               threads_per_proc: Optional[int] = None) -> list[Process]:
        """Spawn ``fn(proc, tid)`` on every process for every thread id."""
        nt = threads_per_proc or self.threads_per_proc
        tasks = []
        for proc in self.procs:
            for tid in range(nt):
                tasks.append(proc.spawn(fn(proc, tid),
                                        name=f"rank{proc.rank}.t{tid}"))
        return tasks

    def run(self, until: Optional[float | Event] = None,
            max_steps: Optional[int] = None) -> Any:
        if self._snap is not None:
            return self._snap.drive(self, until, max_steps)
        return self.sim.run(until=until, max_steps=max_steps)

    def finalize_metrics(self) -> None:
        """Harvest end-of-run structural metrics into ``self.metrics``.

        Fills the gauges that are cheaper to read once than to track live:
        per-VCI lock totals and queue high-water marks, matching-queue
        depths, NIC context occupancy and oversubscription, fabric link
        saturation. Safe to call on a disabled registry (no-op) and safe
        to call more than once (values are overwritten, not accumulated).
        """
        if not self.metrics.enabled:
            return
        collect_world(self, self.metrics)
        self._metrics_finalized = True

    def check_report(self) -> CheckReport:
        """The correctness checker's report for this world.

        Runs the end-of-run scans (lock-order cycles, leaked requests and
        windows) on first call; idempotent afterwards. Without
        ``check=`` the report is trivially clean.
        """
        if self.checker is None:
            return CheckReport([], mode="warn")
        return self.checker.finalize()

    def run_all(self, tasks: Iterable[Process],
                max_steps: Optional[int] = None) -> list[Any]:
        """Run until every task in ``tasks`` has finished; returns their
        values (raises if any failed)."""
        gather = self.sim.all_of(list(tasks))
        if self._snap is not None:
            return self._snap.drive(self, gather, max_steps)
        return self.sim.run(until=gather, max_steps=max_steps)

    @property
    def now(self) -> float:
        return self.sim.now
