"""Cluster runtime: world builder, nodes, processes, execution modes."""

from .world import MpiProcess, Node, World

__all__ = ["MpiProcess", "Node", "World"]
