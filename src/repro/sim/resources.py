"""Rate-limited serial resources.

A :class:`FIFOServer` models a hardware unit that serves one request at a
time with a fixed (or per-request) service time — exactly the behaviour of
a NIC hardware context with a per-message issue gap ``g`` in the LogGP
model: back-to-back messages depart no faster than one per ``g`` seconds.

Unlike a :class:`~repro.sim.sync.Lock`, a ``FIFOServer`` does not require a
cooperating process to release it: a request occupies the server for its
service time and the completion event fires automatically. This keeps the
hot path (millions of simulated messages) allocation-light: one event per
request, no process switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .core import Event, Simulator

__all__ = ["FIFOServer", "ServerStats"]


@dataclass
class ServerStats:
    """Utilization counters for a :class:`FIFOServer`."""

    requests: int = 0
    busy_time: float = 0.0
    total_queue_delay: float = 0.0

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    @property
    def mean_queue_delay(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_queue_delay / self.requests


class FIFOServer:
    """A serial server with per-request service times.

    ``submit(service_time)`` returns an :class:`Event` that triggers when
    the request finishes service. Requests are serviced in submission
    order; a request begins service at ``max(now, previous completion)``.
    """

    __slots__ = ("sim", "name", "default_service_time", "_free_at", "stats")

    def __init__(self, sim: Simulator, service_time: float = 0.0,
                 name: str = "server"):
        if service_time < 0:
            raise ValueError("service time must be non-negative")
        self.sim = sim
        self.name = name
        self.default_service_time = service_time
        self._free_at = 0.0
        self.stats = ServerStats()

    def submit(self, service_time: Optional[float] = None) -> Event:
        """Enqueue one request; returns its completion event."""
        st = self.default_service_time if service_time is None else service_time
        if st < 0:
            raise ValueError("service time must be non-negative")
        now = self.sim.now
        start = max(now, self._free_at)
        done_at = start + st
        self._free_at = done_at
        self.stats.requests += 1
        self.stats.busy_time += st
        self.stats.total_queue_delay += start - now
        # Hand-built pre-triggered event: submit() runs once per simulated
        # message, so the Event.__init__ dispatch is worth skipping.
        event = Event.__new__(Event)
        event.sim = self.sim
        event.callbacks = []
        event._value = None
        event._exc = None
        event._triggered = True
        event._processed = False
        self.sim._enqueue(event, done_at - now, priority=1)
        return event

    def occupy(self, service_time: Optional[float] = None) -> float:
        """Like :meth:`submit` but only returns the completion *time*.

        Useful when the caller does not need to wait on the completion (for
        example a fire-and-forget doorbell ring) — no event is allocated.
        """
        st = self.default_service_time if service_time is None else service_time
        now = self.sim.now
        start = max(now, self._free_at)
        self._free_at = start + st
        self.stats.requests += 1
        self.stats.busy_time += st
        self.stats.total_queue_delay += start - now
        return self._free_at

    @property
    def free_at(self) -> float:
        """Time at which the server next becomes idle."""
        return max(self._free_at, self.sim.now)

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a request submitted now."""
        return max(0.0, self._free_at - self.sim.now)
