"""Discrete-event simulation kernel for the MPI+threads reproduction.

Everything in :mod:`repro` runs on this kernel: MPI processes and threads
are cooperative tasks (:class:`~repro.sim.core.Process`), NIC hardware
contexts are :class:`~repro.sim.resources.FIFOServer` instances, and
contention is modelled with the primitives in :mod:`repro.sim.sync`.
"""

from .calendar import (
    ENGINE_ENV,
    ENGINES,
    CalendarSimulator,
    default_engine,
    make_simulator,
)
from .core import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .random import RandomStreams
from .resources import FIFOServer, ServerStats
from .sync import Barrier, ContentionStats, Gate, Lock, Mailbox, Semaphore
from .trace import (
    Category,
    NullTracer,
    SpanPairing,
    TraceCategory,
    TraceRecord,
    Tracer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "CalendarSimulator",
    "Category",
    "ContentionStats",
    "ENGINES",
    "ENGINE_ENV",
    "Event",
    "FIFOServer",
    "Gate",
    "Lock",
    "Mailbox",
    "NullTracer",
    "Process",
    "RandomStreams",
    "Semaphore",
    "ServerStats",
    "SimulationError",
    "Simulator",
    "default_engine",
    "make_simulator",
    "SpanPairing",
    "Timeout",
    "TraceCategory",
    "TraceRecord",
    "Tracer",
]
