"""Typed event tracing for simulations.

A :class:`Tracer` collects ``(time, category, payload)`` records. Benchmarks
use it to derive per-phase timings (e.g. halo-exchange time vs compute
time), tests use it to assert ordering properties, and the observability
subsystem (:mod:`repro.obs`) turns begin/end pairs into Chrome-trace spans.

Categories are *typed*: every record carries a :class:`Category` instance
from the frozen :class:`TraceCategory` namespace instead of a raw string.
This keeps category names collision-free across layers, lets the exporter
know which records pair up into spans (``kind``/``pair``), and gives each
record a layer ("mpi", "vci", "nic", "fabric", "sim", "app") for grouping.
Ad-hoc categories are still possible through :meth:`TraceCategory.custom`
and :meth:`TraceCategory.span` — raw string literals at ``emit()`` call
sites are rejected by the lint test in ``tests/test_obs.py``.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from .core import Simulator

__all__ = [
    "Category",
    "TraceCategory",
    "TraceRecord",
    "SpanPairing",
    "Tracer",
    "NullTracer",
]


@dataclass(frozen=True)
class Category:
    """One trace category: a name plus exporter metadata.

    ``kind`` is ``"instant"``, ``"begin"`` or ``"end"``; begin/end
    categories name their counterpart in ``pair`` so exporters can match
    them into spans without guessing.
    """

    name: str
    layer: str = "app"
    kind: str = "instant"
    pair: str = ""

    def __str__(self) -> str:
        return self.name


#: Global interning table: one :class:`Category` object per name, so
#: records can be filtered by identity.
_CATEGORIES: dict[str, Category] = {}


def _define(name: str, layer: str = "app", kind: str = "instant",
            pair: str = "") -> Category:
    cat = Category(name, layer, kind, pair)
    _CATEGORIES[name] = cat
    return cat


def as_category(value: Union[Category, str]) -> Category:
    """Coerce a category name to its interned :class:`Category`."""
    if isinstance(value, Category):
        return value
    return TraceCategory.custom(value)


class _FrozenNamespace(type):
    """Metaclass making the TraceCategory namespace immutable."""

    def __setattr__(cls, name: str, value: Any) -> None:
        raise AttributeError(
            f"TraceCategory is frozen; use TraceCategory.custom() or "
            f"TraceCategory.span() to define ad-hoc categories "
            f"(attempted to set {name!r})")

    def __delattr__(cls, name: str) -> None:
        raise AttributeError("TraceCategory is frozen")


class TraceCategory(metaclass=_FrozenNamespace):
    """Frozen namespace of the library's trace categories.

    The predefined members cover the hot layers the observability
    subsystem instruments; applications extend the namespace through
    :meth:`custom` (instant events) and :meth:`span` (begin/end pairs)
    rather than by passing raw strings to :meth:`Tracer.emit`.
    """

    # -- MPI library: issue path ------------------------------------------
    SEND_POST = _define("mpi.send_post", "mpi")
    RECV_POST = _define("mpi.recv_post", "mpi")
    ISSUE_BEGIN = _define("mpi.issue.begin", "mpi", "begin", "mpi.issue.end")
    ISSUE_END = _define("mpi.issue.end", "mpi", "end", "mpi.issue.begin")
    ISSUE_ASYNC = _define("mpi.issue.async", "mpi")

    # -- VCI layer: lock + doorbell critical sections ---------------------
    LOCK_WAIT_BEGIN = _define("vci.lock.begin", "vci", "begin",
                              "vci.lock.end")
    LOCK_WAIT_END = _define("vci.lock.end", "vci", "end", "vci.lock.begin")
    DOORBELL_BEGIN = _define("vci.doorbell.begin", "vci", "begin",
                             "vci.doorbell.end")
    DOORBELL_END = _define("vci.doorbell.end", "vci", "end",
                           "vci.doorbell.begin")

    # -- matching engine ---------------------------------------------------
    MATCH_BEGIN = _define("mpi.match.begin", "mpi", "begin", "mpi.match.end")
    MATCH_END = _define("mpi.match.end", "mpi", "end", "mpi.match.begin")
    MATCH_UNEXPECTED = _define("mpi.match.unexpected", "mpi")

    # -- NIC / fabric ------------------------------------------------------
    MSG_INJECT = _define("nic.inject", "nic")
    SHARED_CTX_POST = _define("nic.shared_ctx_post", "nic")
    MSG_DELIVER = _define("fabric.deliver", "fabric")

    # -- fault injection (repro.faults) ------------------------------------
    FAULT_DROP = _define("fault.drop", "fault")
    FAULT_DUP = _define("fault.dup", "fault")
    FAULT_CORRUPT = _define("fault.corrupt", "fault")
    FAULT_DELAY = _define("fault.delay", "fault")
    LINK_DROP = _define("fault.link_drop", "fault")
    CTX_FAILOVER = _define("nic.ctx_failover", "nic")

    # -- reliable transport -------------------------------------------------
    RETRANSMIT = _define("transport.retransmit", "transport")
    DUP_SUPPRESSED = _define("transport.dup_suppressed", "transport")
    CORRUPT_DROP = _define("transport.corrupt_drop", "transport")
    #: Loss-recovery span: first retransmission of a packet to the ACK
    #: that finally clears it.
    RECOVERY_BEGIN = _define("transport.recovery.begin", "transport",
                             "begin", "transport.recovery.end")
    RECOVERY_END = _define("transport.recovery.end", "transport", "end",
                           "transport.recovery.begin")

    # -- generic application phases ---------------------------------------
    PHASE_BEGIN = _define("app.phase.begin", "app", "begin", "app.phase.end")
    PHASE_END = _define("app.phase.end", "app", "end", "app.phase.begin")

    # -- namespace helpers -------------------------------------------------
    @staticmethod
    def custom(name: str, layer: str = "app", kind: str = "instant",
               pair: str = "") -> Category:
        """Return the interned category ``name``, defining it on first use."""
        cat = _CATEGORIES.get(name)
        if cat is None:
            cat = _define(name, layer, kind, pair)
        return cat

    @staticmethod
    def span(name: str, layer: str = "app") -> tuple[Category, Category]:
        """Define (or fetch) a ``name.begin``/``name.end`` category pair."""
        begin = TraceCategory.custom(f"{name}.begin", layer, "begin",
                                     f"{name}.end")
        end = TraceCategory.custom(f"{name}.end", layer, "end",
                                   f"{name}.begin")
        return begin, end

    @staticmethod
    def get(name: str) -> Optional[Category]:
        """Look up a category by name without defining it."""
        return _CATEGORIES.get(name)

    @staticmethod
    def all() -> tuple[Category, ...]:
        """All currently defined categories, sorted by name."""
        return tuple(_CATEGORIES[k] for k in sorted(_CATEGORIES))


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace event: (time, category, payload)."""

    time: float
    category: Category
    payload: Any


@dataclass
class SpanPairing:
    """Result of pairing begin/end records into spans.

    ``unmatched_begins`` counts begin records with no end; ``orphan_ends``
    counts end records that arrived with no outstanding begin (previously
    these were dropped silently).
    """

    spans: list[tuple[float, float]] = field(default_factory=list)
    unmatched_begins: int = 0
    orphan_ends: int = 0

    @property
    def total_time(self) -> float:
        return sum(stop - start for start, stop in self.spans)


class Tracer:
    """Collects trace records; filterable by category.

    ``Tracer(enabled=False)`` is the zero-overhead null tracer (the old
    :class:`NullTracer`). ``sim`` may be omitted and bound later through
    :meth:`bind` — :class:`~repro.runtime.world.World` does this for
    tracers passed to its ``tracer=`` keyword.
    """

    def __init__(self, sim: Optional[Simulator] = None, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._span_seq = 0

    def bind(self, sim: Simulator) -> "Tracer":
        """Attach this tracer to a simulator clock (idempotent)."""
        if self.sim is None:
            self.sim = sim
        return self

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def span_id(self) -> int:
        """A fresh id correlating one begin record with its end record."""
        self._span_seq += 1
        return self._span_seq

    def emit(self, category: Union[Category, str], payload: Any = None) -> None:
        if self.enabled:
            self.records.append(
                TraceRecord(self.now, as_category(category), payload))

    def select(self, category: Union[Category, str]) -> list[TraceRecord]:
        cat = as_category(category)
        return [r for r in self.records if r.category is cat]

    def count(self, category: Union[Category, str]) -> int:
        cat = as_category(category)
        return sum(1 for r in self.records if r.category is cat)

    def pair_spans(self, begin: Union[Category, str],
                   end: Union[Category, str]) -> SpanPairing:
        """Pair up begin/end records (FIFO) into a :class:`SpanPairing`.

        O(n) over the record list (the begin queue is a deque) and keeps a
        count of orphan end records instead of dropping them silently.
        """
        bcat, ecat = as_category(begin), as_category(end)
        starts: deque[float] = deque()
        pairing = SpanPairing()
        for r in self.records:
            if r.category is bcat:
                starts.append(r.time)
            elif r.category is ecat:
                if starts:
                    pairing.spans.append((starts.popleft(), r.time))
                else:
                    pairing.orphan_ends += 1
        pairing.unmatched_begins = len(starts)
        return pairing

    def spans(self, begin: Union[Category, str],
              end: Union[Category, str]) -> list[tuple[float, float]]:
        """Pair up begin/end records (FIFO) into (start, stop) spans."""
        return self.pair_spans(begin, end).spans

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """Deprecated alias for ``Tracer(enabled=False)``."""

    def __init__(self, sim: Optional[Simulator] = None):
        warnings.warn(
            "NullTracer is deprecated; use Tracer(enabled=False) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(sim, enabled=False)
