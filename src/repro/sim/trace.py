"""Lightweight event tracing for simulations.

A :class:`Tracer` collects ``(time, category, payload)`` records. Benchmarks
use it to derive per-phase timings (e.g. halo-exchange time vs compute
time) and tests use it to assert ordering properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from .core import Simulator

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    payload: Any


class Tracer:
    """Collects trace records; filterable by category."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, category: str, payload: Any = None) -> None:
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, payload))

    def select(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def spans(self, begin: str, end: str) -> list[tuple[float, float]]:
        """Pair up begin/end records (FIFO) into (start, stop) spans."""
        starts: list[float] = []
        out: list[tuple[float, float]] = []
        for r in self.records:
            if r.category == begin:
                starts.append(r.time)
            elif r.category == end and starts:
                out.append((starts.pop(0), r.time))
        return out

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything (for hot benchmark runs)."""

    def __init__(self, sim: Optional[Simulator] = None):
        super().__init__(sim if sim is not None else Simulator(), enabled=False)

    def emit(self, category: str, payload: Any = None) -> None:
        pass
