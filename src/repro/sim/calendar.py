"""Batched calendar-queue event scheduler (the kernel's fast engine).

:class:`CalendarSimulator` replaces the binary heap of
:class:`~repro.sim.core.Simulator` with a *bucketed* schedule: one bucket
per distinct timestamp, drained in a single pass. The workloads this
kernel runs are heavily time-clustered — every rank's threads wake at the
same tick, a NIC doorbell batch departs together, collective rounds
complete in lockstep — so the heap pays ``O(log n)`` tuple pushes and
pops for events that are, in fact, batch-mates. The calendar pays one
small-heap pop per *distinct timestamp* and a plain list append per
event.

Storage is struct-of-arrays rather than an array of 4-tuples: a bucket
is a flat list of bare events (no per-event tuple allocation), the
priority is the bucket lane (normal bucket vs urgent lane), and the
schedule sequence number lives on the event itself (``Event._seq``) —
it is only ever read back by snapshot capture, never compared during the
drain, because appends are seq-monotone.

Ordering is **byte-identical** to the heap engine. The heap executes in
``(time, priority, seq)`` lexicographic order; the calendar reproduces it
batch-wise:

- buckets are drained in ascending time order (a heap of *distinct*
  times, pushed once per bucket);
- within a bucket, every urgent (priority-0) event runs before every
  normal event, each class in seq (FIFO append) order;
- events scheduled *into the draining bucket* by callbacks are picked up
  in-pass: the drain re-checks the urgent lane before each event, exactly
  matching ``(t, 0, new_seq) < (t, 1, old_seq)``.

Urgent events come only from ``succeed``/``fail``, which always schedule
at the current time (delay 0.0) — so the engine keeps a single
current-time urgent lane instead of one per bucket. A defensive overflow
table preserves correctness if an urgent event is ever scheduled at any
other time.

Engine selection: :func:`make_simulator` builds the engine named by its
argument or the ``REPRO_SIM_ENGINE`` environment variable (``calendar``
by default, ``heap`` for the legacy reference engine). Equivalence is
enforced the same way PR 3 proved indexed-vs-linear matching: the
snapshot digests of ``tests/test_sim_calendar.py`` must agree byte-for-
byte between engines at arbitrary cut points.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Iterator, Optional

from .core import Event, SimulationError, Simulator, Timeout

__all__ = ["CalendarSimulator", "make_simulator", "default_engine",
           "ENGINES", "ENGINE_ENV"]

#: Environment knob naming the default event engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: Recognised engine names, fastest first.
ENGINES = ("calendar", "heap")


def default_engine() -> str:
    """The engine name selected by ``REPRO_SIM_ENGINE`` (else calendar)."""
    name = os.environ.get(ENGINE_ENV, ENGINES[0])
    if name not in ENGINES:
        raise ValueError(
            f"unknown {ENGINE_ENV}={name!r}; expected one of {ENGINES}")
    return name


def make_simulator(engine: Optional[str] = None) -> Simulator:
    """Build a simulator running the named (or default) event engine.

    Both engines execute identical event sequences — the choice affects
    host wall-clock only, proven by digest equality at arbitrary cut
    points (``tests/test_sim_calendar.py``).
    """
    name = engine or default_engine()
    if name == "calendar":
        return CalendarSimulator()
    if name == "heap":
        return Simulator()
    raise ValueError(f"unknown simulator engine {name!r}; "
                     f"expected one of {ENGINES}")


class CalendarSimulator(Simulator):
    """Drop-in :class:`Simulator` with a bucketed same-timestamp schedule.

    Inherits the event/process machinery untouched; overrides only the
    scheduling surface (``timeout``/``_enqueue``) and the run loops. The
    base class's ``_heap`` stays empty — pending events live in the
    calendar structures and are exposed through :meth:`pending_entries`.
    """

    def __init__(self):
        super().__init__()
        #: Min-heap of *distinct* bucket timestamps (each pushed exactly
        #: once, when its bucket is created; popped at batch start).
        self._times: list[float] = []
        #: time -> normal-priority bucket: a flat list of events in
        #: enqueue (= seq) order.
        self._buckets: dict[float, list] = {}
        #: The urgent (priority-0) lane for :attr:`_u_time` — urgent
        #: events are always scheduled at the current time, so one lane
        #: serves every bucket in turn.
        self._u: list = []
        self._ui = 0
        self._u_time = 0.0
        #: Defensive overflow: urgent events at a *non-current* time
        #: (impossible through the public API, preserved for correctness).
        self._uf: dict[float, list] = {}
        #: The bucket currently being drained (None outside a batch) and
        #: its timestamp/drain index. Drain state persists across
        #: ``run_steps`` slices so slicing stays invisible.
        self._cur: Optional[list] = None
        self._cur_time: Optional[float] = None
        self._ci = 0

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        event._seq = self._seq = self._seq + 1
        t = self._now + delay
        if priority:
            # Existing-bucket append is the hot case; the draining
            # bucket's own time is never in the dict (popped at batch
            # start), so a miss distinguishes cur-time from new-time.
            b = self._buckets.get(t)
            if b is not None:
                b.append(event)
            elif t == self._cur_time:
                self._cur.append(event)
            else:
                self._buckets[t] = [event]
                heappush(self._times, t)
            return
        u = self._u
        if t == self._u_time:
            u.append(event)
        elif self._ui >= len(u) and t == self._now:
            # Lane drained: retarget it to the current time (the common
            # shape after a float-horizon run advanced the clock). The
            # run loops process lane events without touching the clock,
            # so only current-time events may enter this way.
            if u:
                del u[:]
            self._ui = 0
            self._u_time = t
            u.append(event)
        else:
            # Urgent at a non-current time while the lane is busy —
            # unreachable via succeed/fail, kept correct regardless.
            fu = self._uf.get(t)
            if fu is None:
                self._uf[t] = [event]
                if t not in self._buckets:
                    self._buckets[t] = []
                    heappush(self._times, t)
            else:
                fu.append(event)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Pooled timeout fast path: recycle a shell straight into its
        bucket — no tuple, no heap push, no callbacks-list allocation
        (recycled shells keep their cleared list attached)."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._processed = False
            t._seq = self._seq = self._seq + 1
            tk = self._now + delay
            b = self._buckets.get(tk)
            if b is not None:
                b.append(t)
            elif tk == self._cur_time:
                self._cur.append(t)
            else:
                self._buckets[tk] = [t]
                heappush(self._times, tk)
            return t
        return Timeout(self, delay, value)

    # -- introspection ----------------------------------------------------
    def _pending(self) -> Iterator[tuple[float, int, int, Event]]:
        """Every pending event as a ``(when, prio, seq, event)`` entry."""
        u = self._u
        for i in range(self._ui, len(u)):
            yield (self._u_time, 0, u[i]._seq, u[i])
        for t, fu in self._uf.items():
            for ev in fu:
                yield (t, 0, ev._seq, ev)
        cur = self._cur
        if cur is not None:
            for i in range(self._ci, len(cur)):
                yield (self._cur_time, 1, cur[i]._seq, cur[i])
        for t, b in self._buckets.items():
            for ev in b:
                yield (t, 1, ev._seq, ev)

    def pending_entries(self) -> list[tuple[float, int, int, Event]]:
        """Pending events in execution order — identical, entry for
        entry, to the heap engine's (the snapshot digest contract)."""
        return sorted(self._pending(), key=lambda e: e[:3])

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when drained."""
        if self._ui < len(self._u):
            return self._u_time
        cur = self._cur
        if cur is not None and self._ci < len(cur):
            return self._cur_time
        best: Optional[float] = self._times[0] if self._times else None
        if self._uf:  # defensive lane may hold an earlier time
            t = min(self._uf)
            if best is None or t < best:
                best = t
        return best

    def queue_empty(self) -> bool:
        """True when no events remain scheduled."""
        return self.peek_time() is None

    # -- batch machinery --------------------------------------------------
    def _merge_urgent(self, fu: list) -> None:
        """Merge an overflow urgent list into the lane, seq-sorted
        (cold path: only reachable through non-API urgent scheduling)."""
        u = self._u
        rest = u[self._ui:] + fu
        rest.sort(key=lambda ev: ev._seq)
        del u[:]
        u.extend(rest)
        self._ui = 0

    def _start_batch(self) -> bool:
        """Select and activate the earliest bucket; False when drained.

        On return the urgent lane targets the batch time and
        ``_cur``/``_ci`` frame the normal bucket. Raises if time would
        move backwards (corrupted schedule). This is the generic (cold)
        path; the run loops inline the common case.
        """
        u = self._u
        ui = self._ui
        times = self._times
        if ui < len(u):
            t = self._u_time
            if times and times[0] == t:
                heappop(times)
                cur = self._buckets.pop(t)
            else:
                cur = []
        elif times:
            t = heappop(times)
            cur = self._buckets.pop(t)
            if u:
                del u[:]
            self._ui = 0
            self._u_time = t
        else:
            return False
        if self._uf:
            fu = self._uf.pop(t, None)
            if fu is not None:
                self._u_time = t
                self._merge_urgent(fu)
        if t < self._now:
            raise SimulationError("time went backwards")
        self._now = t
        self._cur = cur
        self._cur_time = t
        self._ci = 0
        return True

    def _retire_batch(self) -> None:
        """Deactivate a fully drained batch so later same-time enqueues
        open a fresh bucket instead of landing behind the drain index."""
        self._cur = None
        self._cur_time = None
        self._ci = 0
        if self._u:
            del self._u[:]
        self._ui = 0

    # -- execution --------------------------------------------------------
    def step(self) -> None:
        """Process the single next event (slow path; loops inline this)."""
        if self.run_steps(1) == 0:
            raise IndexError("step() on an empty schedule")

    def run_steps(self, n: int, horizon: Optional[float] = None,
                  stop_event: Optional[Event] = None) -> int:
        """Process up to ``n`` events; same contract as the heap engine's
        (early-stop on drained schedule, horizon, or stop_event; the
        remaining events — including a part-drained batch — stay queued).
        """
        if horizon is not None:
            nt = self.peek_time()
            if nt is not None and nt > horizon:
                return 0
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        timeout_cls = Timeout
        typ = type
        refcount = getrefcount
        processed = 0
        u = self._u
        ui = self._ui
        cur = self._cur
        ci = self._ci
        steps = self.steps
        try:
            while processed < n:
                if not u:
                    if cur is not None and ci < len(cur):
                        event = cur[ci]
                        ci += 1
                    else:
                        self._ui = ui
                        self._ci = ci
                        if cur is not None:
                            self._retire_batch()
                        if horizon is not None:
                            nt = self.peek_time()
                            if nt is None or nt > horizon:
                                break
                        if not self._start_batch():
                            break
                        u = self._u
                        ui = self._ui
                        cur = self._cur
                        ci = self._ci
                        continue
                elif ui < len(u):
                    event = u[ui]
                    ui += 1
                else:
                    del u[:]
                    ui = 0
                    continue
                processed += 1
                self.steps = steps = steps + 1
                cbs = event.callbacks
                event._processed = True
                if typ(event) is timeout_cls:
                    # The bucket slot is deliberately left in place: the
                    # pooling proof counts it (event local + getrefcount
                    # arg + cur slot = 3); any other referent pushes the
                    # count past 3 and blocks recycling, exactly as the
                    # heap engine's cleared-slot ==2 proof does.
                    if cbs:
                        try:
                            fn, = cbs
                        except ValueError:
                            event.callbacks = None
                            for fn in cbs:
                                fn(event)
                        else:
                            del cbs[:]
                            fn(event)
                    if len(pool) < pool_max and refcount(event) == 3:
                        event._value = None
                        if event.callbacks is None:
                            event.callbacks = []
                        pool.append(event)
                else:
                    event.callbacks = None
                    if cbs:
                        if len(cbs) == 1:
                            cbs[0](event)
                        else:
                            for fn in cbs:
                                fn(event)
                if stop_event is not None and stop_event._processed:
                    break
        finally:
            self._ui = ui
            self._ci = ci
        return processed

    def _run(self, until: Optional[float | Event], max_steps: Optional[int],
             start_steps: int) -> Any:
        if max_steps is not None:
            return self._run_budgeted(until, max_steps, start_steps)
        if isinstance(until, Event):
            return self._run_until_event(until)
        if until is None:
            self._run_all()
            return None
        horizon = float(until)
        self._run_horizon(horizon)
        self._now = max(self._now, horizon)
        return None

    def _run_budgeted(self, until: Optional[float | Event],
                      max_steps: int, start_steps: int) -> Any:
        """The ``max_steps`` variants, via exact ``run_steps`` slices."""
        if isinstance(until, Event):
            target = until
            while not target._processed:
                left = max_steps - (self.steps - start_steps)
                if left <= 0:
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                if self.run_steps(min(left, 8192), stop_event=target) == 0:
                    raise SimulationError(self._deadlock_report())
            return target.value
        horizon = None if until is None else float(until)
        while True:
            left = max_steps - (self.steps - start_steps)
            chunk = min(left, 8192)
            if chunk > 0 and self.run_steps(chunk, horizon=horizon) == 0:
                break
            if self.steps - start_steps >= max_steps:
                nt = self.peek_time()
                if nt is not None and (horizon is None or nt <= horizon):
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                break
        if horizon is not None:
            self._now = max(self._now, horizon)
        return None

    # The three loops below are textually near-identical on purpose (as
    # the heap engine's are): the fetch/advance/dispatch body is the
    # kernel's innermost loop and a shared helper call per event is
    # measurable across millions of events. Invariants relied on:
    #
    # - Timeouts are never urgent (``Timeout.__init__``/``timeout()``
    #   schedule at PRIORITY_NORMAL and a triggered event cannot be
    #   succeed()ed again), so a Timeout always came from ``cur`` and
    #   ``cur[ci - 1]`` is its slot — left in place and counted by the
    #   ==3 refcount pooling proof (event local + getrefcount arg +
    #   bucket slot); any other referent pushes the count past 3.
    # - The urgent lane is probed by truthiness (``if not u``), so it is
    #   cleared the moment its last event is fetched — a non-empty ``u``
    #   always means undispatched urgent events, and the common (no
    #   urgent) case costs one truth test instead of a ``len`` call.
    # - ``self._now``/``_cur``/``_cur_time``/``_u_time`` are updated at
    #   every batch advance because scheduling calls read them; the drain
    #   indices are flushed in ``finally`` so captures see exact state
    #   even if a callback raises. ``self.steps`` is stored before every
    #   dispatch: observers inside callbacks (the checker's violation
    #   hook records ``sim.steps``) must see the exact per-event count,
    #   same as the heap engine.

    def _run_until_event(self, target: Event) -> Any:
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        timeout_cls = Timeout
        typ = type
        refcount = getrefcount
        buckets = self._buckets
        times = self._times
        u = self._u
        ui = self._ui
        cur = self._cur
        if cur is None:
            cur = self._cur = []
        ci = self._ci
        steps = self.steps
        try:
            while not target._processed:
                if not u:
                    if ci < len(cur):
                        event = cur[ci]
                        ci += 1
                    else:
                        ui = 0
                        if not times or self._uf:
                            self._ui = 0
                            self._ci = ci
                            self._retire_batch()
                            if not self._start_batch():
                                raise SimulationError(self._deadlock_report())
                            u = self._u
                            ui = self._ui
                            cur = self._cur
                            ci = self._ci
                            continue
                        t = heappop(times)
                        if t < self._now:
                            raise SimulationError("time went backwards")
                        cur = self._cur = buckets.pop(t)
                        ci = 0
                        self._u_time = t
                        self._cur_time = t
                        self._now = t
                        continue
                elif ui < len(u):
                    event = u[ui]
                    ui += 1
                else:
                    del u[:]
                    ui = 0
                    continue
                self.steps = steps = steps + 1
                cbs = event.callbacks
                event._processed = True
                if typ(event) is timeout_cls:
                    # The bucket slot is deliberately left in place: the
                    # pooling proof counts it (event local + getrefcount
                    # arg + cur slot = 3); any other referent pushes the
                    # count past 3 and blocks recycling, exactly as the
                    # heap engine's cleared-slot ==2 proof does.
                    if cbs:
                        try:
                            fn, = cbs
                        except ValueError:
                            event.callbacks = None
                            for fn in cbs:
                                fn(event)
                        else:
                            del cbs[:]
                            fn(event)
                    if len(pool) < pool_max and refcount(event) == 3:
                        event._value = None
                        if event.callbacks is None:
                            event.callbacks = []
                        pool.append(event)
                else:
                    event.callbacks = None
                    if cbs:
                        if len(cbs) == 1:
                            cbs[0](event)
                        else:
                            for fn in cbs:
                                fn(event)
        finally:
            self._ui = ui
            self._ci = ci
        return target.value

    def _run_all(self) -> None:
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        timeout_cls = Timeout
        typ = type
        refcount = getrefcount
        buckets = self._buckets
        times = self._times
        u = self._u
        ui = self._ui
        cur = self._cur
        if cur is None:
            cur = self._cur = []
        ci = self._ci
        steps = self.steps
        try:
            while True:
                if not u:
                    if ci < len(cur):
                        event = cur[ci]
                        ci += 1
                    else:
                        ui = 0
                        if not times or self._uf:
                            self._ui = 0
                            self._ci = ci
                            self._retire_batch()
                            if not self._start_batch():
                                ci = self._ci
                                cur = self._cur
                                return
                            u = self._u
                            ui = self._ui
                            cur = self._cur
                            ci = self._ci
                            continue
                        t = heappop(times)
                        if t < self._now:
                            raise SimulationError("time went backwards")
                        cur = self._cur = buckets.pop(t)
                        ci = 0
                        self._u_time = t
                        self._cur_time = t
                        self._now = t
                        continue
                elif ui < len(u):
                    event = u[ui]
                    ui += 1
                else:
                    del u[:]
                    ui = 0
                    continue
                self.steps = steps = steps + 1
                cbs = event.callbacks
                event._processed = True
                if typ(event) is timeout_cls:
                    # The bucket slot is deliberately left in place: the
                    # pooling proof counts it (event local + getrefcount
                    # arg + cur slot = 3); any other referent pushes the
                    # count past 3 and blocks recycling, exactly as the
                    # heap engine's cleared-slot ==2 proof does.
                    if cbs:
                        try:
                            fn, = cbs
                        except ValueError:
                            event.callbacks = None
                            for fn in cbs:
                                fn(event)
                        else:
                            del cbs[:]
                            fn(event)
                    if len(pool) < pool_max and refcount(event) == 3:
                        event._value = None
                        if event.callbacks is None:
                            event.callbacks = []
                        pool.append(event)
                else:
                    event.callbacks = None
                    if cbs:
                        if len(cbs) == 1:
                            cbs[0](event)
                        else:
                            for fn in cbs:
                                fn(event)
        finally:
            self._ui = ui
            self._ci = ci

    def _run_horizon(self, horizon: float) -> None:
        # A pending lane/batch always sits at the current time, but a
        # caller may pass a horizon *behind* it — match the heap engine
        # and process nothing.
        nt = self.peek_time()
        if nt is None or nt > horizon:
            return
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        timeout_cls = Timeout
        typ = type
        refcount = getrefcount
        buckets = self._buckets
        times = self._times
        u = self._u
        ui = self._ui
        cur = self._cur
        if cur is None:
            cur = self._cur = []
        ci = self._ci
        steps = self.steps
        try:
            while True:
                if not u:
                    if ci < len(cur):
                        event = cur[ci]
                        ci += 1
                    else:
                        ui = 0
                        if not times or self._uf:
                            self._ui = 0
                            self._ci = ci
                            self._retire_batch()
                            nt = self.peek_time()
                            if nt is None or nt > horizon:
                                ci = self._ci
                                cur = self._cur
                                return
                            self._start_batch()
                            u = self._u
                            ui = self._ui
                            cur = self._cur
                            ci = self._ci
                            continue
                        t = times[0]
                        if t > horizon:
                            self._ui = 0
                            self._ci = ci
                            self._retire_batch()
                            ci = self._ci
                            cur = self._cur
                            base = ui + ci
                            return
                        heappop(times)
                        if t < self._now:
                            raise SimulationError("time went backwards")
                        cur = self._cur = buckets.pop(t)
                        ci = 0
                        self._u_time = t
                        self._cur_time = t
                        self._now = t
                        continue
                elif ui < len(u):
                    event = u[ui]
                    ui += 1
                else:
                    del u[:]
                    ui = 0
                    continue
                self.steps = steps = steps + 1
                cbs = event.callbacks
                event._processed = True
                if typ(event) is timeout_cls:
                    # The bucket slot is deliberately left in place: the
                    # pooling proof counts it (event local + getrefcount
                    # arg + cur slot = 3); any other referent pushes the
                    # count past 3 and blocks recycling, exactly as the
                    # heap engine's cleared-slot ==2 proof does.
                    if cbs:
                        try:
                            fn, = cbs
                        except ValueError:
                            event.callbacks = None
                            for fn in cbs:
                                fn(event)
                        else:
                            del cbs[:]
                            fn(event)
                    if len(pool) < pool_max and refcount(event) == 3:
                        event._value = None
                        if event.callbacks is None:
                            event.callbacks = []
                        pool.append(event)
                else:
                    event.callbacks = None
                    if cbs:
                        if len(cbs) == 1:
                            cbs[0](event)
                        else:
                            for fn in cbs:
                                fn(event)
        finally:
            self._ui = ui
            self._ci = ci
