"""Discrete-event simulation kernel.

This module provides the event loop on which the whole reproduction runs:
simulated MPI processes, threads, NIC hardware contexts, and the fabric are
all cooperative tasks scheduled on a :class:`Simulator`.

The design is a deliberately small SimPy-style kernel:

- an :class:`Event` is a one-shot occurrence with a value and callbacks;
- a :class:`Process` wraps a Python generator; each ``yield`` suspends the
  task until the yielded event triggers;
- the :class:`Simulator` owns the clock and a binary heap of scheduled
  events and executes them in ``(time, priority, sequence)`` order, so runs
  are fully deterministic.

Simulated time is a ``float`` in **seconds**. Determinism is load-bearing
for the reproduction: two runs with identical parameters produce identical
simulated timings, which makes the benchmark shapes stable and the tests
exact.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

# Priorities for events scheduled at the same timestamp. Urgent is used for
# event-triggering chains (e.g. a lock handoff) that must run before newly
# scheduled same-time timeouts.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Event:
    """A one-shot simulation event.

    An event goes through three states: *pending* (created), *triggered*
    (value set and scheduled on the simulator heap), and *processed*
    (callbacks executed). Once triggered, an event carries either a value
    (success) or an exception (failure).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_URGENT) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue(self, 0.0, priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_URGENT) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._enqueue(self, 0.0, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._enqueue(self, delay, PRIORITY_NORMAL)


class Process(Event):
    """A cooperative task wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value (or its unhandled exception) when the generator finishes, so
    processes can ``yield`` other processes to join them.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        sim._processes.append(self)
        # Bootstrap: start the generator at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.succeed(priority=PRIORITY_NORMAL)
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger._exc is not None:
                target = self.gen.throw(trigger._exc)
            else:
                target = self.gen.send(trigger._value)
        except StopIteration as stop:
            self.sim._active_process = None
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if not self._triggered:
                self.fail(exc)
                return
            raise
        self.sim._active_process = None
        if not isinstance(target, Event) or target.sim is not self.sim:
            self.gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances from their own simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all given events have triggered successfully.

    Its value is the list of the constituent values, in input order. If any
    constituent fails, the AllOf fails with that exception (first failure
    wins).
    """

    __slots__ = ("_pending", "_results", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._results: list[Any] = [None] * len(events)
        self._pending = len(events)
        self._failed = False
        if not events:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._on_child(e, i))

    def _on_child(self, ev: Event, index: int) -> None:
        if self._failed or self._triggered:
            return
        if ev._exc is not None:
            self._failed = True
            self.fail(ev._exc)
            return
        self._results[index] = ev._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(list(self._results))


class AnyOf(Event):
    """Triggers when the first of the given events triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._on_child(e, i))

    def _on_child(self, ev: Event, index: int) -> None:
        if self._triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((index, ev._value))


class Simulator:
    """The discrete-event loop: clock + scheduled-event heap."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.steps = 0
        #: Every Process ever spawned (for deadlock diagnostics).
        self._processes: list[Process] = []
        #: Extra report providers consulted when a deadlock is detected
        #: (see :meth:`add_diagnostic`).
        self._diagnostics: list[Callable[[], list[str]]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction helpers --------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new cooperative task from a generator."""
        return Process(self, gen, name)

    # alias matching simpy vocabulary
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- deadlock diagnostics ---------------------------------------------
    def add_diagnostic(self, fn: Callable[[], list[str]]) -> None:
        """Register a provider of extra deadlock-report lines.

        When the event heap runs dry while a ``run(until=event)`` target is
        still pending, the simulator raises a report that names every
        blocked task; providers registered here (e.g. the runtime's
        per-rank pending-MPI-state dump) append domain detail to it.
        """
        self._diagnostics.append(fn)

    def _deadlock_report(self, limit: int = 25) -> str:
        """Build the deadlock diagnosis raised from :meth:`run`."""
        lines = ["simulation ran out of events before the awaited event "
                 "triggered (deadlock?)"]
        blocked = [p for p in self._processes if p.is_alive]
        if blocked:
            lines.append(f"blocked tasks ({len(blocked)}):")
            for p in blocked[:limit]:
                target = p._waiting_on
                if target is None:
                    what = "not yet resumed"
                elif isinstance(target, Process):
                    what = f"joining task {target.name!r}"
                else:
                    what = f"waiting on {type(target).__name__}"
                lines.append(f"  - {p.name}: {what}")
            if len(blocked) > limit:
                lines.append(f"  ... and {len(blocked) - limit} more")
        for fn in self._diagnostics:
            try:
                lines.extend(fn())
            except Exception as exc:  # a broken provider must not mask
                lines.append(f"(diagnostic provider failed: {exc!r})")
        return "\n".join(lines)

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        self.steps += 1
        event._process()

    def run(self, until: Optional[float | Event] = None,
            max_steps: Optional[int] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock passes it), an
        :class:`Event` (run until it is processed; returns its value), or
        ``None`` (run until no events remain). ``max_steps`` guards against
        runaway loops.
        """
        start_steps = self.steps
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._heap:
                    raise SimulationError(self._deadlock_report())
                if max_steps is not None and self.steps - start_steps >= max_steps:
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                self.step()
            return target.value
        if until is None:
            while self._heap:
                if max_steps is not None and self.steps - start_steps >= max_steps:
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                self.step()
            return None
        horizon = float(until)
        while self._heap and self._heap[0][0] <= horizon:
            if max_steps is not None and self.steps - start_steps >= max_steps:
                raise SimulationError(f"exceeded max_steps={max_steps}")
            self.step()
        self._now = max(self._now, horizon)
        return None
