"""Discrete-event simulation kernel.

This module provides the event loop on which the whole reproduction runs:
simulated MPI processes, threads, NIC hardware contexts, and the fabric are
all cooperative tasks scheduled on a :class:`Simulator`.

The design is a deliberately small SimPy-style kernel:

- an :class:`Event` is a one-shot occurrence with a value and callbacks;
- a :class:`Process` wraps a Python generator; each ``yield`` suspends the
  task until the yielded event triggers;
- the :class:`Simulator` owns the clock and a binary heap of scheduled
  events and executes them in ``(time, priority, sequence)`` order, so runs
  are fully deterministic.

Simulated time is a ``float`` in **seconds**. Determinism is load-bearing
for the reproduction: two runs with identical parameters produce identical
simulated timings, which makes the benchmark shapes stable and the tests
exact.
"""

from __future__ import annotations

import gc
import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

# Priorities for events scheduled at the same timestamp. Urgent is used for
# event-triggering chains (e.g. a lock handoff) that must run before newly
# scheduled same-time timeouts.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Event:
    """A one-shot simulation event.

    An event goes through three states: *pending* (created), *triggered*
    (value set and scheduled on the simulator heap), and *processed*
    (callbacks executed). Once triggered, an event carries either a value
    (success) or an exception (failure).
    """

    # ``_seq`` is the schedule sequence number, written at enqueue time by
    # the calendar engine (:mod:`repro.sim.calendar`), which stores bare
    # events in its buckets instead of the heap engine's
    # ``(time, priority, seq, event)`` tuples. It is deliberately left
    # unset here: the heap engine never reads it, and initializing it
    # would tax every event allocation.
    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered",
                 "_processed", "_seq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_URGENT) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue(self, 0.0, priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_URGENT) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._enqueue(self, 0.0, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            # Most events have exactly one waiter; skip the loop setup.
            if len(callbacks) == 1:
                callbacks[0](self)
            else:
                for fn in callbacks:
                    fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._enqueue(self, delay, PRIORITY_NORMAL)


class Process(Event):
    """A cooperative task wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value (or its unhandled exception) when the generator finishes, so
    processes can ``yield`` other processes to join them.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_pid", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._pid = sim._next_pid
        sim._next_pid += 1
        sim._processes[self._pid] = self
        if sim.checker is not None:
            sim.checker.on_spawn(self)
        # The resume callback is bound once: creating a fresh bound method
        # on every suspend is measurable across millions of events. (This
        # makes each Process part of a reference cycle with itself; the
        # collect() on run() exit reclaims completed ones.)
        self._resume_cb = self._resume
        # Bootstrap: start the generator at the current simulation time.
        # Built by hand (a pre-triggered bare Event carrying the resume
        # callback) to keep spawn off the succeed/add_callback slow path.
        bootstrap = Event.__new__(Event)
        bootstrap.sim = sim
        bootstrap.callbacks = [self._resume_cb]
        bootstrap._value = None
        bootstrap._exc = None
        bootstrap._triggered = True
        bootstrap._processed = False
        sim._enqueue(bootstrap, 0.0, PRIORITY_NORMAL)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    # Completed processes are dropped from the simulator's task table (the
    # deadlock report only needs live tasks; retaining every process ever
    # spawned leaks memory over long sweeps).
    def succeed(self, value: Any = None, priority: int = PRIORITY_URGENT) -> "Event":
        self.sim._processes.pop(self._pid, None)
        return super().succeed(value, priority)

    def fail(self, exc: BaseException, priority: int = PRIORITY_URGENT) -> "Event":
        self.sim._processes.pop(self._pid, None)
        return super().fail(exc, priority)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        if sim.checker is not None:
            sim.checker.on_resume(self, trigger)
        sim._active_process = self
        try:
            if trigger._exc is not None:
                target = self.gen.throw(trigger._exc)
            else:
                target = self.gen.send(trigger._value)
        except StopIteration as stop:
            sim._active_process = None
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if not self._triggered:
                self.fail(exc)
                return
            raise
        sim._active_process = None
        # Fast suspend: the overwhelmingly common yield is a fresh,
        # still-pending Timeout from this simulator.
        if type(target) is Timeout and target.sim is sim \
                and not target._processed:
            self._waiting_on = target
            target.callbacks.append(self._resume_cb)
            return
        if not isinstance(target, Event) or target.sim is not sim:
            self.gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances from their own simulator"))
            return
        self._waiting_on = target
        if target._processed:
            self._resume(target)
        else:
            target.callbacks.append(self._resume_cb)


class AllOf(Event):
    """Triggers when all given events have triggered successfully.

    Its value is the list of the constituent values, in input order. If any
    constituent fails, the AllOf fails with that exception (first failure
    wins).
    """

    __slots__ = ("_pending", "_results", "_failed", "_children")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        # The checker joins the clocks of joined child processes when a
        # task resumes from an AllOf; without a checker the reference is
        # dropped so completed children stay collectable.
        self._children = events if sim.checker is not None else None
        self._results: list[Any] = [None] * len(events)
        self._pending = len(events)
        self._failed = False
        if not events:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._on_child(e, i))

    def _on_child(self, ev: Event, index: int) -> None:
        if self._failed or self._triggered:
            return
        if ev._exc is not None:
            self._failed = True
            self.fail(ev._exc)
            return
        self._results[index] = ev._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(list(self._results))


class AnyOf(Event):
    """Triggers when the first of the given events triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._on_child(e, i))

    def _on_child(self, ev: Event, index: int) -> None:
        if self._triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((index, ev._value))


class Simulator:
    """The discrete-event loop: clock + scheduled-event heap."""

    #: Maximum number of dead Timeout shells kept for reuse.
    _POOL_MAX = 1024

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Installed by ``World(check=...)``: a :class:`repro.check.Checker`
        #: observing this simulator, or None. Hook sites guard on this so
        #: an unchecked run pays one attribute test per site.
        self.checker = None
        self.steps = 0
        #: Live processes by spawn id (for deadlock diagnostics); completed
        #: processes remove themselves so long sweeps don't accumulate.
        self._processes: dict[int, Process] = {}
        self._next_pid = 0
        #: Recycled Timeout shells (see :meth:`timeout` and :meth:`run`).
        self._timeout_pool: list[Timeout] = []
        #: Extra report providers consulted when a deadlock is detected
        #: (see :meth:`add_diagnostic`).
        self._diagnostics: list[Callable[[], list[str]]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction helpers --------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Schedule a timeout — the kernel's dominant allocation.

        Fast path: pop a recycled shell off the free-list (dead timeouts
        are returned by the run loop once provably unreferenced) and
        enqueue it directly, skipping ``Timeout.__init__``.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._exc = None
            t._triggered = True
            t._processed = False
            t.callbacks = []
            self._seq += 1
            heapq.heappush(self._heap,
                           (self._now + delay, PRIORITY_NORMAL, self._seq, t))
            return t
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new cooperative task from a generator."""
        return Process(self, gen, name)

    # alias matching simpy vocabulary
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- deadlock diagnostics ---------------------------------------------
    def add_diagnostic(self, fn: Callable[[], list[str]]) -> None:
        """Register a provider of extra deadlock-report lines.

        When the event heap runs dry while a ``run(until=event)`` target is
        still pending, the simulator raises a report that names every
        blocked task; providers registered here (e.g. the runtime's
        per-rank pending-MPI-state dump) append domain detail to it.
        """
        self._diagnostics.append(fn)

    def _deadlock_report(self, limit: int = 25) -> str:
        """Build the deadlock diagnosis raised from :meth:`run`."""
        lines = ["simulation ran out of events before the awaited event "
                 "triggered (deadlock?)"]
        blocked = [p for p in self._processes.values() if p.is_alive]
        if blocked:
            lines.append(f"blocked tasks ({len(blocked)}):")
            for p in blocked[:limit]:
                target = p._waiting_on
                if target is None:
                    what = "not yet resumed"
                elif isinstance(target, Process):
                    what = f"joining task {target.name!r}"
                else:
                    what = f"waiting on {type(target).__name__}"
                lines.append(f"  - {p.name}: {what}")
            if len(blocked) > limit:
                lines.append(f"  ... and {len(blocked) - limit} more")
        for fn in self._diagnostics:
            try:
                lines.extend(fn())
            except Exception as exc:  # a broken provider must not mask
                lines.append(f"(diagnostic provider failed: {exc!r})")
        return "\n".join(lines)

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- schedule introspection -------------------------------------------
    # These three methods are the engine-agnostic view of the pending
    # schedule. Snapshot capture (:mod:`repro.snap.state`) and the snap
    # session driver consume them instead of reaching into ``_heap``, so
    # alternative engines (:mod:`repro.sim.calendar`) only need to
    # override them to stay digest-compatible.
    def pending_entries(self) -> list[tuple[float, int, int, Event]]:
        """Pending ``(when, priority, seq, event)`` entries in execution
        order — the canonical schedule view captured by state digests."""
        return sorted(self._heap, key=lambda entry: entry[:3])

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when drained."""
        return self._heap[0][0] if self._heap else None

    def queue_empty(self) -> bool:
        """True when no events remain scheduled."""
        return not self._heap

    def step(self) -> None:
        """Process the single next event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        self.steps += 1
        event._process()

    def run_steps(self, n: int, horizon: Optional[float] = None,
                  stop_event: Optional[Event] = None) -> int:
        """Process up to ``n`` events; returns the number processed.

        This is the sliced-execution primitive behind snapshotting and
        record-replay (:mod:`repro.snap`): a driver alternates
        ``run_steps`` slices with zero-footprint state captures, and the
        event sequence is *identical* to an uninterrupted :meth:`run` —
        slicing schedules nothing and perturbs no sequence numbers.

        Early-stop conditions (all leave the remaining events queued):

        - the heap runs dry;
        - ``horizon`` is given and the next event lies strictly beyond it
          (the clock is *not* advanced to the horizon — callers that need
          :meth:`run`'s clamp semantics apply it themselves);
        - ``stop_event`` is given and becomes processed (checked after
          each event, exactly like ``run(until=event)``).
        """
        heap = self._heap
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        pop = heapq.heappop
        processed = 0
        while processed < n and heap:
            if horizon is not None and heap[0][0] > horizon:
                break
            when, _prio, _seq, event = pop(heap)
            if when < self._now:
                raise SimulationError("time went backwards")
            self._now = when
            self.steps += 1
            processed += 1
            event._processed = True
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for fn in callbacks:
                        fn(event)
            if type(event) is Timeout and len(pool) < pool_max \
                    and getrefcount(event) == 2:
                event._value = None
                pool.append(event)
            if stop_event is not None and stop_event._processed:
                break
        return processed

    def run(self, until: Optional[float | Event] = None,
            max_steps: Optional[int] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock passes it), an
        :class:`Event` (run until it is processed; returns its value), or
        ``None`` (run until no events remain). ``max_steps`` guards against
        runaway loops.
        """
        start_steps = self.steps
        # The three loop variants below inline :meth:`step` — the heap pop,
        # clock advance and callback dispatch are the kernel's innermost
        # loop, and a method call per event is measurable across millions
        # of events. Dead timeouts are recycled onto the free-list when the
        # refcount proves nothing else holds them (exactly the pop'd local
        # and the getrefcount argument), so pooling can never resurrect an
        # event some process or user still watches.
        #
        # Cyclic GC is suspended for the duration of the loop: the kernel
        # allocates one-or-more short-lived objects per event, and gen-0
        # collections triggered mid-run cost real host time without freeing
        # anything the free-list and refcounting don't already handle. This
        # is purely a host-side optimization — collection timing can never
        # affect simulated results. A collect() on exit reclaims the
        # generator-frame cycles that completed processes leave behind.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(until, max_steps, start_steps)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect(0)

    def _run(self, until: Optional[float | Event], max_steps: Optional[int],
             start_steps: int) -> Any:
        heap = self._heap
        pop = heapq.heappop
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not heap:
                    raise SimulationError(self._deadlock_report())
                if max_steps is not None and self.steps - start_steps >= max_steps:
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                when, _prio, _seq, event = pop(heap)
                if when < self._now:
                    raise SimulationError("time went backwards")
                self._now = when
                self.steps += 1
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for fn in callbacks:
                            fn(event)
                if type(event) is Timeout and len(pool) < pool_max \
                        and getrefcount(event) == 2:
                    event._value = None
                    pool.append(event)
            return target.value
        if until is None:
            while heap:
                if max_steps is not None and self.steps - start_steps >= max_steps:
                    raise SimulationError(f"exceeded max_steps={max_steps}")
                when, _prio, _seq, event = pop(heap)
                if when < self._now:
                    raise SimulationError("time went backwards")
                self._now = when
                self.steps += 1
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for fn in callbacks:
                            fn(event)
                if type(event) is Timeout and len(pool) < pool_max \
                        and getrefcount(event) == 2:
                    event._value = None
                    pool.append(event)
            return None
        horizon = float(until)
        while heap and heap[0][0] <= horizon:
            if max_steps is not None and self.steps - start_steps >= max_steps:
                raise SimulationError(f"exceeded max_steps={max_steps}")
            self.step()
        self._now = max(self._now, horizon)
        return None
