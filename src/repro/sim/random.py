"""Deterministic random-number streams for simulations.

Every stochastic component (workload generators, graph partitions, jitter)
draws from a named child stream derived from a single experiment seed, so
adding a new consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A tree of named, independently-seeded numpy Generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The stream depends only on ``(seed, name)``, not on creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(hash(name) & 0x7FFFFFFF,),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)
