"""Synchronization primitives with contention accounting.

The paper's central performance argument is about *where threads contend*:
on a global MPI lock, on a shared VCI, on a partitioned operation's shared
request, or — ideally — nowhere. These primitives therefore record wait
statistics so the benchmarks can report both time and contention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Generator, Optional

from .core import Event, Simulator, SimulationError

__all__ = ["Lock", "Semaphore", "Barrier", "Gate", "Mailbox", "ContentionStats"]


@dataclass
class ContentionStats:
    """Aggregate wait/hold statistics for a synchronization object."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_time: float = 0.0
    total_hold_time: float = 0.0
    max_queue_length: int = 0

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait."""
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions

    @property
    def mean_wait_time(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.acquisitions


class Lock:
    """FIFO mutual-exclusion lock.

    Usage from a process::

        yield from lock.acquire()
        try:
            ...
        finally:
            lock.release()

    The lock is not reentrant and does not track ownership by process; the
    MPI layer uses it to serialize access to shared VCIs, matching queues
    and NIC doorbells.

    An optional ``observer`` callable receives per-event contention data:
    ``observer("acquire", wait_seconds, queue_position)`` on every acquire
    and ``observer("hold", hold_seconds, queue_length)`` on every release.
    The observability layer (:func:`repro.obs.instrument_lock`) uses it to
    build wait/hold histograms without coupling this module to metrics.
    """

    __slots__ = ("sim", "name", "locked", "_waiters", "stats", "_acquired_at",
                 "observer")

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.locked = False
        self._waiters: Deque[Event] = deque()
        self.stats = ContentionStats()
        self._acquired_at = 0.0
        self.observer: Optional[Callable[[str, float, int], None]] = None

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator: acquire the lock, waiting FIFO if held."""
        self.stats.acquisitions += 1
        if not self.locked:
            self.locked = True
            self._acquired_at = self.sim.now
            if self.observer is not None:
                self.observer("acquire", 0.0, 0)
            if self.sim.checker is not None:
                self.sim.checker.lock_acquired(self)
            return
        self.stats.contended_acquisitions += 1
        waiter = self.sim.event()
        self._waiters.append(waiter)
        queue_position = len(self._waiters)
        self.stats.max_queue_length = max(self.stats.max_queue_length,
                                          queue_position)
        t0 = self.sim.now
        yield waiter
        wait = self.sim.now - t0
        self.stats.total_wait_time += wait
        self._acquired_at = self.sim.now
        if self.observer is not None:
            self.observer("acquire", wait, queue_position)
        if self.sim.checker is not None:
            self.sim.checker.lock_acquired(self)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self.locked:
            return False
        self.stats.acquisitions += 1
        self.locked = True
        self._acquired_at = self.sim.now
        if self.observer is not None:
            self.observer("acquire", 0.0, 0)
        if self.sim.checker is not None:
            self.sim.checker.lock_acquired(self)
        return True

    def release(self) -> None:
        """Release the lock, accounting hold time; wakes one waiter."""
        if not self.locked:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        hold = self.sim.now - self._acquired_at
        self.stats.total_hold_time += hold
        if self.observer is not None:
            self.observer("hold", hold, len(self._waiters))
        # Publish before any handoff so a directly-resumed waiter joins
        # this holder's clock when its acquire() continues.
        if self.sim.checker is not None:
            self.sim.checker.lock_released(self)
        if self._waiters:
            # Hand the lock to the next waiter; it stays locked.
            self._acquired_at = self.sim.now
            self._waiters.popleft().succeed()
        else:
            self.locked = False

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    __slots__ = ("sim", "count", "_waiters", "stats")

    def __init__(self, sim: Simulator, initial: int = 0):
        if initial < 0:
            raise ValueError("semaphore count must be non-negative")
        self.sim = sim
        self.count = initial
        self._waiters: Deque[Event] = deque()
        self.stats = ContentionStats()

    def post(self, n: int = 1) -> None:
        """Add ``n`` units, waking up to ``n`` blocked waiters in FIFO order."""
        chk = self.sim.checker
        for _ in range(n):
            # The checker's FIFO clock queue gives each wait() a
            # happens-before edge from the post() that fed it.
            if chk is not None:
                chk.mailbox_put(self)
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self.count += 1

    def wait(self) -> Generator[Event, Any, None]:
        """Take one unit, blocking FIFO while the count is zero."""
        self.stats.acquisitions += 1
        if self.count > 0:
            self.count -= 1
            if self.sim.checker is not None:
                self.sim.checker.mailbox_got(self)
            return
        self.stats.contended_acquisitions += 1
        waiter = self.sim.event()
        self._waiters.append(waiter)
        t0 = self.sim.now
        yield waiter
        self.stats.total_wait_time += self.sim.now - t0
        if self.sim.checker is not None:
            self.sim.checker.mailbox_got(self)


class Barrier:
    """Reusable cyclic barrier for ``parties`` processes.

    Models the implicit thread barrier that e.g. OpenMP ``single`` regions
    impose (Listing 4 of the paper charges exactly this synchronization to
    partitioned communication).
    """

    __slots__ = ("sim", "parties", "_count", "_gate", "generation", "stats",
                 "per_entry_cost")

    def __init__(self, sim: Simulator, parties: int, per_entry_cost: float = 0.0):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.per_entry_cost = per_entry_cost
        self._count = 0
        self._gate: Event = sim.event()
        self.generation = 0
        self.stats = ContentionStats()

    def wait(self) -> Generator[Event, Any, None]:
        """Block until all parties arrive; last arriver opens the gate."""
        if self.per_entry_cost:
            yield self.sim.timeout(self.per_entry_cost)
        chk = self.sim.checker
        if chk is not None:
            chk.barrier_arrive(self)
        self.stats.acquisitions += 1
        self._count += 1
        if self._count == self.parties:
            gate, self._gate = self._gate, self.sim.event()
            self._count = 0
            self.generation += 1
            if chk is not None:
                chk.barrier_release(self)
                chk.barrier_depart(self)
            gate.succeed()
            return
        self.stats.contended_acquisitions += 1
        t0 = self.sim.now
        gate = self._gate
        yield gate
        self.stats.total_wait_time += self.sim.now - t0
        if chk is not None:
            chk.barrier_depart(self)


class Gate:
    """A resettable broadcast flag: processes wait until it is opened."""

    __slots__ = ("sim", "_event", "_open")

    def __init__(self, sim: Simulator, open: bool = False):
        self.sim = sim
        self._event = sim.event()
        self._open = open

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self, value: Any = None) -> None:
        if not self._open:
            if self.sim.checker is not None:
                self.sim.checker.gate_opened(self)
            self._open = True
            self._event.succeed(value)

    def reset(self) -> None:
        self._open = False
        if self._event.triggered:
            self._event = self.sim.event()

    def wait(self) -> Generator[Event, Any, Any]:
        """Return immediately if the gate is open, else block for open()."""
        if self._open:
            if self.sim.checker is not None:
                self.sim.checker.gate_passed(self)
            return None
        value = yield self._event
        if self.sim.checker is not None:
            self.sim.checker.gate_passed(self)
        return value


class Mailbox:
    """Unbounded FIFO queue with blocking ``get``.

    Used for NIC work queues and runtime message queues. ``put`` never
    blocks; ``get`` blocks until an item is available.
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: Simulator, name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self.sim.checker is not None:
            self.sim.checker.mailbox_put(self)
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Event, Any, Any]:
        """Take the oldest item, blocking while the mailbox is empty."""
        if self._items:
            item = self._items.popleft()
            if self.sim.checker is not None:
                self.sim.checker.mailbox_got(self)
            return item
        waiter = self.sim.event()
        self._getters.append(waiter)
        item = yield waiter
        if self.sim.checker is not None:
            self.sim.checker.mailbox_got(self)
        return item

    def try_get(self) -> tuple[bool, Optional[Any]]:
        if self._items:
            item = self._items.popleft()
            if self.sim.checker is not None:
                self.sim.checker.mailbox_got(self)
            return True, item
        return False, None

    def __len__(self) -> int:
        return len(self._items)
