"""Exception hierarchy for the simulated MPI library."""

from __future__ import annotations

__all__ = [
    "MpiError",
    "MpiUsageError",
    "TruncationError",
    "TagOverflowError",
    "InvalidHintError",
    "HintViolationError",
    "RmaSemanticsError",
    "TransportError",
    "FaultPlanError",
    "FaultConfigError",
    "TrafficConfigError",
    "ScenarioError",
    "CheckError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMismatchError",
    "TopologyError",
    "ServeError",
    "ProtocolError",
]


class MpiError(Exception):
    """Base class for all simulated-MPI errors."""


class MpiUsageError(MpiError):
    """API misuse: wrong arguments, wrong state, wrong call ordering.

    Examples: issuing two concurrent collectives on one communicator
    (MPI requires them to be serial), waiting on an inactive request.
    """


class TruncationError(MpiError):
    """A received message is larger than the posted receive buffer."""


class TagOverflowError(MpiError):
    """A tag does not fit in the configured tag space.

    The paper's Lesson 9: encoding parallelism information into tags
    exacerbates tag overflow, already reported for SNAP, Smilei, MITgcm.
    """


class InvalidHintError(MpiError):
    """An Info hint has an invalid value or an inconsistent combination."""


class HintViolationError(MpiError):
    """The application violated a semantics-relaxing hint it asserted.

    E.g. posting an ``ANY_TAG`` receive on a communicator created with
    ``mpi_assert_no_any_tag=true``.
    """


class RmaSemanticsError(MpiError):
    """Violation of RMA window semantics (bounds, epochs, atomic misuse)."""


class TransportError(MpiError):
    """The reliable transport gave up on a message.

    Raised when a wire message exhausts its retransmission budget (the
    fault plan's loss exceeded what ACK/timeout recovery can absorb).
    Carries enough context to identify the flow that died.
    """

    def __init__(self, message: str, flow=None, seq=None, retries=None,
                 pending_seqs=None, backoff_schedule=None):
        super().__init__(message)
        self.flow = flow
        self.seq = seq
        self.retries = retries
        #: Every unacked sequence number of the dying flow at give-up time.
        self.pending_seqs = list(pending_seqs or [])
        #: The per-retry timeout schedule (seconds) the sender waited out.
        self.backoff_schedule = list(backoff_schedule or [])


class FaultPlanError(MpiError):
    """A fault-injection plan spec is malformed or inconsistent."""


class FaultConfigError(FaultPlanError):
    """A fault plan's *values* are invalid (rates, windows, durations).

    Subclass of :class:`FaultPlanError` so existing handlers keep working;
    raised eagerly at plan construction — never mid-run — for negative or
    out-of-range probabilities, negative durations, and inverted time
    windows.
    """


class TrafficConfigError(MpiError):
    """A background-traffic shape is malformed (rates, sizes, windows)."""


class ScenarioError(MpiError):
    """A scenario spec is malformed or references unknown components."""


class CheckError(MpiError):
    """A correctness violation detected by :mod:`repro.check` in raise mode.

    Carries the :class:`repro.check.Violation` that triggered it as
    ``violation`` so callers can inspect rule id, simulated time and task.
    """

    def __init__(self, message: str, violation=None):
        super().__init__(message)
        self.violation = violation


class SnapshotError(MpiError):
    """Base class for snapshot/restore failures (:mod:`repro.snap`)."""


class SnapshotFormatError(SnapshotError):
    """A snapshot file is unreadable: wrong version, corrupt, truncated."""


class TopologyError(MpiError):
    """An interconnect topology is malformed or cannot host the cluster.

    Raised for unknown topology names, generator parameters that violate
    the topology's structural constraints (odd fat-tree arity, too few
    dragonfly groups), clusters larger than the topology's host capacity,
    and routing-table defects detected while building static routes.
    """


class SnapshotMismatchError(SnapshotError):
    """A restored world's state does not match the snapshot byte-for-byte.

    Carries the first divergent state paths as ``paths`` so the failure
    names the layer that drifted rather than a bare digest mismatch.
    """

    def __init__(self, message: str, paths=None):
        super().__init__(message)
        self.paths = list(paths or [])


class ServeError(MpiError):
    """A simulation-service operation failed (:mod:`repro.serve`).

    Raised for malformed job documents, unknown job/point kinds, lookups
    of job ids the orchestrator has never seen, and service lifecycle
    failures (state directory held by another orchestrator, worker pool
    exhausted its respawn budget).
    """


class ProtocolError(ServeError):
    """A worker-protocol frame is malformed.

    Raised when a length-prefixed JSON frame is truncated at EOF,
    exceeds the frame size bound, or decodes to something other than a
    JSON object with a ``type`` field. Transport code treats it as a
    fatal error for that connection: the peer is dropped and any job it
    held is re-queued.
    """
