"""Parallel execution of independent sweep points.

Every sweep point is a self-contained simulation: it builds its own
:class:`~repro.sim.core.Simulator`, seeds its own RNGs, and shares no
mutable state with any other point. Results are therefore bit-identical
whether points run serially or fanned out across worker processes — the
executor only changes *host* wall-clock, never simulated results (the
same simulated-cost vs host-cost separation as the indexed matching
engine; see ``docs/performance.md``).

The executor uses the ``fork`` start method so workers inherit the parent's
imported modules (no per-worker interpreter/numpy start-up, and functions
defined in script-style modules such as the ``benchmarks/`` suite remain
reachable). Where ``fork`` is unavailable (non-POSIX hosts) or a single
job is requested, points run serially in-process.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["default_jobs", "run_points", "scaling_run"]


def default_jobs(env: str = "REPRO_BENCH_JOBS") -> int:
    """Worker count from the environment (``REPRO_BENCH_JOBS``), else 1.

    The benchmark suite stays serial unless explicitly told otherwise:
    parallel workers skew per-point host-time measurements on busy
    machines, so fan-out is opt-in.
    """
    try:
        return max(1, int(os.environ.get(env, "1")))
    except ValueError:
        return 1


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return None


def run_points(fn: Callable[..., Any], points: Sequence[dict],
               jobs: int = 1,
               progress: Optional[Callable[[dict], None]] = None
               ) -> list[Any]:
    """Run ``fn(**point)`` for every point; returns results in point order.

    ``jobs > 1`` fans the points across a ``fork`` process pool. Results
    are returned in the order of ``points`` regardless of completion
    order, so the output is deterministic for deterministic ``fn``.
    ``progress`` (serial path only) is called with each point before it
    runs — worker processes cannot usefully stream progress to the
    parent's terminal.
    """
    points = list(points)
    if jobs <= 1 or len(points) <= 1:
        results = []
        for point in points:
            if progress is not None:
                progress(point)
            results.append(fn(**point))
        return results
    ctx = _fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX hosts
        return run_points(fn, points, jobs=1, progress=progress)
    jobs = min(jobs, len(points))
    with ctx.Pool(processes=jobs) as pool:
        async_results = [pool.apply_async(fn, kwds=point) for point in points]
        return [r.get() for r in async_results]


def scaling_run(fn: Callable[..., Any], points: Iterable[dict],
                jobs_list: Sequence[int]) -> dict[int, float]:
    """Time the full point set at each worker count; returns seconds by
    jobs. Used by ``benchmarks/bench_kernel.py`` to record the ``--jobs``
    scaling trajectory."""
    import time
    points = list(points)
    walls: dict[int, float] = {}
    for jobs in jobs_list:
        t0 = time.perf_counter()
        run_points(fn, points, jobs=jobs)
        walls[jobs] = time.perf_counter() - t0
    return walls
