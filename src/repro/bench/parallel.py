"""Parallel execution of independent sweep points.

Every sweep point is a self-contained simulation: it builds its own
:class:`~repro.sim.core.Simulator`, seeds its own RNGs, and shares no
mutable state with any other point. Results are therefore bit-identical
whether points run serially or fanned out across worker processes — the
executor only changes *host* wall-clock, never simulated results (the
same simulated-cost vs host-cost separation as the indexed matching
engine; see ``docs/performance.md``).

The executor uses the ``fork`` start method so workers inherit the parent's
imported modules (no per-worker interpreter/numpy start-up, and functions
defined in script-style modules such as the ``benchmarks/`` suite remain
reachable). Where ``fork`` is unavailable (non-POSIX hosts) or a single
job is requested, points run serially in-process.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["auto_jobs", "chunk_size", "default_jobs", "point_key",
           "run_points", "scaling_run"]


def default_jobs(env: str = "REPRO_BENCH_JOBS") -> int:
    """Worker count from the environment (``REPRO_BENCH_JOBS``), else 1.

    The benchmark suite stays serial unless explicitly told otherwise:
    parallel workers skew per-point host-time measurements on busy
    machines, so fan-out is opt-in.
    """
    try:
        return max(1, int(os.environ.get(env, "1")))
    except ValueError:
        return 1


def auto_jobs(requested: Optional[int] = None,
              n_points: Optional[int] = None,
              cpu_count: Optional[int] = None,
              oversubscribe: bool = False) -> int:
    """Worker count that never oversubscribes the host by default.

    The ``scaling_run`` records showed why: at ``jobs > cpu_count`` the
    fork pool's *dispatch* overhead (IPC, scheduling) is pure loss — on
    the 1-CPU CI host, jobs=2/4 ran the Fig 1(a) sweep *slower* than
    serial (the ``expected_on_host`` flags in ``BENCH_kernel.json``).
    So the sizing rule consulted by the serve orchestrator is:

    - ``requested is None`` — use every CPU, no more (``os.cpu_count()``);
    - explicit ``requested`` — honored, but capped at the CPU count
      unless ``oversubscribe=True`` (tests and latency-insensitive
      fan-out may deliberately oversubscribe);
    - never more workers than ``n_points`` (idle workers are pure
      start-up cost), and always at least 1.

    ``cpu_count`` overrides host detection (for tests).
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    cpus = max(1, cpus)
    jobs = cpus if requested is None else max(1, int(requested))
    if not oversubscribe:
        jobs = min(jobs, cpus)
    if n_points is not None:
        jobs = min(jobs, max(1, int(n_points)))
    return max(1, jobs)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return None


def point_key(point: dict) -> str:
    """Stable content key for a sweep point's parameters.

    The key is a SHA-256 of the canonical JSON of the (sorted) parameter
    mapping, so it survives process restarts and does not depend on
    parameter order. Used to name per-point checkpoint files.
    """
    blob = json.dumps(point, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


_PENDING = object()  # sentinel: point not yet computed / not checkpointed


class _PointStore:
    """Per-point result checkpoints for crash-safe, resumable campaigns.

    One JSON file per point under ``directory``, named by
    :func:`point_key` and written atomically (tmp + ``os.replace``), so a
    killed campaign leaves only whole checkpoints behind. Results must be
    JSON-serializable; floats survive the round-trip exactly (``repr``
    shortest-round-trip), so a resumed campaign's rows are byte-identical
    to an uninterrupted one.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, point: dict) -> str:
        return os.path.join(self.directory, f"point-{point_key(point)}.json")

    def load(self, point: dict) -> Any:
        """The checkpointed result for ``point``, or ``_PENDING``.

        Truncated/corrupt files (a crash mid-``os.replace`` cannot produce
        one, but a full disk can) read as pending and are recomputed.
        """
        try:
            with open(self._path(point), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return _PENDING
        if payload.get("point") != _jsonable(point):
            return _PENDING  # key collision or stale directory: recompute
        return payload["result"]

    def save(self, point: dict, result: Any) -> None:
        """Atomically persist ``result`` for ``point``."""
        path = self._path(point)
        tmp = path + ".tmp"
        payload = {"point": _jsonable(point), "result": result}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"),
                      default=str)
        os.replace(tmp, path)


def _jsonable(point: dict) -> dict:
    """The point as it round-trips through JSON (for equality checks)."""
    return json.loads(json.dumps(point, sort_keys=True, default=str))


def chunk_size(n_points: int, jobs: int) -> int:
    """Points per pool task: ``max(1, n_points // (4 * jobs))``.

    One pool task per point is pure IPC overhead when points are tiny (a
    35-point Fig 1(a) sweep pays 35 pickle/unpickle round-trips for
    milliseconds of work each). Batching ~4 chunks per worker keeps the
    dispatch cost bounded while leaving enough chunks on the queue for
    work stealing: a worker that drew short chunks comes back for more
    while a worker stuck on a long chunk keeps just that one.
    """
    return max(1, n_points // (4 * max(1, jobs)))


def _run_chunk(fn: Callable[..., Any], kwds_list: list[dict]) -> list[Any]:
    """Run one chunk of points in a worker (module-level: pool tasks are
    pickled by name even under the ``fork`` start method)."""
    return [fn(**kwds) for kwds in kwds_list]


def run_points(fn: Callable[..., Any], points: Sequence[dict],
               jobs: int = 1,
               progress: Optional[Callable[[dict], None]] = None,
               checkpoint_dir: Optional[str] = None,
               resume: bool = False) -> list[Any]:
    """Run ``fn(**point)`` for every point; returns results in point order.

    ``jobs > 1`` fans the points across a ``fork`` process pool in
    chunks of :func:`chunk_size` points per pool task (work-stealing:
    idle workers pull the next chunk off the shared queue). Results are
    returned in the order of ``points`` regardless of completion order,
    so the output — and any CSV built from it — is byte-identical to a
    serial run for deterministic ``fn``. ``progress`` (serial path only)
    is called with each point before it runs — worker processes cannot
    usefully stream progress to the parent's terminal.

    ``checkpoint_dir`` persists every completed point's result as an
    atomic per-point JSON file the moment it completes (in the parent,
    via the pool's completion callback), so a killed campaign loses only
    in-flight points. ``resume=True`` loads existing checkpoints and runs
    only the missing points; because ``fn`` is deterministic per point
    and JSON round-trips floats exactly, a resumed campaign returns rows
    byte-identical to an uninterrupted one.
    """
    points = list(points)
    store = _PointStore(checkpoint_dir) if checkpoint_dir else None
    results: list[Any] = [_PENDING] * len(points)
    todo = list(range(len(points)))
    if store is not None and resume:
        todo = []
        for i, point in enumerate(points):
            cached = store.load(point)
            if cached is _PENDING:
                todo.append(i)
            else:
                results[i] = cached
    if not todo:
        return results
    if jobs <= 1 or len(todo) <= 1:
        for i in todo:
            if progress is not None:
                progress(points[i])
            results[i] = fn(**points[i])
            if store is not None:
                store.save(points[i], results[i])
        return results
    ctx = _fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX hosts
        return run_points(fn, points, jobs=1, progress=progress,
                          checkpoint_dir=checkpoint_dir, resume=resume)
    jobs = min(jobs, len(todo))
    size = chunk_size(len(points), jobs)
    chunks = [todo[lo:lo + size] for lo in range(0, len(todo), size)]
    with ctx.Pool(processes=jobs) as pool:
        pending = []
        for indices in chunks:
            callback = None
            if store is not None:
                # Completion callbacks run in the parent: every point of
                # a chunk is checkpointed (one file per point, as before
                # chunking) the moment its worker returns the chunk, not
                # at the end of the campaign.
                def callback(chunk_results, _indices=tuple(indices)):
                    for j, result in zip(_indices, chunk_results):
                        store.save(points[j], result)
            pending.append((indices, pool.apply_async(
                _run_chunk, (fn, [points[j] for j in indices]),
                callback=callback)))
        for indices, handle in pending:
            for j, result in zip(indices, handle.get()):
                results[j] = result
    return results


def _noop_point(**_kwargs: Any) -> None:
    """Zero-work point function: times the executor's dispatch overhead."""
    return None


def _max_rss_kb() -> dict[str, int]:
    """Peak RSS of this process and its reaped children, in KiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return {"rss_self_kb": 0, "rss_children_kb": 0}
    return {
        "rss_self_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "rss_children_kb": int(
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss),
    }


def scaling_run(fn: Callable[..., Any], points: Iterable[dict],
                jobs_list: Sequence[int]) -> dict[int, dict[str, Any]]:
    """Time the full point set at each worker count.

    Returns ``{jobs: {"wall_sec", "cpu_count", "dispatch_sec",
    "chunk_size", "rss_self_kb", "rss_children_kb"}}``. Every record
    carries what an ``expected_on_host`` verdict needs, so a
    ``BENCH_kernel.json`` explains itself without rerunning anything:

    - ``cpu_count`` — ``jobs > cpu_count`` cannot beat serial, and a
      gate that ignores that tracks noise;
    - ``dispatch_sec`` — wall-clock of dispatching the same point set
      with a zero-work function at the same fan-out: the pool's fixed
      IPC/scheduling cost, i.e. the floor a sweep's wall-clock cannot
      go below no matter how fast the points get;
    - ``chunk_size`` / ``rss_*_kb`` — how the work was batched and the
      memory high-water marks (parent and reaped workers), so an
      oversubscription or swap stall is attributable after the fact.
    """
    import time
    points = list(points)
    walls: dict[int, dict[str, Any]] = {}
    for jobs in jobs_list:
        t0 = time.perf_counter()
        run_points(fn, points, jobs=jobs)
        wall = time.perf_counter() - t0
        t1 = time.perf_counter()
        run_points(_noop_point, [dict(p) for p in points], jobs=jobs)
        dispatch = time.perf_counter() - t1
        record: dict[str, Any] = {
            "wall_sec": wall,
            "cpu_count": os.cpu_count() or 1,
            "dispatch_sec": dispatch,
            "chunk_size": chunk_size(len(points), jobs),
        }
        record.update(_max_rss_kb())
        walls[jobs] = record
    return walls
