"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

import os
from typing import Iterable, Optional

__all__ = ["Table", "write_results"]


class Table:
    """A fixed-width ASCII table accumulated row by row."""

    def __init__(self, title: str, headers: list[str],
                 widths: Optional[list[int]] = None):
        self.title = title
        self.headers = headers
        self.widths = widths or [max(14, len(h) + 2) for h in headers]
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells")
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(c) -> str:
        if isinstance(c, float):
            return f"{c:.3g}"
        return str(c)

    def render(self) -> str:
        """Format the table with aligned columns and a title rule."""
        fmt = "  ".join(f"{{:>{w}}}" for w in self.widths)
        lines = [f"== {self.title} ==", fmt.format(*self.headers)]
        lines.append("-" * (sum(self.widths) + 2 * (len(self.widths) - 1)))
        for row in self.rows:
            lines.append(fmt.format(*row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def write_results(name: str, text: str, directory: Optional[str] = None) -> str:
    """Write a result table under ``benchmarks/results/`` (created on
    demand); returns the path."""
    base = directory or os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
        "benchmarks", "results")
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
