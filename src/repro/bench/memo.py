"""Warm-prefix memoization for sweep executors.

Many sweep points share an expensive *warm-up prefix*: everything their
(program, config, seed) triple determines before the swept parameter
first matters — world construction, communicator duplication, endpoint
creation. This module simulates each unique prefix **once**, fingerprints
the warm world with :func:`repro.snap.state_digest`, and serves every
point that shares the fingerprint from an ``os.fork`` of the warm parent
(the :mod:`repro.snap.fork` trick: generator frames can't be pickled,
but a forked child holds them live). The digest, not the parameter
split, is the source of truth — two points belong to the same prefix
exactly when their warm worlds hash identically.

Results are also persisted across runs in the
:class:`repro.bench.parallel._PointStore` checkpoint format, keyed by
``(memo format version, warm-prefix digest, tail parameters)``. A
repeated sweep therefore re-simulates **zero** warm-ups: the prefix
digests are read back from the cache index and every point resolves to
a stored result. The memo format version embeds the SNAP/STATE format
versions, so bumping either invalidates every cached digest and result
at once (stale keys simply never match again).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..snap import SNAP_VERSION, STATE_FORMAT_VERSION
from ..snap.fork import fork_available
from .parallel import _PENDING, _PointStore

__all__ = ["MEMO_VERSION", "MemoStats", "WarmPrefixExecutor",
           "canonical_params", "json_roundtrip",
           "fig1a_executor", "FIG1A_PREFIX_KEYS"]

#: Cache-key version: any SNAP/STATE format bump invalidates every
#: cached prefix digest and memoized result (keys never match again).
MEMO_VERSION = f"memo1-snap{SNAP_VERSION}-state{STATE_FORMAT_VERSION}"


@dataclass
class MemoStats:
    """What one :meth:`WarmPrefixExecutor.run` actually did.

    ``warmups_simulated`` is the headline: a repeated sweep against a
    warm cache directory must report 0 here (asserted in the tests).
    """

    #: Warm-up prefixes simulated from scratch this run.
    warmups_simulated: int = 0
    #: Points served by forking an already-warm world (no re-warm-up).
    warmup_reuses: int = 0
    #: Points served whole from the persistent cross-run result cache.
    result_hits: int = 0
    #: Children forked to isolate per-point measurement.
    forks: int = 0
    #: Points whose tail actually executed this run.
    points_run: int = 0
    #: Digest of each warm prefix, keyed by canonical prefix JSON.
    prefix_digests: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able summary (for ``BENCH_kernel.json``)."""
        return {
            "warmups_simulated": self.warmups_simulated,
            "warmup_reuses": self.warmup_reuses,
            "result_hits": self.result_hits,
            "forks": self.forks,
            "points_run": self.points_run,
            "unique_prefixes": len(self.prefix_digests),
        }


def canonical_params(params: dict) -> str:
    """Canonical JSON for a parameter mapping (sorted keys, no spaces).

    The shared spelling of "these parameters, as a cache key" — the memo
    executor groups prefixes by it and :mod:`repro.serve.cache` keys the
    service's result cache with it.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"),
                      default=str)


def json_roundtrip(result: Any) -> Any:
    """``result`` as JSON reads it back (tuples become lists, ...).

    Every result is normalized this way whether it was computed live,
    ferried from a forked child, served by a socket worker, or loaded
    from the persistent cache — so all paths return byte-identical data.
    """
    return json.loads(json.dumps(result, default=str))


# Pre-service spellings, kept for callers grown before repro.serve.
_canonical = canonical_params
_roundtrip = json_roundtrip


def _prefix_record(prefix: dict) -> dict:
    """Store key for a prefix's digest (the cross-run digest index)."""
    return {"kind": "warm-prefix", "memo": MEMO_VERSION, "prefix": prefix}


def _result_record(digest: str, tail: dict) -> dict:
    """Store key for one memoized point result.

    Keyed by the *digest* of the warm prefix — not its parameters — so a
    result is only ever reused when the warm-up state it continued from
    is byte-identical to the one it was computed from.
    """
    return {"kind": "memo-result", "memo": MEMO_VERSION,
            "warm_prefix": digest, "tail": tail}


class WarmPrefixExecutor:
    """Run sweep points as (shared warm-up prefix) + (forked tail).

    ``prefix_fn(**prefix_params)`` simulates a warm-up and returns the
    warm state (anything with a ``world`` attribute, or a World itself);
    ``tail_fn(state, **tail_params)`` continues it to a JSON-able
    result. ``prefix_keys`` names the point parameters that select the
    prefix; the rest of each point is the tail. Results come back in
    point order, so CSVs built from them are ordering-stable.

    Tails mutate the warm state, so every tail but a prefix's last runs
    in a forked child (parent state stays pristine); without ``os.fork``
    the executor degrades to re-simulating the prefix per point. With
    ``cache_dir`` set, prefix digests and point results persist across
    runs in the :class:`~repro.bench.parallel._PointStore` format.
    """

    def __init__(self, prefix_fn: Callable[..., Any],
                 tail_fn: Callable[..., Any],
                 prefix_keys: Sequence[str],
                 cache_dir: Optional[str] = None,
                 digest_fn: Optional[Callable[[Any], str]] = None):
        self.prefix_fn = prefix_fn
        self.tail_fn = tail_fn
        self.prefix_keys = tuple(prefix_keys)
        self.store = _PointStore(cache_dir) if cache_dir else None
        self._digest_fn = digest_fn

    def _digest(self, state: Any) -> str:
        if self._digest_fn is not None:
            return self._digest_fn(state)
        from ..snap import capture_state, state_digest
        return state_digest(capture_state(getattr(state, "world", state)))

    def _split(self, point: dict) -> tuple[dict, dict]:
        prefix = {k: point[k] for k in self.prefix_keys if k in point}
        tail = {k: v for k, v in point.items() if k not in self.prefix_keys}
        return prefix, tail

    def run(self, points: Sequence[dict],
            stats: Optional[MemoStats] = None) -> list[Any]:
        """Run every point; returns results in point order."""
        stats = stats if stats is not None else MemoStats()
        points = list(points)
        results: list[Any] = [_PENDING] * len(points)
        groups: dict[str, list[int]] = {}
        prefixes: dict[str, dict] = {}
        for i, point in enumerate(points):
            prefix, _tail = self._split(point)
            key = _canonical(prefix)
            groups.setdefault(key, []).append(i)
            prefixes[key] = prefix
        for key, indices in groups.items():
            self._run_group(prefixes[key], key, indices, points, results,
                            stats)
        return results

    def _run_group(self, prefix: dict, key: str, indices: list[int],
                   points: list[dict], results: list[Any],
                   stats: MemoStats) -> None:
        """All points of one prefix: cache lookups, then forked tails."""
        store = self.store
        digest: Optional[str] = None
        if store is not None:
            cached = store.load(_prefix_record(prefix))
            if cached is not _PENDING:
                digest = cached
        todo = list(indices)
        if digest is not None:
            stats.prefix_digests[key] = digest
            todo = []
            for i in indices:
                _p, tail = self._split(points[i])
                cached = store.load(_result_record(digest, tail))
                if cached is _PENDING:
                    todo.append(i)
                else:
                    results[i] = cached
                    stats.result_hits += 1
        if not todo:
            return
        state = self.prefix_fn(**prefix)
        stats.warmups_simulated += 1
        actual = self._digest(state)
        if digest is not None and actual != digest:
            # The code changed under an unchanged format version: the
            # cached digest no longer describes this prefix. Distrust
            # every result served off it and recompute the whole group.
            for i in indices:
                if i not in todo and results[i] is not _PENDING:
                    results[i] = _PENDING
                    stats.result_hits -= 1
                    todo.append(i)
            todo.sort()
        digest = actual
        stats.prefix_digests[key] = digest
        if store is not None:
            store.save(_prefix_record(prefix), digest)
        can_fork = fork_available()
        for pos, i in enumerate(todo):
            _p, tail = self._split(points[i])
            last = pos == len(todo) - 1
            if last:
                # The group is done with this warm world: the final tail
                # may consume it in-process, no fork needed.
                result = _roundtrip(self.tail_fn(state, **tail))
            elif can_fork:
                result = self._tail_in_fork(state, tail)
                stats.forks += 1
            else:  # pragma: no cover - non-POSIX hosts
                result = _roundtrip(self.tail_fn(state, **tail))
                state = self.prefix_fn(**prefix)
                stats.warmups_simulated += 1
            if pos > 0:
                stats.warmup_reuses += 1
            stats.points_run += 1
            results[i] = result
            if store is not None:
                store.save(_result_record(digest, tail), result)

    def _tail_in_fork(self, state: Any, tail: dict) -> Any:
        """Run one tail in a forked child; the parent's state survives.

        The child streams its JSON-able result (or the error that killed
        it) back over a pipe and always leaves via ``os._exit``, so the
        parent's atexit/pytest machinery runs exactly once.
        """
        res_r, res_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(res_r)
            code = 0
            try:
                payload = {"result": self.tail_fn(state, **tail)}
            except BaseException as exc:  # noqa: BLE001 - ferried to parent
                payload = {"error": f"{type(exc).__name__}: {exc}"}
                code = 1
            try:
                with os.fdopen(res_w, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, default=str)
            finally:
                os._exit(code)
        os.close(res_w)
        try:
            with os.fdopen(res_r, "r", encoding="utf-8") as fh:
                text = fh.read()
        finally:
            os.waitpid(pid, 0)
        payload = json.loads(text)
        if "error" in payload:
            raise RuntimeError(
                f"memoized tail {tail!r} failed in child: {payload['error']}")
        return payload["result"]


#: The point parameters that select a Fig 1(a) warm-up prefix;
#: everything else (``msgs_per_core``) is the measured tail.
FIG1A_PREFIX_KEYS = ("mode", "cores", "msg_bytes", "window", "seed")


def _fig1a_prefix(mode: str, cores: int, msg_bytes: int = 8,
                  window: int = 16, seed: int = 0):
    from .msgrate import warm_msgrate
    return warm_msgrate(mode=mode, cores=cores, msg_bytes=msg_bytes,
                        window=window, seed=seed)


def _fig1a_tail(warm, msgs_per_core: int) -> dict[str, Any]:
    result = warm.measure(msgs_per_core)
    return {"rate": result.rate, "span": result.span,
            "messages": result.messages}


def fig1a_executor(cache_dir: Optional[str] = None) -> WarmPrefixExecutor:
    """The memoized Fig 1(a) executor: points are ``{mode, cores,
    msgs_per_core}`` dicts (plus optional ``msg_bytes``/``window``/
    ``seed``); results are ``{rate, span, messages}`` dicts."""
    return WarmPrefixExecutor(_fig1a_prefix, _fig1a_tail,
                              FIG1A_PREFIX_KEYS, cache_dir=cache_dir)
