"""Message-rate microbenchmark (Fig 1a).

Two nodes; node 0's workers blast windowed nonblocking sends at node 1's
workers, which keep windows of pre-posted receives. The achieved aggregate
rate (completed receives / elapsed simulated time) is measured per core
count, for the execution modes of Fig 1(a):

- ``everywhere`` — MPI everywhere: N single-threaded processes per node,
  each with its own (single) VCI;
- ``threads-original`` — 1 process, N threads, MPI_THREAD_MULTIPLE on one
  plain communicator: every operation funnels through one VCI;
- ``threads-tags`` — N threads + the Listing 2 tag/hint bundle (one VCI
  per thread via tag bits);
- ``threads-comms`` — N threads, one duplicated communicator per thread;
- ``threads-endpoints`` — N threads, one endpoint per thread.

Two ablation modes dissect the hint bundle:

- ``threads-overtaking`` — only ``mpi_assert_allow_overtaking``: sends
  spread over VCIs but receives stay on the base VCI (Section II-A);
- ``threads-tags-hash`` — no-wildcard assertions with the default *hash*
  tag-to-VCI policy instead of one-to-one (Lesson 7: without the
  bit-layout hints the mapping is at the mercy of the hash).

The paper's headline: the logically-parallel MPI+threads modes match MPI
everywhere, while the original mode stays flat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Generator, Optional

import numpy as np

from ..errors import MpiUsageError
from ..mapping.tags import TagSchema, listing2_info
from ..mpi.endpoints import comm_create_endpoints
from ..mpi.request import waitall
from ..netsim.config import NetworkConfig
from ..netsim.topology import ClusterSpec
from ..runtime.world import World

__all__ = ["MsgRateConfig", "MsgRateResult", "MsgRateWarm", "run_msgrate",
           "warm_msgrate", "MODES"]

MODES = ("everywhere", "threads-original", "threads-tags", "threads-comms",
         "threads-endpoints", "threads-overtaking", "threads-tags-hash")


@dataclass
class MsgRateConfig:
    """Parameters for the message-rate microbenchmark."""

    mode: str = "everywhere"
    #: Communicating cores per node.
    cores: int = 8
    #: Messages each sender core issues.
    msgs_per_core: int = 64
    #: Payload bytes per message (Fig 1a uses small messages).
    msg_bytes: int = 8
    #: Nonblocking window depth.
    window: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.mode not in MODES:
            raise MpiUsageError(f"unknown mode {self.mode!r}")
        if self.cores < 1:
            raise MpiUsageError("cores must be >= 1")


@dataclass
class MsgRateResult:
    """Aggregate rate and span measured by one message-rate run."""

    cfg: MsgRateConfig
    #: Aggregate messages/second (completed receives / span).
    rate: float
    #: Simulated seconds from first send post to last receive completion.
    span: float
    messages: int

    def __str__(self) -> str:
        return (f"{self.cfg.mode:18s} cores={self.cfg.cores:3d} "
                f"rate={self.rate / 1e6:8.2f} M msg/s")


def _sender(proc, comm, peer: int, tag_of, cfg: MsgRateConfig,
            payload: np.ndarray) -> Generator:
    pending = []
    for k in range(cfg.msgs_per_core):
        req = yield from comm.Isend(payload, peer, tag_of(k))
        pending.append(req)
        if len(pending) >= cfg.window:
            yield from waitall(pending)
            pending = []
    yield from waitall(pending)


def _receiver(proc, comm, peer: int, tag_of, cfg: MsgRateConfig,
              done_times: list) -> Generator:
    n = cfg.msg_bytes
    bufs = [np.zeros(n, dtype=np.uint8) for _ in range(cfg.window)]
    k = 0
    while k < cfg.msgs_per_core:
        batch = min(cfg.window, cfg.msgs_per_core - k)
        reqs = []
        for j in range(batch):
            req = yield from comm.Irecv(bufs[j], peer, tag_of(k + j))
            reqs.append(req)
        yield from waitall(reqs)
        k += batch
    done_times.append(proc.sim.now)


def run_msgrate(cfg: MsgRateConfig,
                net: Optional[NetworkConfig] = None,
                max_vcis_per_proc: Optional[int] = None,
                metrics=None, tracer=None) -> MsgRateResult:
    """Run one message-rate experiment; returns the achieved rate.

    Pass a :class:`repro.obs.MetricsRegistry` as ``metrics`` and/or an
    enabled :class:`repro.sim.trace.Tracer` as ``tracer`` to instrument
    the run (``python -m repro profile msgrate`` does exactly this).
    Instrumentation does not change the simulated timings.
    """
    n = cfg.cores
    payload = np.zeros(cfg.msg_bytes, dtype=np.uint8)
    done_times: list[float] = []
    net = net or NetworkConfig()

    if cfg.mode == "everywhere":
        world = World(cluster=ClusterSpec(nodes=2, procs_per_node=n,
                                          network=net),
                      max_vcis_per_proc=1, seed=cfg.seed,
                      metrics=metrics, tracer=tracer)

        def sender_main(proc):
            yield from _sender(proc, proc.comm_world, peer=n + proc.rank,
                               tag_of=lambda k: 0, cfg=cfg, payload=payload)

        def receiver_main(proc):
            yield from _receiver(proc, proc.comm_world, peer=proc.rank - n,
                                 tag_of=lambda k: 0, cfg=cfg,
                                 done_times=done_times)

        tasks = [world.procs[r].spawn(sender_main(world.procs[r]))
                 for r in range(n)]
        tasks += [world.procs[n + r].spawn(receiver_main(world.procs[n + r]))
                  for r in range(n)]
        world.run_all(tasks, max_steps=None)
    else:
        if max_vcis_per_proc is None:
            max_vcis_per_proc = 1 if cfg.mode == "threads-original" \
                else max(4, 2 * n)
        world = World(cluster=ClusterSpec(nodes=2, threads_per_proc=n,
                                          network=net),
                      max_vcis_per_proc=max_vcis_per_proc,
                      seed=cfg.seed, metrics=metrics, tracer=tracer)

        def node_main(proc):
            is_sender = proc.rank == 0
            peer_rank = 1 - proc.rank
            if cfg.mode in ("threads-original", "threads-tags",
                            "threads-overtaking", "threads-tags-hash"):
                if cfg.mode == "threads-tags":
                    bits = max(1, math.ceil(math.log2(max(2, n))))
                    comm = yield from proc.comm_world.Dup(
                        listing2_info(n, bits))
                    schema = TagSchema(num_tid_bits=bits, num_app_bits=4)

                    def make(tid):
                        return (comm, peer_rank,
                                lambda k, t=tid: schema.encode(t, t, 0))
                elif cfg.mode == "threads-overtaking":
                    from ..mapping.tags import overtaking_only_info
                    comm = yield from proc.comm_world.Dup(
                        overtaking_only_info(n))

                    def make(tid):
                        return comm, peer_rank, (lambda k, t=tid: t)
                elif cfg.mode == "threads-tags-hash":
                    from ..mpi.info import Info
                    comm = yield from proc.comm_world.Dup(Info({
                        "mpi_assert_no_any_tag": "true",
                        "mpi_assert_no_any_source": "true",
                        "mpich_num_vcis": str(n),
                    }))

                    def make(tid):
                        return comm, peer_rank, (lambda k, t=tid: t)
                else:
                    comm = proc.comm_world

                    def make(tid):
                        return comm, peer_rank, (lambda k, t=tid: t)
            elif cfg.mode == "threads-comms":
                comms = []
                for tid in range(n):
                    comms.append(
                        (yield from proc.comm_world.Dup(name=f"mr{tid}")))

                def make(tid):
                    return comms[tid], peer_rank, (lambda k: 0)
            else:  # threads-endpoints
                eps = yield from comm_create_endpoints(proc.comm_world, n)

                def make(tid):
                    # ep tid on node0 pairs with ep tid on node1
                    peer_ep = peer_rank * n + tid
                    return eps[tid], peer_ep, (lambda k: 0)

            threads = []
            for tid in range(n):
                comm, peer, tag_of = make(tid)
                if is_sender:
                    threads.append(proc.spawn(
                        _sender(proc, comm, peer, tag_of, cfg, payload)))
                else:
                    threads.append(proc.spawn(
                        _receiver(proc, comm, peer, tag_of, cfg, done_times)))
            yield proc.sim.all_of(threads)

        tasks = [world.procs[r].spawn(node_main(world.procs[r]))
                 for r in range(2)]
        world.run_all(tasks, max_steps=None)

    world.finalize_metrics()
    span = max(done_times)
    total = n * cfg.msgs_per_core
    return MsgRateResult(cfg=cfg, rate=total / span, span=span,
                         messages=total)


class MsgRateWarm:
    """A message-rate world warmed through its channel setup.

    The *warm-up prefix* of a Fig 1(a) point is everything before the
    first measured send: world construction plus the mode's channel
    setup (communicator duplication, endpoint creation, tag-schema
    bundles). That prefix depends only on ``(mode, cores, msg_bytes,
    window, seed)`` — not on ``msgs_per_core`` — so a sweep over message
    counts can simulate it once and fork one child per point
    (:mod:`repro.bench.memo` does exactly that, keyed by the warm
    world's state digest).

    :meth:`measure` continues from wherever setup left the simulated
    clock; the reported span covers the blast phase only (measure start
    to last receive completion). :func:`run_msgrate` by contrast folds
    setup into the span — the two are separate entry points with
    separate, documented semantics, not byte-identical twins.
    """

    def __init__(self, mode: str, cores: int, msg_bytes: int = 8,
                 window: int = 16, seed: int = 0,
                 net: Optional[NetworkConfig] = None,
                 max_vcis_per_proc: Optional[int] = None):
        #: The point parameters shared by every measure on this world
        #: (``msgs_per_core`` is filled in per :meth:`measure`).
        self.base = MsgRateConfig(mode=mode, cores=cores, window=window,
                                  msg_bytes=msg_bytes, seed=seed)
        n = cores
        net = net or NetworkConfig()
        self._makes: dict[int, object] = {}
        if mode == "everywhere":
            # MPI everywhere has no channel setup: comm_world is the
            # channel. The warm prefix is world construction alone.
            self.world = World(cluster=ClusterSpec(nodes=2, procs_per_node=n,
                                                   network=net),
                               max_vcis_per_proc=1, seed=seed)
            return
        if max_vcis_per_proc is None:
            max_vcis_per_proc = 1 if mode == "threads-original" \
                else max(4, 2 * n)
        self.world = World(cluster=ClusterSpec(nodes=2, threads_per_proc=n,
                                               network=net),
                           max_vcis_per_proc=max_vcis_per_proc, seed=seed)
        tasks = [self.world.procs[r].spawn(
                     self._setup_main(self.world.procs[r]))
                 for r in range(2)]
        self.world.run_all(tasks, max_steps=None)

    def _setup_main(self, proc) -> Generator:
        """Build this proc's per-thread channel factory (the mode switch
        of :func:`run_msgrate`, minus the blast)."""
        cfg = self.base
        n = cfg.cores
        peer_rank = 1 - proc.rank
        if cfg.mode == "threads-tags":
            bits = max(1, math.ceil(math.log2(max(2, n))))
            comm = yield from proc.comm_world.Dup(listing2_info(n, bits))
            schema = TagSchema(num_tid_bits=bits, num_app_bits=4)

            def make(tid):
                return (comm, peer_rank,
                        lambda k, t=tid: schema.encode(t, t, 0))
        elif cfg.mode == "threads-overtaking":
            from ..mapping.tags import overtaking_only_info
            comm = yield from proc.comm_world.Dup(overtaking_only_info(n))

            def make(tid):
                return comm, peer_rank, (lambda k, t=tid: t)
        elif cfg.mode == "threads-tags-hash":
            from ..mpi.info import Info
            comm = yield from proc.comm_world.Dup(Info({
                "mpi_assert_no_any_tag": "true",
                "mpi_assert_no_any_source": "true",
                "mpich_num_vcis": str(n),
            }))

            def make(tid):
                return comm, peer_rank, (lambda k, t=tid: t)
        elif cfg.mode == "threads-original":
            comm = proc.comm_world

            def make(tid):
                return comm, peer_rank, (lambda k, t=tid: t)
        elif cfg.mode == "threads-comms":
            comms = []
            for tid in range(n):
                comms.append(
                    (yield from proc.comm_world.Dup(name=f"mr{tid}")))

            def make(tid):
                return comms[tid], peer_rank, (lambda k: 0)
        else:  # threads-endpoints
            eps = yield from comm_create_endpoints(proc.comm_world, n)

            def make(tid):
                peer_ep = peer_rank * n + tid
                return eps[tid], peer_ep, (lambda k: 0)
        self._makes[proc.rank] = make

    def measure(self, msgs_per_core: int) -> MsgRateResult:
        """Blast ``msgs_per_core`` messages per core over the warm
        channels; returns the achieved rate.

        Mutates the world (clocks, counters) — callers measuring several
        points off one warm prefix must fork per point, not reuse this
        object (:class:`repro.bench.memo.WarmPrefixExecutor` enforces
        that discipline).
        """
        cfg = replace(self.base, msgs_per_core=msgs_per_core)
        n = cfg.cores
        world = self.world
        payload = np.zeros(cfg.msg_bytes, dtype=np.uint8)
        done_times: list[float] = []
        start = world.sim.now
        if cfg.mode == "everywhere":
            def sender_main(proc):
                yield from _sender(proc, proc.comm_world,
                                   peer=n + proc.rank, tag_of=lambda k: 0,
                                   cfg=cfg, payload=payload)

            def receiver_main(proc):
                yield from _receiver(proc, proc.comm_world,
                                     peer=proc.rank - n, tag_of=lambda k: 0,
                                     cfg=cfg, done_times=done_times)

            tasks = [world.procs[r].spawn(sender_main(world.procs[r]))
                     for r in range(n)]
            tasks += [world.procs[n + r].spawn(
                          receiver_main(world.procs[n + r]))
                      for r in range(n)]
        else:
            def blast_main(proc):
                is_sender = proc.rank == 0
                make = self._makes[proc.rank]
                threads = []
                for tid in range(n):
                    comm, peer, tag_of = make(tid)
                    if is_sender:
                        threads.append(proc.spawn(
                            _sender(proc, comm, peer, tag_of, cfg, payload)))
                    else:
                        threads.append(proc.spawn(
                            _receiver(proc, comm, peer, tag_of, cfg,
                                      done_times)))
                yield proc.sim.all_of(threads)

            tasks = [world.procs[r].spawn(blast_main(world.procs[r]))
                     for r in range(2)]
        world.run_all(tasks, max_steps=None)
        world.finalize_metrics()
        span = max(done_times) - start
        total = n * cfg.msgs_per_core
        return MsgRateResult(cfg=cfg, rate=total / span, span=span,
                             messages=total)


def warm_msgrate(mode: str, cores: int, msg_bytes: int = 8,
                 window: int = 16, seed: int = 0) -> MsgRateWarm:
    """Simulate one Fig 1(a) warm-up prefix; returns the warm world."""
    return MsgRateWarm(mode=mode, cores=cores, msg_bytes=msg_bytes,
                       window=window, seed=seed)
