"""Generic parameter sweeps with tabular/CSV output.

A :class:`Sweep` runs an experiment function over the cartesian product of
named parameter values and collects flat result rows — the workhorse
behind "regenerate this figure" scripts::

    sweep = Sweep(name="fig1a",
                  params={"mode": ["everywhere", "threads-original"],
                          "cores": [1, 8, 32]})

    def run(mode, cores):
        r = run_msgrate(MsgRateConfig(mode=mode, cores=cores))
        return {"rate_Mmsgs": r.rate / 1e6}

    rows = sweep.run(run)
    print(sweep.to_table(rows))
    sweep.to_csv(rows, "fig1a.csv")
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from .report import Table

__all__ = ["Sweep", "SweepRow"]


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: the parameters and the measured outputs."""

    params: dict[str, Any]
    outputs: dict[str, Any]

    def flat(self) -> dict[str, Any]:
        """Merge params and outputs into one row dict (keys must not clash)."""
        out = dict(self.params)
        for k, v in self.outputs.items():
            if k in out:
                raise ValueError(f"output column {k!r} collides with a "
                                 "parameter name")
            out[k] = v
        return out


class Sweep:
    """Cartesian-product experiment sweep."""

    def __init__(self, name: str, params: Mapping[str, Iterable[Any]]):
        if not params:
            raise ValueError("sweep needs at least one parameter")
        self.name = name
        self.params = {k: list(v) for k, v in params.items()}
        for k, vs in self.params.items():
            if not vs:
                raise ValueError(f"parameter {k!r} has no values")

    @property
    def points(self) -> list[dict[str, Any]]:
        keys = list(self.params)
        return [dict(zip(keys, combo))
                for combo in itertools.product(*self.params.values())]

    def run(self, fn: Callable[..., Mapping[str, Any]],
            progress: Optional[Callable[[dict], None]] = None,
            jobs: int = 1, checkpoint_dir: Optional[str] = None,
            resume: bool = False) -> list[SweepRow]:
        """Run ``fn(**point)`` for every point; ``fn`` returns an output
        mapping. ``progress`` (if given) is called with each point before
        it runs. ``jobs > 1`` fans independent points across worker
        processes (see :mod:`repro.bench.parallel`); each point is a
        self-contained simulation, so rows are identical to a serial run
        and are returned in point order. ``checkpoint_dir`` persists each
        completed point atomically and ``resume=True`` skips points
        already checkpointed — a killed campaign resumed this way returns
        rows byte-identical to an uninterrupted run (see
        docs/performance.md)."""
        from .parallel import run_points
        outputs_list = run_points(fn, self.points, jobs=jobs,
                                  progress=progress,
                                  checkpoint_dir=checkpoint_dir,
                                  resume=resume)
        rows = []
        for point, outputs in zip(self.points, outputs_list):
            row = SweepRow(params=point, outputs=dict(outputs))
            row.flat()  # validates output/parameter name collisions
            rows.append(row)
        return rows

    # -- output ----------------------------------------------------------
    def columns(self, rows: list[SweepRow]) -> list[str]:
        """Column order: sweep params first, then outputs as discovered."""
        cols = list(self.params)
        for row in rows:
            for k in row.outputs:
                if k not in cols:
                    cols.append(k)
        return cols

    def to_table(self, rows: list[SweepRow]) -> str:
        """Render sweep rows as an aligned text table."""
        cols = self.columns(rows)
        table = Table(self.name, cols)
        for row in rows:
            flat = row.flat()
            table.add(*[flat.get(c, "") for c in cols])
        return table.render()

    def to_csv(self, rows: list[SweepRow], path: str) -> str:
        """Write sweep rows to ``path`` as CSV; returns the path."""
        cols = self.columns(rows)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=cols)
            writer.writeheader()
            for row in rows:
                writer.writerow(row.flat())
        return path

    def pivot(self, rows: list[SweepRow], index: str, column: str,
              value: str) -> Table:
        """A 2D view: one table row per ``index`` value, one table column
        per ``column`` value, cells from ``value``."""
        col_values = self.params.get(column)
        if col_values is None:
            raise ValueError(f"{column!r} is not a sweep parameter")
        idx_values = self.params.get(index)
        if idx_values is None:
            raise ValueError(f"{index!r} is not a sweep parameter")
        lookup = {}
        for row in rows:
            flat = row.flat()
            lookup[(flat[index], flat[column])] = flat.get(value, "")
        table = Table(f"{self.name}: {value}",
                      [index] + [str(c) for c in col_values])
        for iv in idx_values:
            table.add(iv, *[lookup.get((iv, cv), "") for cv in col_values])
        return table
