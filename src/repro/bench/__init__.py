"""Benchmark harness: workload generators and reporting."""

from .msgrate import MODES, MsgRateConfig, MsgRateResult, run_msgrate
from .report import Table, write_results
from .sweep import Sweep, SweepRow

__all__ = ["MODES", "MsgRateConfig", "MsgRateResult", "Sweep", "SweepRow",
           "Table", "run_msgrate", "write_results"]
