"""Benchmark harness: workload generators, parallel execution, reporting."""

from .memo import MemoStats, WarmPrefixExecutor, fig1a_executor
from .msgrate import (MODES, MsgRateConfig, MsgRateResult, MsgRateWarm,
                      run_msgrate, warm_msgrate)
from .parallel import (auto_jobs, chunk_size, default_jobs, run_points,
                       scaling_run)
from .report import Table, write_results
from .sweep import Sweep, SweepRow

__all__ = ["MODES", "MemoStats", "MsgRateConfig", "MsgRateResult",
           "MsgRateWarm", "Sweep", "SweepRow", "Table",
           "WarmPrefixExecutor", "auto_jobs", "chunk_size", "default_jobs",
           "fig1a_executor", "run_msgrate", "run_points", "scaling_run",
           "warm_msgrate", "write_results"]
