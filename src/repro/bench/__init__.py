"""Benchmark harness: workload generators, parallel execution, reporting."""

from .msgrate import MODES, MsgRateConfig, MsgRateResult, run_msgrate
from .parallel import default_jobs, run_points, scaling_run
from .report import Table, write_results
from .sweep import Sweep, SweepRow

__all__ = ["MODES", "MsgRateConfig", "MsgRateResult", "Sweep", "SweepRow",
           "Table", "default_jobs", "run_msgrate", "run_points",
           "scaling_run", "write_results"]
