"""Contention and resource introspection for a finished simulation.

The paper's performance arguments are about *where threads wait*: VCI
locks, shared NIC contexts, matching queues. This module extracts those
counters from a :class:`~repro.runtime.world.World` after a run and folds
them into a structured report the benches and tests can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.world import World

__all__ = ["VciReport", "NodeReport", "ContentionReport", "collect"]


@dataclass(frozen=True)
class VciReport:
    """One VCI's traffic and contention."""

    proc_rank: int
    index: int
    sends: int
    recvs: int
    lock_acquisitions: int
    lock_contended: int
    lock_wait_time: float
    match_scans: int
    max_posted_depth: int
    max_unexpected_depth: int
    hw_context: int
    hw_context_shared: bool


@dataclass(frozen=True)
class NodeReport:
    """One node's NIC usage."""

    node_id: int
    contexts_used: int
    oversubscription: float
    load_imbalance: float
    total_messages: int


@dataclass
class ContentionReport:
    """Whole-world summary."""

    vcis: list[VciReport] = field(default_factory=list)
    nodes: list[NodeReport] = field(default_factory=list)

    # -- aggregates ------------------------------------------------------
    @property
    def total_lock_wait(self) -> float:
        return sum(v.lock_wait_time for v in self.vcis)

    @property
    def total_contended_acquisitions(self) -> int:
        return sum(v.lock_contended for v in self.vcis)

    @property
    def total_match_scans(self) -> int:
        return sum(v.match_scans for v in self.vcis)

    @property
    def busiest_vci(self) -> VciReport:
        if not self.vcis:
            raise ValueError("no VCIs in report")
        return max(self.vcis, key=lambda v: v.sends + v.recvs)

    @property
    def active_vcis(self) -> int:
        return sum(1 for v in self.vcis if v.sends + v.recvs > 0)

    def channel_spread(self) -> float:
        """Fraction of traffic on the busiest channel (1.0 = fully
        serialized, 1/n = perfectly spread over n active channels)."""
        total = sum(v.sends + v.recvs for v in self.vcis)
        if total == 0:
            return 0.0
        b = self.busiest_vci
        return (b.sends + b.recvs) / total

    def render(self) -> str:
        """Format the per-VCI contention table as aligned text."""
        lines = [f"{'rank':>4} {'vci':>4} {'sends':>7} {'recvs':>7} "
                 f"{'lockwait(us)':>13} {'contended':>10} {'scans':>7} "
                 f"{'ctx':>4} {'shared':>7}"]
        for v in sorted(self.vcis, key=lambda v: (v.proc_rank, v.index)):
            if v.sends + v.recvs == 0:
                continue
            lines.append(
                f"{v.proc_rank:>4} {v.index:>4} {v.sends:>7} {v.recvs:>7} "
                f"{v.lock_wait_time * 1e6:>13.2f} {v.lock_contended:>10} "
                f"{v.match_scans:>7} {v.hw_context:>4} "
                f"{str(v.hw_context_shared):>7}")
        for n in self.nodes:
            lines.append(
                f"node {n.node_id}: contexts={n.contexts_used} "
                f"oversub={n.oversubscription:.2f} "
                f"imbalance={n.load_imbalance:.2f} msgs={n.total_messages}")
        return "\n".join(lines)


def collect(world: "World") -> ContentionReport:
    """Harvest contention counters from every process and node."""
    report = ContentionReport()
    for proc in world.procs:
        for vci in proc.lib.vci_pool.active_vcis:
            report.vcis.append(VciReport(
                proc_rank=proc.rank,
                index=vci.index,
                sends=vci.sends,
                recvs=vci.recvs,
                lock_acquisitions=vci.lock.stats.acquisitions,
                lock_contended=vci.lock.stats.contended_acquisitions,
                lock_wait_time=vci.lock.stats.total_wait_time,
                match_scans=vci.engine.total_scans,
                max_posted_depth=vci.engine.max_posted_depth,
                max_unexpected_depth=vci.engine.max_unexpected_depth,
                hw_context=vci.hw_context.index,
                hw_context_shared=vci.hw_context.is_shared,
            ))
    for node in world.nodes:
        used = [c for c in node.nic.contexts if c.sharers > 0]
        report.nodes.append(NodeReport(
            node_id=node.node_id,
            contexts_used=len(used),
            oversubscription=node.nic.oversubscription,
            load_imbalance=node.nic.load_imbalance(),
            total_messages=node.nic.total_messages(),
        ))
    return report
