"""Table I: summary of design choices to expose logically parallel
communication, derived from (and cross-checked against) the codebase.

The matrix mirrors the paper's Table I:

| Operation      | Existing MPI mechanisms   | Endpoints | Partitioned      |
|----------------|---------------------------|-----------|------------------|
| Point-to-point | Communicators or tags     | Endpoints | Partitioned APIs |
| RMA            | Window(s)                 | Endpoints | TBD              |
| Collective     | Comms + user intranode    | Endpoints | TBD              |

plus the *pattern* dimension the lessons add: wildcard polling and dynamic
neighbourhoods are out of scope for partitioned communication (Lesson 15).
Each capability entry names the module that implements (or rejects) it, so
the table is checkable by the test suite rather than being prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Capability", "scope_matrix", "render_table", "MECHANISM_NAMES",
           "OPERATIONS", "PATTERNS"]

MECHANISM_NAMES = ("existing", "endpoints", "partitioned")
OPERATIONS = ("point-to-point", "rma", "collective")
PATTERNS = ("regular-static", "irregular-dynamic", "wildcard-polling")


@dataclass(frozen=True)
class Capability:
    """One cell of the scope matrix."""

    supported: bool
    #: "standard" (MPI 4.0), "proposal" (endpoints), "tbd" (not defined),
    #: or "unsupported".
    status: str
    #: How the mechanism expresses it, in the paper's words.
    how: str
    #: Module implementing (or rejecting) it in this reproduction.
    module: str
    #: User must hand-roll part of the operation (Lesson 18).
    user_side_work: bool = False


def scope_matrix() -> dict[tuple[str, str], Capability]:
    """The full (operation/pattern, mechanism) capability matrix."""
    m: dict[tuple[str, str], Capability] = {}

    # --- point-to-point ---------------------------------------------------
    m[("point-to-point", "existing")] = Capability(
        True, "standard", "communicators or tags (+ MPI 4.0 Info hints)",
        "repro.mapping.communicators / repro.mapping.tags")
    m[("point-to-point", "endpoints")] = Capability(
        True, "proposal", "endpoints (rank-addressed)",
        "repro.mpi.endpoints")
    m[("point-to-point", "partitioned")] = Capability(
        True, "standard", "partitioned point-to-point APIs",
        "repro.mpi.partitioned")

    # --- RMA ---------------------------------------------------------------
    m[("rma", "existing")] = Capability(
        True, "standard",
        "window(s); atomics limited by ordering semantics (Lesson 16)",
        "repro.mpi.rma.window")
    m[("rma", "endpoints")] = Capability(
        True, "proposal", "multiple endpoints within a single window",
        "repro.mpi.rma.window (EndpointVciMap path)")
    m[("rma", "partitioned")] = Capability(
        False, "tbd", "partitioned RMA APIs (TBD in MPI 4.0)",
        "not implemented: no standardized semantics exist")

    # --- collectives --------------------------------------------------------
    m[("collective", "existing")] = Capability(
        True, "standard",
        "communicator per thread + user-driven intranode portion",
        "repro.mpi.coll.hierarchical", user_side_work=True)
    m[("collective", "endpoints")] = Capability(
        True, "proposal",
        "all endpoints join one collective; library does intranode part",
        "repro.mpi.coll.endpoint_coll")
    m[("collective", "partitioned")] = Capability(
        False, "tbd",
        "partitioned collective APIs (TBD; prospective model only)",
        "repro.apps.vasp.allreduce ('partitioned' mode, prospective)")

    # --- communication patterns (the lessons' scope dimension) -----------
    m[("regular-static", "existing")] = Capability(
        True, "standard", "mirrored communicator maps / tag encodings",
        "repro.mapping.communicators")
    m[("regular-static", "endpoints")] = Capability(
        True, "proposal", "direct endpoint addressing",
        "repro.mapping.endpoints")
    m[("regular-static", "partitioned")] = Capability(
        True, "standard", "partition per face thread (Listing 4)",
        "repro.mapping.partitioned")

    m[("irregular-dynamic", "existing")] = Capability(
        True, "standard",
        "possible but static maps conflict under churn (Lesson 5)",
        "repro.apps.graph.vite", user_side_work=True)
    m[("irregular-dynamic", "endpoints")] = Capability(
        True, "proposal", "address new remote endpoints at any time",
        "repro.apps.graph.vite")
    m[("irregular-dynamic", "partitioned")] = Capability(
        False, "unsupported",
        "persistent by definition; destinations must be known a priori "
        "(Lesson 15)", "repro.mpi.partitioned (precv_init rejects)")

    m[("wildcard-polling", "existing")] = Capability(
        True, "standard",
        "wildcards per communicator; polling must iterate over comms "
        "(Fig 5)", "repro.apps.legion.runtime")
    m[("wildcard-polling", "endpoints")] = Capability(
        True, "proposal", "one wildcard receive on a dedicated endpoint",
        "repro.apps.legion.runtime")
    m[("wildcard-polling", "partitioned")] = Capability(
        False, "unsupported",
        "partitioned receives cannot use wildcards (Lesson 15)",
        "repro.mpi.partitioned (precv_init rejects)")
    return m


def render_table(rows: Optional[tuple[str, ...]] = None) -> str:
    """ASCII rendering of (a slice of) the scope matrix."""
    matrix = scope_matrix()
    rows = rows or (OPERATIONS + PATTERNS)
    headers = ["operation/pattern"] + [m for m in MECHANISM_NAMES]
    lines = []
    widths = [22, 34, 30, 34]
    fmt = "| " + " | ".join(f"{{:<{w}}}" for w in widths) + " |"
    lines.append(fmt.format(*headers))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        cells = [row]
        for mech in MECHANISM_NAMES:
            cap = matrix[(row, mech)]
            mark = "yes" if cap.supported else \
                ("TBD" if cap.status == "tbd" else "NO")
            extra = " (+user work)" if cap.user_side_work else ""
            cells.append(f"{mark}: {cap.how}{extra}"[: widths[len(cells)]])
        lines.append(fmt.format(*cells))
    return "\n".join(lines)
