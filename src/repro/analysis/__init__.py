"""Scope (Table I) and usability analysis of the three designs."""

from .contention import ContentionReport, NodeReport, VciReport, collect
from .scope import (
    MECHANISM_NAMES,
    OPERATIONS,
    PATTERNS,
    Capability,
    render_table,
    scope_matrix,
)
from .usability import UsabilityReport, render_usability, stencil_usability

__all__ = [
    "Capability", "ContentionReport", "MECHANISM_NAMES", "NodeReport",
    "OPERATIONS", "PATTERNS", "UsabilityReport", "VciReport", "collect",
    "render_table", "render_usability", "scope_matrix",
    "stencil_usability",
]
