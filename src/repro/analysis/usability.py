"""Usability metrics: how much code/knowledge each mechanism demands.

The paper's qualitative axis made countable. For a given stencil geometry
we count, per mechanism:

- setup API calls (communicator dups, info sets, endpoint creation,
  partitioned inits),
- per-iteration communication calls per thread,
- implementation-specific hints required (portability hazard, Lesson 8),
- new concepts the user must learn,
- whether the mapping logic needs mirroring math (Lesson 1's complexity).

Numbers are derived from the mapping helpers, not hand-entered, wherever
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.communicators import (
    MirroredCommMap,
    StencilGeometry,
    analyze_map,
)
from ..mapping.partitioned import PartitionPlan

__all__ = ["UsabilityReport", "stencil_usability", "render_usability"]


@dataclass(frozen=True)
class UsabilityReport:
    """Programming-effort scorecard for one communication mechanism."""

    mechanism: str
    #: One-time setup API calls per process.
    setup_calls: int
    #: Info hint keys the user must set.
    hint_keys: int
    #: Of those, implementation-specific (non-standard) keys (Lesson 8).
    implementation_specific_hints: int
    #: Communication calls per thread per halo exchange (excl. waits).
    calls_per_exchange: int
    #: Synchronization steps per iteration beyond the exchange itself
    #: (partitioned's single+barrier, Lesson 14).
    extra_sync_steps: int
    #: Does the user write mirroring/matching math (Lesson 1)?
    needs_mirroring_logic: bool
    #: New concept count the user must learn for this mechanism.
    new_concepts: int


def stencil_usability(geom: StencilGeometry) -> dict[str, UsabilityReport]:
    """Usability accounting for a halo exchange on ``geom``."""
    nthreads = 1
    for n in geom.thread_grid:
        nthreads *= n
    # worst-case remote directions for a thread (corner thread)
    dim = geom.dim
    remote_dirs = len(geom.stencil)
    # interior process, corner thread: all directions that leave the
    # process; for one patch per thread that is up to len(stencil)
    per_thread_msgs = 2 * dim if all(
        sum(abs(c) for c in d) == 1 for d in geom.stencil) else remote_dirs

    mirrored = analyze_map(MirroredCommMap(geom))
    reports = {}

    reports["original"] = UsabilityReport(
        mechanism="original", setup_calls=0, hint_keys=0,
        implementation_specific_hints=0,
        calls_per_exchange=2 * per_thread_msgs, extra_sync_steps=0,
        needs_mirroring_logic=False, new_concepts=0)

    # Communicators: one Dup per map label + the mirroring assignment.
    reports["communicators"] = UsabilityReport(
        mechanism="communicators",
        setup_calls=mirrored.num_communicators,
        hint_keys=0, implementation_specific_hints=0,
        calls_per_exchange=2 * per_thread_msgs, extra_sync_steps=0,
        needs_mirroring_logic=True,
        new_concepts=1)  # "communicator as parallelism" (Lesson 2)

    # Tags with hints: one Dup + the Listing 2 hint bundle.
    reports["tags"] = UsabilityReport(
        mechanism="tags", setup_calls=1, hint_keys=6,
        implementation_specific_hints=4,   # the mpich_* keys of Listing 2
        calls_per_exchange=2 * per_thread_msgs, extra_sync_steps=0,
        needs_mirroring_logic=False,
        new_concepts=1)  # tag-bit layout contract with the library

    # Endpoints: a single creation call; rank-like addressing.
    reports["endpoints"] = UsabilityReport(
        mechanism="endpoints", setup_calls=1, hint_keys=0,
        implementation_specific_hints=0,
        calls_per_exchange=2 * per_thread_msgs, extra_sync_steps=0,
        needs_mirroring_logic=False,
        new_concepts=1)  # the endpoint itself (Lesson 17's risk)

    # Partitioned (face stencils only).
    try:
        plan = PartitionPlan(geom)
        interior = tuple(n // 2 for n in geom.proc_grid)
        ops = plan.total_operations(interior)
        reports["partitioned"] = UsabilityReport(
            mechanism="partitioned",
            setup_calls=ops + 1,           # inits + Startall
            hint_keys=0, implementation_specific_hints=0,
            # pready per face + parrived polling per face
            calls_per_exchange=2 * dim,
            extra_sync_steps=2,            # single{waitall+startall}+barrier
            needs_mirroring_logic=False,
            new_concepts=4)  # init/start/pready/parrived lifecycle
    except Exception:
        pass
    return reports


def render_usability(reports: dict[str, UsabilityReport]) -> str:
    """Render the usability scorecards as one comparison table."""
    headers = ["mechanism", "setup", "hints", "impl-hints", "calls/exch",
               "extra-sync", "mirroring", "concepts"]
    lines = ["  ".join(f"{h:>11}" for h in headers)]
    for name in ("original", "communicators", "tags", "endpoints",
                 "partitioned"):
        r = reports.get(name)
        if r is None:
            continue
        lines.append("  ".join([
            f"{r.mechanism:>11}", f"{r.setup_calls:>11}",
            f"{r.hint_keys:>11}", f"{r.implementation_specific_hints:>11}",
            f"{r.calls_per_exchange:>11}", f"{r.extra_sync_steps:>11}",
            f"{str(r.needs_mirroring_logic):>11}", f"{r.new_concepts:>11}",
        ]))
    return "\n".join(lines)
