"""repro — a reproduction of "Lessons Learned on MPI+Threads Communication"
(Zambre & Chandramowlishwaran, SC 2022).

The package implements, from scratch and on a deterministic discrete-event
simulator, everything the paper's comparison rests on:

- a VCI-enabled, MPICH-flavoured MPI library (:mod:`repro.mpi`) with
  point-to-point, RMA, and collective communication, MPI-4.0 Info hints,
  **user-visible endpoints**, and **partitioned communication**;
- a NIC/fabric hardware model with limited hardware contexts
  (:mod:`repro.netsim`);
- the mechanism-mapping helpers the paper's lessons are about
  (:mod:`repro.mapping`): mirrored communicator maps, Listing-2 tag
  encodings, endpoint addressing, partition plans, and the Lesson-3
  resource formulas;
- application proxies (:mod:`repro.apps`): stencil halo exchange
  (hypre/Smilei/Pencil), a Legion-style event runtime and circuit
  simulation, Vite-style dynamic graph communication, NWChem's
  get-compute-update RMA pattern, and VASP-style multithreaded
  collectives;
- benchmark workloads (:mod:`repro.bench`) and the Table-I scope/usability
  analysis (:mod:`repro.analysis`);
- an observability subsystem (:mod:`repro.obs`): per-VCI/per-context
  metrics with contention histograms, plain-text reports, and Chrome-trace
  export. Pass ``World(metrics=MetricsRegistry(), tracer=Tracer())`` to
  instrument a run, or use ``python -m repro profile``;
- fault injection with reliable transport (:mod:`repro.faults`):
  per-seed-reproducible fault plans (message drop/dup/corrupt/delay, NIC
  context stalls, link flaps) and a sequencing/ACK/retransmission layer
  that keeps every MPI mechanism correct on a lossy fabric. Pass
  ``World(faults=FaultPlan(drop=0.05))``, or use ``python -m repro
  faults``.

Quick start::

    import numpy as np
    from repro import World

    world = World(num_nodes=2, procs_per_node=1)

    def rank0(proc):
        yield from proc.comm_world.Send(np.arange(4.0), dest=1, tag=0)

    def rank1(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])
"""

from .errors import (
    FaultPlanError,
    HintViolationError,
    InvalidHintError,
    MpiError,
    MpiUsageError,
    RmaSemanticsError,
    TagOverflowError,
    TopologyError,
    TransportError,
    TruncationError,
)
from .faults import FaultPlan, TransportParams
from .mpi import ANY_SOURCE, ANY_TAG, Communicator, Info, Request, Status
from .mpi.endpoints import Endpoint, comm_create_endpoints
from .mpi.partitioned import precv_init, psend_init
from .mpi.rma import win_create
from .netsim import ClusterSpec, NetworkConfig, register_topology
from .netsim.traffic import TrafficShape
from .obs import MetricsRegistry, export_chrome_trace
from .runtime import MpiProcess, Node, World
from .scenarios import ScenarioSpec, run_campaign, run_scenario, \
    sample_scenarios
from .sim.trace import TraceCategory, Tracer

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "ClusterSpec", "Communicator", "Endpoint",
    "FaultPlan", "FaultPlanError", "HintViolationError", "Info",
    "InvalidHintError", "MetricsRegistry", "MpiError", "MpiProcess",
    "MpiUsageError", "NetworkConfig", "Node", "Request",
    "RmaSemanticsError", "ScenarioSpec", "Status", "TagOverflowError",
    "TopologyError", "TraceCategory", "Tracer", "TrafficShape",
    "TransportError", "TransportParams", "TruncationError",
    "World", "__version__", "comm_create_endpoints",
    "export_chrome_trace", "precv_init", "psend_init",
    "register_topology", "run_campaign", "run_scenario",
    "sample_scenarios", "win_create",
]
