"""Reliable transport: MPI semantics on top of a lossy fabric.

One :class:`ReliableTransport` sits inside each process's
:class:`~repro.mpi.library.MpiLibrary` when the world runs with fault
injection enabled. It restores the two transport guarantees every MPI
protocol layer in this codebase assumes (per-channel FIFO and exactly-once
delivery) no matter what the fault plan does to individual wire messages:

- **Sequencing** — every inter-node data message is stamped with a
  per-flow sequence number. A *flow* is ``(src_rank, dst_rank, src_vci,
  dst_vci)``: exactly the channel granularity whose ordering MPI's
  matching relies on, and no finer, so cross-channel reordering (the
  parallelism the paper's mechanisms exploit) stays unconstrained.
- **Checksums** — payloads carry a crc32; corrupted deliveries are
  discarded and recovered by retransmission.
- **Duplicate suppression & reordering** — the receiver delivers each
  flow in sequence order exactly once, buffering out-of-order arrivals
  (retransmissions overtaken by newer traffic) until the gap fills.
- **ACK / timeout retransmission** — cumulative per-flow ACKs ride back
  through the normal NIC issue path (and are themselves subject to the
  fault plan); unacknowledged packets are retransmitted with exponential
  backoff until :class:`~repro.errors.TransportError` gives up at
  ``max_retries``.

Retransmissions re-enter the network through the original VCI's hardware
context, so recovery traffic is visible as real contention — a lossy
channel slows down exactly the threads mapped onto it, which is the
per-VCI isolation story of the paper told from the robustness side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import TransportError
from ..netsim.message import MessageKind, WireMessage
from ..sim.trace import TraceCategory
from .injector import payload_checksum

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.library import MpiLibrary

__all__ = ["TransportParams", "ReliableTransport"]

#: Flow key type: (src world rank, dst world rank, src VCI, dst VCI).
Flow = tuple[int, int, int, int]


@dataclass(frozen=True)
class TransportParams:
    """Retransmission tuning knobs (documented in docs/faults.md)."""

    #: Base retransmission timeout, armed from the packet's NIC departure.
    #: Must exceed one round trip (2 x fabric latency + ACK turnaround).
    rto: float = 12e-6
    #: Multiplier applied to the RTO per retry (exponential backoff).
    backoff: float = 2.0
    #: Retransmissions before the transport raises TransportError.
    max_retries: int = 16


@dataclass
class _InFlight:
    """Sender-side state of one unacknowledged packet."""

    msg: WireMessage
    retries: int = 0
    acked: bool = False
    recovery_span: Optional[int] = None


@dataclass
class _RecvFlow:
    """Receiver-side state of one flow."""

    next_seq: int = 0
    #: Out-of-order arrivals parked until the sequence gap fills.
    buffer: dict[int, WireMessage] = field(default_factory=dict)


class ReliableTransport:
    """Per-process reliability layer between the MPI library and fabric."""

    def __init__(self, lib: "MpiLibrary",
                 params: Optional[TransportParams] = None):
        self.lib = lib
        self.params = params or TransportParams()
        self._send_seq: dict[Flow, int] = {}
        self._inflight: dict[Flow, dict[int, _InFlight]] = {}
        self._recv: dict[Flow, _RecvFlow] = {}
        # -- counters (always on; mirrored into metrics when enabled) ------
        self.data_sent = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.dup_suppressed = 0
        self.corrupt_dropped = 0
        self.ooo_buffered = 0
        metrics = lib.metrics
        if metrics is not None and metrics.enabled:
            labels = {"rank": lib.rank}
            self.m_data = metrics.counter("transport.data", **labels)
            self.m_retransmit = metrics.counter("transport.retransmit",
                                                **labels)
            self.m_ack = metrics.counter("transport.ack", **labels)
            self.m_dup = metrics.counter("transport.dup_suppressed",
                                         **labels)
            self.m_corrupt = metrics.counter("transport.corrupt_drop",
                                             **labels)
            self.m_ooo = metrics.counter("transport.ooo_buffered", **labels)
        else:
            self.m_data = self.m_retransmit = self.m_ack = None
            self.m_dup = self.m_corrupt = self.m_ooo = None

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, msg: WireMessage, depart: float) -> None:
        """Stamp, track and transmit one inter-node message.

        Called from the library's transmit path with the message's NIC
        departure time; ACKs pass through untracked (they are idempotent
        and recovered by data-side retransmission instead).
        """
        fabric = self.lib.world.fabric
        if msg.kind is MessageKind.REL_ACK:
            fabric.transmit(msg, depart)
            return
        flow: Flow = (msg.src_rank, msg.dst_rank, msg.src_vci, msg.dst_vci)
        seq = self._send_seq.get(flow, 0)
        self._send_seq[flow] = seq + 1
        msg.rel_flow = flow
        msg.rel_seq = seq
        msg.checksum = payload_checksum(msg.payload)
        rec = _InFlight(msg=msg)
        self._inflight.setdefault(flow, {})[seq] = rec
        self.data_sent += 1
        if self.m_data is not None:
            self.m_data.inc()
        fabric.transmit(msg, depart)
        self._arm_timer(rec, depart)

    def _arm_timer(self, rec: _InFlight, depart: float) -> None:
        sim = self.lib.sim
        delay = max(0.0, depart - sim.now) \
            + self.params.rto * (self.params.backoff ** rec.retries)
        sim.timeout(delay).add_callback(lambda e: self._on_timeout(rec))

    def _on_timeout(self, rec: _InFlight) -> None:
        if rec.acked:
            return
        msg = rec.msg
        if rec.retries >= self.params.max_retries:
            raise self._exhaustion_error(rec)
        rec.retries += 1
        self.retransmits += 1
        if self.m_retransmit is not None:
            self.m_retransmit.inc()
        lib = self.lib
        tracer = lib.tracer
        if tracer.enabled:
            if rec.recovery_span is None:
                rec.recovery_span = tracer.span_id()
                tracer.emit(TraceCategory.RECOVERY_BEGIN, {
                    "rank": lib.rank, "flow": msg.rel_flow,
                    "rel_seq": msg.rel_seq, "span": rec.recovery_span,
                })
            tracer.emit(TraceCategory.RETRANSMIT, {
                "rank": lib.rank, "flow": msg.rel_flow,
                "rel_seq": msg.rel_seq, "retry": rec.retries,
                "span": rec.recovery_span,
            })
        # Re-enter the network through the original VCI's hardware
        # context: recovery traffic contends like any other message.
        vci = lib.vci_pool.get(msg.src_vci)
        depart = vci.hw_context.issue(msg.wire_bytes)
        lib.world.fabric.transmit(msg, depart)
        self._arm_timer(rec, depart)

    def _exhaustion_error(self, rec: _InFlight) -> TransportError:
        """Build the max-retries give-up error with actionable context.

        Names the flow (source rank, destination rank, VCI pair), the
        whole unacked sequence range of that flow at give-up time, and
        the backoff schedule the sender waited out — so a shrunk campaign
        repro points at the exact channel that died, not just one packet.
        """
        msg = rec.msg
        flow = msg.rel_flow
        src, dst, src_vci, dst_vci = flow
        pending = sorted(self._inflight.get(flow, ()))
        if pending:
            seq_range = (f"seq {pending[0]}..{pending[-1]} "
                         f"({len(pending)} unacked)")
        else:  # pragma: no cover - give-up implies at least rec pending
            seq_range = f"seq {msg.rel_seq} (1 unacked)"
        params = self.params
        schedule = [params.rto * params.backoff ** i
                    for i in range(rec.retries + 1)]
        waited = sum(schedule)
        sched_text = ", ".join(f"{t * 1e6:.1f}us" for t in schedule[:8])
        if len(schedule) > 8:
            sched_text += f", ... ({len(schedule)} timeouts)"
        return TransportError(
            f"flow rank {src}->{dst} (vci {src_vci}->{dst_vci}) lost "
            f"seq {msg.rel_seq} ({msg.kind.value}) after {rec.retries} "
            f"retransmissions; {seq_range}; backoff schedule waited: "
            f"[{sched_text}] = {waited * 1e6:.1f}us total — the fault "
            f"plan exceeds the transport's recovery budget "
            f"(max_retries={params.max_retries}, rto={params.rto:g}s, "
            f"backoff={params.backoff:g}x)",
            flow=flow, seq=msg.rel_seq, retries=rec.retries,
            pending_seqs=pending, backoff_schedule=schedule)

    def _on_ack(self, ack: WireMessage) -> None:
        flow: Flow = ack.meta["flow"]
        upto: int = ack.meta["ack"]
        self.acks_received += 1
        if self.m_ack is not None:
            self.m_ack.inc()
        pending = self._inflight.get(flow)
        if not pending:
            return
        tracer = self.lib.tracer
        for seq in [s for s in pending if s <= upto]:
            rec = pending.pop(seq)
            rec.acked = True
            if tracer.enabled and rec.recovery_span is not None:
                tracer.emit(TraceCategory.RECOVERY_END, {
                    "rank": self.lib.rank, "flow": flow, "rel_seq": seq,
                    "span": rec.recovery_span,
                })

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def intercept(self, msg: WireMessage) -> bool:
        """Filter one arriving message; True when the transport consumed
        it. In-order data is handed to the library's dispatcher exactly
        once; everything else (ACKs, duplicates, corrupt or out-of-order
        arrivals) is absorbed here."""
        if msg.kind is MessageKind.REL_ACK:
            self._on_ack(msg)
            return True
        if msg.rel_seq is None:
            return False  # intra-node / lossless path: not transport-framed
        lib = self.lib
        tracer = lib.tracer
        if payload_checksum(msg.payload) != msg.checksum:
            # Corrupted in flight: discard silently; no ACK means the
            # sender's timer recovers it with a clean copy.
            self.corrupt_dropped += 1
            if self.m_corrupt is not None:
                self.m_corrupt.inc()
            if tracer.enabled:
                tracer.emit(TraceCategory.CORRUPT_DROP, {
                    "rank": lib.rank, "flow": msg.rel_flow,
                    "rel_seq": msg.rel_seq, "kind": msg.kind.value,
                })
            return True
        flow = msg.rel_flow
        state = self._recv.get(flow)
        if state is None:
            state = self._recv[flow] = _RecvFlow()
        seq = msg.rel_seq
        if seq < state.next_seq or seq in state.buffer:
            # Duplicate (injected, or a retransmission racing its ACK):
            # suppress, but re-ACK so the sender clears its state.
            self.dup_suppressed += 1
            if self.m_dup is not None:
                self.m_dup.inc()
            if tracer.enabled:
                tracer.emit(TraceCategory.DUP_SUPPRESSED, {
                    "rank": lib.rank, "flow": flow, "rel_seq": seq,
                })
            self._send_ack(flow, msg)
            return True
        if seq > state.next_seq:
            # A gap: an earlier packet of this flow is missing (dropped or
            # overtaken by its own retransmission). Park this one — FIFO
            # delivery resumes when the gap fills.
            state.buffer[seq] = msg
            self.ooo_buffered += 1
            if self.m_ooo is not None:
                self.m_ooo.inc()
            self._send_ack(flow, msg)
            return True
        # In order: deliver, then drain whatever the gap was holding back.
        state.next_seq = seq + 1
        lib._dispatch(msg)
        while state.next_seq in state.buffer:
            queued = state.buffer.pop(state.next_seq)
            state.next_seq += 1
            lib._dispatch(queued)
        self._send_ack(flow, msg)
        return True

    def _send_ack(self, flow: Flow, data_msg: WireMessage) -> None:
        """Cumulative ACK for ``flow`` back to its sender, issued through
        the VCI the data arrived on (ACK traffic is real traffic)."""
        lib = self.lib
        state = self._recv.get(flow)
        ack = WireMessage(
            kind=MessageKind.REL_ACK,
            src_node=lib.node.node_id, dst_node=data_msg.src_node,
            src_rank=lib.rank, dst_rank=data_msg.src_rank,
            context_id=-1, tag=-1, size=0, payload=None,
            src_vci=data_msg.dst_vci, dst_vci=data_msg.src_vci,
            meta={"flow": flow,
                  "ack": (state.next_seq - 1) if state is not None else -1},
        )
        self.acks_sent += 1
        lib.issue_async(lib.vci_pool.get(data_msg.dst_vci), ack)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def unacked(self) -> int:
        """Packets still awaiting acknowledgement."""
        return sum(len(d) for d in self._inflight.values())

    def pending_description(self) -> list[str]:
        """Human-readable unacked packets (deadlock diagnostics)."""
        lines = []
        for flow in sorted(self._inflight):
            pending = self._inflight[flow]
            if pending:
                seqs = sorted(pending)
                lines.append(
                    f"flow {flow}: {len(seqs)} unacked "
                    f"(seq {seqs[0]}..{seqs[-1]}, "
                    f"retries={max(p.retries for p in pending.values())})")
        return lines

    def summary(self) -> dict[str, int]:
        return {
            "data_sent": self.data_sent, "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "dup_suppressed": self.dup_suppressed,
            "corrupt_dropped": self.corrupt_dropped,
            "ooo_buffered": self.ooo_buffered,
        }
