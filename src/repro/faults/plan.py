"""Declarative fault-injection plans.

A :class:`FaultPlan` is an immutable, serializable description of *what can
go wrong* on the simulated fabric: per-message loss, duplication, payload
corruption and delay spikes, NIC hardware-context stall windows, and link
degradation/flap windows. A plan says nothing about *which* messages are
hit — that decision is made by :class:`repro.faults.injector.FaultInjector`
from the plan's rates and the experiment seed, so the same ``(plan, seed)``
pair always produces the same fault schedule.

Plans can be built programmatically, from a dict (``FaultPlan.from_dict``),
from a JSON file, or from the compact CLI spec accepted by
:func:`parse_plan`::

    drop=0.05,dup=0.02,corrupt=0.01,delay=0.1,delay_max=20us
    drop=0.1,stall=0/0/50us/300us,down=1/100us/140us
    plan.json

Times accept ``ns``/``us``/``ms``/``s`` suffixes (bare numbers are
seconds).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional, Union

from ..errors import FaultConfigError, FaultPlanError

__all__ = ["CtxStall", "LinkWindow", "FaultPlan", "parse_plan",
           "parse_time"]

#: Wildcard node/context selector in specs ("*" on the CLI).
ANY = -1

_TIME_SUFFIXES = (("ns", 1e-9), ("us", 1e-6), ("ms", 1e-3), ("s", 1.0))


def parse_time(text: Union[str, float, int]) -> float:
    """Parse ``"20us"``-style durations into seconds (bare = seconds)."""
    if isinstance(text, (int, float)):
        return float(text)
    text = text.strip()
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix):
            try:
                return float(text[: -len(suffix)]) * scale
            except ValueError:
                break
    try:
        return float(text)
    except ValueError:
        raise FaultPlanError(f"cannot parse time {text!r}") from None


@dataclass(frozen=True)
class CtxStall:
    """A NIC hardware context that stops injecting for a window.

    Models a wedged work queue / unresponsive doorbell: messages issued on
    the context during ``[start, start + duration)`` either fail over to
    another context (reliable worlds) or wait out the stall.
    """

    node: int            # node id, or ANY for every node
    ctx: int             # hardware-context index, or ANY for every context
    start: float         # simulated seconds
    duration: float

    def __post_init__(self):
        if self.node < ANY or self.ctx < ANY:
            raise FaultConfigError(
                f"stall selectors must be node/ctx ids or ANY (-1), got "
                f"node={self.node}, ctx={self.ctx}")
        if not self.start >= 0.0:
            raise FaultConfigError(
                f"stall window starts before t=0 (start={self.start!r})")
        if not self.duration >= 0.0:
            raise FaultConfigError(
                f"stall duration must be non-negative, got "
                f"{self.duration!r} (inverted window?)")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, node: int, ctx: int, now: float) -> bool:
        return ((self.node == ANY or self.node == node)
                and (self.ctx == ANY or self.ctx == ctx)
                and self.start <= now < self.end)


@dataclass(frozen=True)
class LinkWindow:
    """A per-node link misbehaviour window.

    ``kind="down"`` drops every message departing the node (or arriving at
    it) during the window — a link flap. ``kind="degraded"`` multiplies
    the message's wire time by ``factor`` — congestion or a renegotiated
    slower rate.
    """

    node: int            # node id, or ANY for every node
    start: float
    end: float
    kind: str = "down"   # "down" | "degraded"
    factor: float = 4.0  # wire-time multiplier for "degraded"

    def __post_init__(self):
        if self.kind not in ("down", "degraded"):
            raise FaultPlanError(f"unknown link window kind {self.kind!r}")
        if self.node < ANY:
            raise FaultConfigError(
                f"link window node must be a node id or ANY (-1), got "
                f"{self.node}")
        if not self.start >= 0.0:
            raise FaultConfigError(
                f"link window starts before t=0 (start={self.start!r})")
        if not self.end >= self.start:
            raise FaultConfigError(
                f"link window ends before it starts "
                f"(start={self.start!r}, end={self.end!r})")
        if not self.factor >= 1.0:
            raise FaultConfigError(
                f"degradation factor must be >= 1 (a wire-time multiplier), "
                f"got {self.factor!r}")

    def covers(self, node: int, now: float) -> bool:
        return ((self.node == ANY or self.node == node)
                and self.start <= now < self.end)


@dataclass(frozen=True)
class FaultPlan:
    """One experiment's fault schedule, reproducible per seed.

    Rates are independent per-message probabilities evaluated at fabric
    entry; a message can be both delayed and duplicated, and the duplicate
    is subject to the same hazards as the original. Stall and link windows
    are deterministic wall-clock (simulated) intervals.
    """

    #: P(a wire message is silently dropped).
    drop: float = 0.0
    #: P(a wire message is delivered twice).
    dup: float = 0.0
    #: P(the delivered payload is corrupted in flight).
    corrupt: float = 0.0
    #: P(a delivery gets an extra delay spike).
    delay: float = 0.0
    #: Maximum extra delay of one spike (uniform in (0, delay_max]).
    delay_max: float = 20e-6
    #: Extra delay of a duplicate copy behind the original.
    dup_delay: float = 2e-6
    #: NIC hardware-context stall windows.
    stalls: tuple[CtxStall, ...] = ()
    #: Link flap / degradation windows.
    links: tuple[LinkWindow, ...] = ()

    def __post_init__(self):
        for name in ("drop", "dup", "corrupt", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultConfigError(
                    f"{name} rate must be in [0, 1], got {p!r}")
        if not (self.delay_max >= 0 and self.dup_delay >= 0):
            raise FaultConfigError(
                f"delays must be non-negative, got "
                f"delay_max={self.delay_max!r}, dup_delay={self.dup_delay!r}")
        for stall in self.stalls:
            if not isinstance(stall, CtxStall):
                raise FaultConfigError(
                    f"stalls must be CtxStall instances, got {stall!r}")
        for window in self.links:
            if not isinstance(window, LinkWindow):
                raise FaultConfigError(
                    f"links must be LinkWindow instances, got {window!r}")

    @property
    def any_message_faults(self) -> bool:
        return (self.drop > 0 or self.dup > 0 or self.corrupt > 0
                or self.delay > 0 or bool(self.links))

    @property
    def lossless(self) -> bool:
        return not self.any_message_faults and not self.stalls

    def describe(self) -> str:
        """One-line summary of the plan's fault rates and schedules."""
        parts = [f"drop={self.drop:g}", f"dup={self.dup:g}",
                 f"corrupt={self.corrupt:g}", f"delay={self.delay:g}"]
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        if self.links:
            parts.append(f"links={len(self.links)}")
        return " ".join(parts)

    # -- construction ------------------------------------------------------
    def with_(self, **kwargs) -> "FaultPlan":
        return replace(self, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultPlan":
        """Rebuild a FaultPlan from its ``to_dict()`` form."""
        data = dict(data)
        stalls = tuple(
            s if isinstance(s, CtxStall) else CtxStall(
                node=int(s.get("node", ANY)), ctx=int(s.get("ctx", ANY)),
                start=parse_time(s["start"]),
                duration=parse_time(s["duration"]))
            for s in data.pop("stalls", ()))
        links = tuple(
            w if isinstance(w, LinkWindow) else LinkWindow(
                node=int(w.get("node", ANY)), start=parse_time(w["start"]),
                end=parse_time(w["end"]), kind=w.get("kind", "down"),
                factor=float(w.get("factor", 4.0)))
            for w in data.pop("links", ()))
        for key in ("delay_max", "dup_delay"):
            if key in data:
                data[key] = parse_time(data[key])
        unknown = set(data) - {"drop", "dup", "corrupt", "delay",
                               "delay_max", "dup_delay"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan keys: {sorted(unknown)}")
        return FaultPlan(stalls=stalls, links=links,
                         **{k: float(v) for k, v in data.items()})


def _parse_selector(text: str) -> int:
    return ANY if text in ("*", "") else int(text)


def parse_plan(spec: str) -> FaultPlan:
    """Parse a fault plan from a JSON file path or a compact spec string.

    Compact spec: comma-separated ``key=value`` items. Rate keys: ``drop``,
    ``dup``, ``corrupt``, ``delay``; time keys: ``delay_max``,
    ``dup_delay``. Repeatable window items::

        stall=<node>/<ctx>/<start>/<duration>      (node/ctx may be "*")
        down=<node>/<start>/<end>
        degraded=<node>/<start>/<end>[/<factor>]
    """
    spec = spec.strip()
    if spec.endswith(".json") or os.path.exists(spec):
        try:
            with open(spec) as fh:
                return FaultPlan.from_dict(json.load(fh))
        except OSError as exc:
            raise FaultPlanError(f"cannot read plan file {spec!r}: {exc}")
    rates: dict[str, float] = {}
    stalls: list[CtxStall] = []
    links: list[LinkWindow] = []
    for item in filter(None, (part.strip() for part in spec.split(","))):
        if "=" not in item:
            raise FaultPlanError(f"malformed plan item {item!r} "
                                 "(expected key=value)")
        key, _, value = item.partition("=")
        key = key.strip()
        if key in ("drop", "dup", "corrupt", "delay"):
            rates[key] = float(value)
        elif key in ("delay_max", "dup_delay"):
            rates[key] = parse_time(value)
        elif key == "stall":
            fields = value.split("/")
            if len(fields) != 4:
                raise FaultPlanError(
                    f"stall spec {value!r} needs node/ctx/start/duration")
            stalls.append(CtxStall(
                node=_parse_selector(fields[0]),
                ctx=_parse_selector(fields[1]),
                start=parse_time(fields[2]),
                duration=parse_time(fields[3])))
        elif key in ("down", "degraded"):
            fields = value.split("/")
            if not 3 <= len(fields) <= 4:
                raise FaultPlanError(
                    f"{key} spec {value!r} needs node/start/end[/factor]")
            links.append(LinkWindow(
                node=_parse_selector(fields[0]),
                start=parse_time(fields[1]), end=parse_time(fields[2]),
                kind=key,
                factor=float(fields[3]) if len(fields) == 4 else 4.0))
        else:
            raise FaultPlanError(f"unknown plan key {key!r}")
    return FaultPlan(stalls=tuple(stalls), links=tuple(links), **rates)
