"""Deterministic fault injection over the simulated fabric and NIC.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete per-message decisions:
the fabric asks it what to do with each departing wire message
(:meth:`wire_actions`), and NIC hardware contexts ask whether they are
inside a stall window (:meth:`stall_until`).

Decisions are drawn from a private splitmix64 stream seeded by the
experiment seed. Because the discrete-event simulator is deterministic,
the injector sees the same sequence of messages in the same order on every
run — so the same ``(plan, seed)`` pair reproduces the exact same drops,
duplicates, corruptions and delays, message for message. Fault decisions
never consult Python's randomized ``hash`` or wall-clock state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..sim.trace import TraceCategory, Tracer
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.message import WireMessage
    from ..obs.metrics import MetricsRegistry

__all__ = ["Delivery", "FaultInjector", "payload_checksum"]


def payload_checksum(payload) -> int:
    """Deterministic checksum of a wire payload (crc32).

    Hash-seed independent, so the same payload checksums identically in
    every interpreter run (``hash()`` would not).
    """
    import zlib
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    return zlib.crc32(repr(payload).encode())


@dataclass
class Delivery:
    """One physical delivery the fabric should schedule."""

    msg: "WireMessage"
    extra_delay: float = 0.0
    duplicate: bool = False


class FaultInjector:
    """Seeded decision engine for one world's fault plan."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = int(seed)
        # splitmix64 state; offset so seed 0 is not the all-zeros state.
        self._state = (self.seed * 0x9E3779B97F4A7C15 + 0x1F123BB5) \
            & 0xFFFFFFFFFFFFFFFF
        self.metrics: Optional["MetricsRegistry"] = None
        self.tracer: Tracer = Tracer(enabled=False)
        # -- fault counters (always on; metrics mirror them when enabled) --
        self.drops = 0
        self.dups = 0
        self.corruptions = 0
        self.delays = 0
        self.link_drops = 0
        self.degraded = 0
        self.failovers = 0
        self.messages_seen = 0

    def bind(self, metrics: Optional["MetricsRegistry"] = None,
             tracer: Optional[Tracer] = None) -> "FaultInjector":
        """Attach observability instruments (the World calls this)."""
        if metrics is not None:
            self.metrics = metrics
        if tracer is not None:
            self.tracer = tracer
        return self

    # ------------------------------------------------------------------
    # deterministic draws
    # ------------------------------------------------------------------
    def _draw(self) -> float:
        """Next uniform draw in [0, 1) from the splitmix64 stream."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z ^= z >> 31
        return (z >> 11) / float(1 << 53)

    def _hit(self, rate: float) -> bool:
        return rate > 0.0 and self._draw() < rate

    # ------------------------------------------------------------------
    # NIC-side hooks
    # ------------------------------------------------------------------
    def stall_until(self, node: int, ctx: int, now: float) -> float:
        """End of the stall window covering ``(node, ctx)`` at ``now``
        (0.0 when the context is healthy)."""
        end = 0.0
        for stall in self.plan.stalls:
            if stall.covers(node, ctx, now):
                end = max(end, stall.end)
        return end

    def note_failover(self, node: int, from_ctx: int, to_ctx: int) -> None:
        """Record one message failing over from a stalled context."""
        self.failovers += 1
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.inc("nic.ctx_failover", node=node, ctx=from_ctx)
        if self.tracer.enabled:
            self.tracer.emit(TraceCategory.CTX_FAILOVER, {
                "node": node, "ctx": from_ctx, "to_ctx": to_ctx})

    # ------------------------------------------------------------------
    # fabric-side hook
    # ------------------------------------------------------------------
    def wire_actions(self, msg: "WireMessage", depart: float,
                     wire_time: float) -> list[Delivery]:
        """Decide the fate of one wire message entering the fabric.

        Returns the physical deliveries to schedule: none (dropped), one,
        or two (duplicated), each possibly delayed and/or corrupted. The
        sender's copy of ``msg`` is never mutated — corruption produces a
        modified delivery copy, so retransmissions resend clean data.
        """
        plan = self.plan
        self.messages_seen += 1
        tracer = self.tracer

        # Link flap: departures inside a down window never arrive.
        for window in plan.links:
            if window.kind == "down" and (
                    window.covers(msg.src_node, depart)
                    or window.covers(msg.dst_node, depart)):
                self.link_drops += 1
                self._count("fault.link_drop", msg)
                if tracer.enabled:
                    tracer.emit(TraceCategory.LINK_DROP, self._payload(msg))
                return []

        if self._hit(plan.drop):
            self.drops += 1
            self._count("fault.drop", msg)
            if tracer.enabled:
                tracer.emit(TraceCategory.FAULT_DROP, self._payload(msg))
            return []

        deliveries = [Delivery(msg)]
        if self._hit(plan.dup):
            self.dups += 1
            self._count("fault.dup", msg)
            if tracer.enabled:
                tracer.emit(TraceCategory.FAULT_DUP, self._payload(msg))
            deliveries.append(Delivery(msg, extra_delay=plan.dup_delay,
                                       duplicate=True))

        # Link degradation: wire time stretched by the largest covering
        # factor (congestion, renegotiated rate).
        degrade = 0.0
        for window in plan.links:
            if window.kind == "degraded" and (
                    window.covers(msg.src_node, depart)
                    or window.covers(msg.dst_node, depart)):
                degrade = max(degrade, wire_time * (window.factor - 1.0))
        if degrade > 0.0:
            self.degraded += 1
            for d in deliveries:
                d.extra_delay += degrade

        for d in deliveries:
            if self._hit(plan.corrupt):
                self.corruptions += 1
                self._count("fault.corrupt", msg)
                if tracer.enabled:
                    tracer.emit(TraceCategory.FAULT_CORRUPT,
                                self._payload(msg))
                d.msg = self._corrupted_copy(d.msg)
            if self._hit(plan.delay):
                spike = plan.delay_max * self._draw()
                self.delays += 1
                self._count("fault.delay", msg)
                if tracer.enabled:
                    tracer.emit(TraceCategory.FAULT_DELAY,
                                dict(self._payload(msg), spike=spike))
                d.extra_delay += spike
        return deliveries

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _corrupted_copy(self, msg: "WireMessage") -> "WireMessage":
        """A delivery copy of ``msg`` with a flipped payload byte (or, for
        payload-free control messages, a mangled checksum — header
        corruption)."""
        payload = msg.payload
        if isinstance(payload, np.ndarray) and payload.nbytes > 0:
            bad = np.ascontiguousarray(payload).copy()
            flat = bad.view(np.uint8).reshape(-1)
            flat[int(self._draw() * flat.size) % flat.size] ^= 0xFF
            return dc_replace(msg, payload=bad)
        return dc_replace(msg, checksum=msg.checksum ^ 0x5A5A5A5A)

    def _count(self, name: str, msg: "WireMessage") -> None:
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.inc(name, node=msg.src_node)

    def _payload(self, msg: "WireMessage") -> dict:
        return {"src_rank": msg.src_rank, "dst_rank": msg.dst_rank,
                "kind": msg.kind.value, "tag": msg.tag, "seq": msg.seq,
                "rel_seq": msg.rel_seq}

    def summary(self) -> dict[str, int]:
        return {
            "messages_seen": self.messages_seen, "drops": self.drops,
            "dups": self.dups, "corruptions": self.corruptions,
            "delays": self.delays, "link_drops": self.link_drops,
            "degraded": self.degraded, "failovers": self.failovers,
        }
