"""Fault injection and reliable transport for the simulated fabric.

This package makes the fabric *lossy on purpose* and the MPI layer survive
it. The pieces:

- :mod:`~repro.faults.plan` — declarative, per-seed-reproducible
  :class:`FaultPlan` schedules (drop/dup/corrupt/delay rates, NIC
  hardware-context stalls, link flap/degradation windows).
- :mod:`~repro.faults.injector` — the :class:`FaultInjector` that turns a
  plan plus the experiment seed into concrete per-message decisions.
- :mod:`~repro.faults.transport` — :class:`ReliableTransport`: sequence
  numbers, checksums, duplicate suppression, and ACK/timeout
  retransmission restoring per-channel FIFO, exactly-once delivery on any
  plan.
- :mod:`~repro.faults.report` — the post-run reliability report.

Enable it through the runtime: ``World(faults=FaultPlan(drop=0.05))``, or
``python -m repro faults <experiment> --plan drop=0.05 --seed 1``. See
``docs/faults.md`` for the fault model and determinism guarantees.
"""

from .injector import Delivery, FaultInjector, payload_checksum
from .plan import ANY, CtxStall, FaultPlan, LinkWindow, parse_plan, parse_time
from .report import render_reliability_report
from .transport import ReliableTransport, TransportParams

__all__ = [
    "ANY",
    "CtxStall",
    "Delivery",
    "FaultInjector",
    "FaultPlan",
    "LinkWindow",
    "ReliableTransport",
    "TransportParams",
    "parse_plan",
    "parse_time",
    "payload_checksum",
    "render_reliability_report",
]
