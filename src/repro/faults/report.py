"""Plain-text reliability report for fault-injected runs.

Companion to :mod:`repro.obs.report`: where that module answers "where did
the time go", this one answers "what went wrong on the wire and how was it
recovered". Rendered by the ``faults`` CLI subcommand next to the per-VCI
table.
"""

from __future__ import annotations

from typing import Any

__all__ = ["render_reliability_report"]


def _table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [f"== {title} ==", fmt.format(*headers),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines)


def render_reliability_report(world: Any) -> str:
    """Fault + recovery summary of a finished fault-injected World.

    Sections: the plan in force, the injector's fault tally, and one row
    per rank of reliable-transport activity. Works on any World; a world
    without fault injection renders an explanatory stub.
    """
    injector = getattr(world, "injector", None)
    if injector is None:
        return ("== reliability ==\n(fault injection disabled — pass "
                "faults=FaultPlan(...) to World or --plan to the CLI)")
    parts = [f"== fault plan ==\n{injector.plan.describe()} "
             f"(seed={injector.seed})"]

    s = injector.summary()
    parts.append(_table(
        "injected faults",
        ["messages", "drops", "dups", "corruptions", "delays",
         "link-drops", "degraded", "ctx-failovers"],
        [[str(s["messages_seen"]), str(s["drops"]), str(s["dups"]),
          str(s["corruptions"]), str(s["delays"]), str(s["link_drops"]),
          str(s["degraded"]), str(s["failovers"])]]))

    rows: list[list[str]] = []
    totals = {"data_sent": 0, "retransmits": 0, "dup_suppressed": 0,
              "corrupt_dropped": 0, "ooo_buffered": 0, "acks_sent": 0}
    for proc in world.procs:
        transport = proc.lib.transport
        if transport is None:
            continue
        t = transport.summary()
        for key in totals:
            totals[key] += t[key]
        rows.append([
            str(proc.rank), str(t["data_sent"]), str(t["retransmits"]),
            str(t["dup_suppressed"]), str(t["corrupt_dropped"]),
            str(t["ooo_buffered"]), str(t["acks_sent"]),
            str(transport.unacked),
        ])
    if rows:
        rows.append([
            "all", str(totals["data_sent"]), str(totals["retransmits"]),
            str(totals["dup_suppressed"]), str(totals["corrupt_dropped"]),
            str(totals["ooo_buffered"]), str(totals["acks_sent"]),
            str(sum(p.lib.transport.unacked for p in world.procs
                    if p.lib.transport is not None)),
        ])
        parts.append(_table(
            "reliable transport",
            ["rank", "data", "retransmits", "dup-suppr", "corrupt-drop",
             "ooo-buf", "acks", "unacked"],
            rows))
    return "\n\n".join(parts)
