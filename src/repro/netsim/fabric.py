"""The interconnect: delivers wire messages between nodes.

The fabric implements a LogGP-flavoured timing model: a message that
departs its NIC context at time ``d`` arrives at the destination node at
``d + L + wire_bytes / bandwidth`` (plus ingress queueing if the
destination node's link is saturated). Delivery invokes the handler the
destination node registered — in this codebase, the MPI library's
:meth:`~repro.mpi.library.MpiLibrary.deliver`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..sim.core import Event, Simulator
from ..sim.resources import FIFOServer
from ..sim.trace import TraceCategory, Tracer
from .config import FabricParams
from .message import WireMessage

__all__ = ["Fabric"]

DeliveryHandler = Callable[[WireMessage], None]

#: One instant per per-link hop of a routed message (see
#: :class:`repro.netsim.topology.routed.RoutedFabric`). Defined here so
#: the category exists whether or not the topology subsystem is imported.
LINK_HOP = TraceCategory.custom("topo.link.hop", "fabric")


class Fabric:
    """Connects nodes; schedules message arrivals.

    With metrics enabled the fabric records per-node egress/ingress
    queueing-delay histograms — the saturation signal behind the Fig 1(a)
    message-rate plateau — and the tracer (if enabled) gets one
    ``fabric.deliver`` instant per arrival.
    """

    def __init__(self, sim: Simulator, params: FabricParams,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.params = params
        self.metrics = metrics
        self.tracer = tracer
        #: Optional :class:`repro.faults.FaultInjector` making the fabric
        #: lossy (the World attaches it when built with ``faults=``).
        self.injector = None
        self._handlers: dict[int, DeliveryHandler] = {}
        self._ingress: dict[int, FIFOServer] = {}
        self._egress: dict[int, FIFOServer] = {}
        self._h_egress: dict[int, object] = {}
        self._h_ingress: dict[int, object] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0

    def register_node(self, node_id: int, handler: DeliveryHandler) -> None:
        """Attach a node's message handler to the fabric."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self._ingress[node_id] = FIFOServer(self.sim, name=f"node{node_id}.ingress")
        self._egress[node_id] = FIFOServer(self.sim, name=f"node{node_id}.egress")
        if self.metrics is not None and self.metrics.enabled:
            self._h_egress[node_id] = self.metrics.histogram(
                "fabric.egress.queue_delay", node=node_id)
            self._h_ingress[node_id] = self.metrics.histogram(
                "fabric.ingress.queue_delay", node=node_id)

    @staticmethod
    def _serialize(server: FIFOServer, head_time: float,
                   service: float) -> tuple[float, float]:
        """Occupy ``server`` starting no earlier than ``head_time``.

        FIFOServer's own clock is ``sim.now``; messages here carry future
        departure times, so the busy-interval bookkeeping is done by hand.
        Returns ``(completion_time, queue_delay)``.
        """
        busy_until = max(server.free_at, head_time)
        server._free_at = busy_until + service
        server.stats.requests += 1
        server.stats.busy_time += service
        server.stats.total_queue_delay += busy_until - head_time
        return busy_until + service, busy_until - head_time

    def transmit(self, msg: WireMessage, depart_time: float) -> None:
        """Schedule delivery of ``msg`` that departs its NIC hardware
        context at ``depart_time`` (absolute simulated time, >= now)."""
        if msg.dst_node not in self._handlers:
            raise KeyError(f"no node {msg.dst_node} on this fabric "
                           f"(message {msg!r})")
        now = self.sim.now
        depart_time = max(depart_time, now)
        wire_time = msg.wire_bytes / self.params.bandwidth
        if self.params.model_egress and msg.src_node in self._egress:
            # All hardware contexts of a node feed one link: aggregate
            # message-rate and bandwidth ceiling at the source.
            service = max(self.params.node_msg_gap, wire_time)
            depart_time, queued = self._serialize(self._egress[msg.src_node],
                                                  depart_time, service)
            h = self._h_egress.get(msg.src_node)
            if h is not None:
                h.observe(queued)
        if self.injector is not None:
            # The injector decides the message's physical fate: zero, one
            # or two deliveries, each possibly delayed or corrupted. Drops
            # happen after egress — a dropped message still burned its
            # slot on the sender's link.
            for d in self.injector.wire_actions(msg, depart_time, wire_time):
                self._schedule_arrival(d.msg, depart_time + d.extra_delay,
                                       wire_time)
            return
        self._schedule_arrival(msg, depart_time, wire_time)

    def transmit_batch(self, items: Sequence[tuple[WireMessage, float]]
                       ) -> None:
        """Schedule delivery of a burst of ``(msg, depart_time)`` pairs.

        Arrival times and server bookkeeping are byte-identical to
        calling :meth:`transmit` once per pair in list order: the
        per-message wire times and egress services are computed with
        numpy (same operand order as the scalar path, so IEEE-identical)
        while the egress/ingress busy-chains — inherently sequential —
        are applied in list order. A fault-injected fabric falls back to
        the scalar path, which routes each message through the
        injector's wire actions.
        """
        if not items:
            return
        if self.injector is not None:
            for msg, depart_time in items:
                self.transmit(msg, depart_time)
            return
        for msg, _ in items:
            if msg.dst_node not in self._handlers:
                raise KeyError(f"no node {msg.dst_node} on this fabric "
                               f"(message {msg!r})")
        now = self.sim.now
        wire_arr = (np.asarray([m.wire_bytes for m, _ in items],
                               dtype=np.float64)
                    / self.params.bandwidth)
        # Back to Python floats: these feed event timestamps and server
        # busy-chains, which the state digest must see as plain floats.
        wire_times = wire_arr.tolist()
        if self.params.model_egress:
            services = np.maximum(self.params.node_msg_gap,
                                  wire_arr).tolist()
        else:
            services = wire_times  # unused; keeps the loop uniform
        for i, (msg, depart_time) in enumerate(items):
            depart_time = max(depart_time, now)
            wire_time = wire_times[i]
            if self.params.model_egress and msg.src_node in self._egress:
                depart_time, queued = self._serialize(
                    self._egress[msg.src_node], depart_time, services[i])
                h = self._h_egress.get(msg.src_node)
                if h is not None:
                    h.observe(queued)
            self._schedule_arrival(msg, depart_time, wire_time)

    def _schedule_arrival(self, msg: WireMessage, depart_time: float,
                          wire_time: float) -> None:
        """Apply latency + ingress queueing and schedule the arrival."""
        arrival = depart_time + self.params.latency + wire_time
        if self.params.model_ingress:
            head_arrival = depart_time + self.params.latency
            arrival, queued = self._serialize(self._ingress[msg.dst_node],
                                              head_arrival, wire_time)
            h = self._h_ingress.get(msg.dst_node)
            if h is not None:
                h.observe(queued)
        self._enqueue_arrival(msg, arrival)

    def _enqueue_arrival(self, msg: WireMessage, arrival: float) -> None:
        """Enqueue the delivery event for ``msg`` at absolute ``arrival``."""
        # Hand-built pre-triggered event (one per wire message — hot path).
        event = Event.__new__(Event)
        event.sim = self.sim
        event.callbacks = [self._on_arrival]
        event._value = msg
        event._exc = None
        event._triggered = True
        event._processed = False
        self.sim._enqueue(event, arrival - self.sim.now, priority=1)

    def _on_arrival(self, event: Event) -> None:
        msg: WireMessage = event._value
        self.messages_delivered += 1
        self.bytes_delivered += msg.wire_bytes
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(TraceCategory.MSG_DELIVER, {
                "rank": msg.dst_rank, "vci": msg.dst_vci,
                "src_rank": msg.src_rank, "tag": msg.tag,
                "kind": msg.kind.value, "bytes": msg.wire_bytes,
            })
        self._handlers[msg.dst_node](msg)

    def latency_for(self, wire_bytes: int) -> float:
        """Unloaded one-way latency for a message of ``wire_bytes``."""
        return self.params.latency + wire_bytes / self.params.bandwidth
