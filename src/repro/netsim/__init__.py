"""Simulated network substrate: NIC hardware contexts + LogGP fabric.

This package stands in for the Omni-Path hardware the paper measured on.
See DESIGN.md section 1 for the substitution rationale, and
docs/topology.md for the multi-hop interconnect layer
(:mod:`repro.netsim.topology`).
"""

from .config import (
    OMNIPATH_CONTEXTS,
    CpuCosts,
    FabricParams,
    NetworkConfig,
    NicParams,
)
from .fabric import Fabric
from .message import HEADER_BYTES, MessageKind, WireMessage
from .nic import HardwareContext, Nic
from .traffic import TRAFFIC_KINDS, TrafficSession, TrafficShape, install_traffic
from .topology import (
    ClusterSpec,
    Link,
    RoutedFabric,
    Topology,
    dragonfly,
    fat_tree,
    host_vertex,
    register_topology,
    topology_names,
    torus,
)

__all__ = [
    "OMNIPATH_CONTEXTS",
    "ClusterSpec",
    "CpuCosts",
    "Fabric",
    "FabricParams",
    "HEADER_BYTES",
    "HardwareContext",
    "Link",
    "MessageKind",
    "NetworkConfig",
    "Nic",
    "NicParams",
    "RoutedFabric",
    "TRAFFIC_KINDS",
    "Topology",
    "TrafficSession",
    "TrafficShape",
    "WireMessage",
    "install_traffic",
    "dragonfly",
    "fat_tree",
    "host_vertex",
    "register_topology",
    "topology_names",
    "torus",
]
