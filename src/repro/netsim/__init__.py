"""Simulated network substrate: NIC hardware contexts + LogGP fabric.

This package stands in for the Omni-Path hardware the paper measured on.
See DESIGN.md section 1 for the substitution rationale.
"""

from .config import (
    OMNIPATH_CONTEXTS,
    CpuCosts,
    FabricParams,
    NetworkConfig,
    NicParams,
)
from .fabric import Fabric
from .message import HEADER_BYTES, MessageKind, WireMessage
from .nic import HardwareContext, Nic

__all__ = [
    "OMNIPATH_CONTEXTS",
    "CpuCosts",
    "Fabric",
    "FabricParams",
    "HEADER_BYTES",
    "HardwareContext",
    "MessageKind",
    "NetworkConfig",
    "Nic",
    "NicParams",
    "WireMessage",
]
