"""NIC model: hardware contexts with per-message issue gaps.

A :class:`HardwareContext` is the unit of network parallelism — the paper's
"network hardware context" (work queue + doorbell register). Each context
injects at most one message per ``issue_gap`` seconds; the doorbell write
is serialized among the software channels (VCIs) mapped onto it.

A :class:`Nic` owns a fixed pool of contexts. VCIs request contexts through
:meth:`Nic.allocate_context`; when more VCIs exist than contexts, contexts
are shared round-robin — the Omni-Path resource-exhaustion effect of
Lesson 3.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..obs.metrics import MetricsRegistry, instrument_lock
from ..sim.core import Event, Simulator
from ..sim.resources import FIFOServer
from ..sim.sync import Lock
from .config import NicParams

__all__ = ["HardwareContext", "Nic"]


class HardwareContext:
    """One NIC hardware context (work queue + doorbell).

    With metrics enabled the context instruments its doorbell lock (the
    Lesson 3 serialization point among sharing VCIs) and records a
    queue-delay histogram for its injector — how long each message sat
    behind earlier injections before departing.
    """

    __slots__ = ("sim", "index", "params", "injector", "doorbell_lock",
                 "messages_issued", "bytes_issued", "sharers",
                 "_jitter_state", "_metrics", "_node_id", "m_inject_queue",
                 "nic", "fault_injector", "failovers_in", "stall_waits")

    def __init__(self, sim: Simulator, index: int, params: NicParams,
                 metrics: Optional[MetricsRegistry] = None, node_id: int = 0):
        self.sim = sim
        self.index = index
        self.params = params
        self.injector = FIFOServer(sim, name=f"hwctx{index}.inject")
        #: Serializes doorbell rings from the VCIs sharing this context.
        self.doorbell_lock = Lock(sim, name=f"hwctx{index}.doorbell")
        self.messages_issued = 0
        self.bytes_issued = 0
        #: Number of VCIs mapped onto this context.
        self.sharers = 0
        self._jitter_state = index * 0x9E3779B9 + 1
        self._metrics = metrics
        self._node_id = node_id
        self.m_inject_queue = None
        #: Owning NIC (set by Nic; needed to pick a failover target).
        self.nic: Optional["Nic"] = None
        #: Optional :class:`repro.faults.FaultInjector` whose plan may
        #: stall this context (the World attaches it).
        self.fault_injector = None
        #: Messages other contexts failed over onto this one.
        self.failovers_in = 0
        #: Messages that had to wait out a stall here (no failover target).
        self.stall_waits = 0

    def _instrument(self) -> None:
        """Create this context's metric series (on first allocation, so a
        160-context pool doesn't flood the registry with unused series)."""
        metrics = self._metrics
        if (self.m_inject_queue is None and metrics is not None
                and metrics.enabled):
            self.m_inject_queue = metrics.histogram(
                "nic.inject.queue_delay", node=self._node_id, ctx=self.index)
            instrument_lock(self.doorbell_lock, metrics, node=self._node_id,
                            ctx=self.index)

    def _jitter(self) -> float:
        """Deterministic per-message timing jitter (failure injection).

        Jitter is applied *inside* the context's FIFO injector, so the
        per-channel ordering MPI's transport relies on is preserved while
        arrival order *across* channels becomes irregular — exactly the
        reordering that logically-parallel communication must tolerate.
        """
        if self.params.issue_jitter <= 0.0:
            return 0.0
        # xorshift32: cheap, deterministic, seeded by context index
        x = self._jitter_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._jitter_state = x
        return self.params.issue_jitter * (x / 0xFFFFFFFF)

    def issue(self, wire_bytes: int) -> float:
        """Queue one message for injection; returns its departure time.

        The context is a serial injector: the message departs at
        ``max(now, previous departure) + gap + bytes * per_byte``.

        When a fault plan stalls this context (wedged work queue), the
        message fails over to a healthy context on the same NIC — landing
        on a *shared* context, where it contends with that context's own
        traffic (the Lesson 3 penalty, now triggered by a fault instead of
        resource exhaustion). With no healthy context available, nothing
        leaves the wedged queue until the stall window ends.
        """
        inj = self.fault_injector
        if inj is not None:
            stall_end = inj.stall_until(self._node_id, self.index,
                                        self.sim.now)
            if stall_end > 0.0:
                target = None if self.nic is None else \
                    self.nic.failover_target(self)
                if target is not None:
                    inj.note_failover(self._node_id, self.index,
                                      target.index)
                    target.failovers_in += 1
                    return target.issue(wire_bytes)
                self.stall_waits += 1
                if self.injector.free_at < stall_end:
                    self.injector._free_at = stall_end
        service = self.params.issue_gap + self._jitter() \
            + wire_bytes * self.params.issue_per_byte
        depart = self.injector.occupy(service)
        self.messages_issued += 1
        self.bytes_issued += wire_bytes
        if self.m_inject_queue is not None:
            self.m_inject_queue.observe(
                max(0.0, depart - service - self.sim.now))
        return depart

    def issue_batch(self, sizes: Sequence[int]) -> list[float]:
        """Queue a burst of messages for injection in one call.

        Departure times are byte-identical to ``[self.issue(b) for b in
        sizes]``: the per-message service is ``gap + bytes * per_byte``
        (vectorized with numpy — same association order as the scalar
        path, so IEEE-identical), and the injector busy-chain is applied
        sequentially in list order. Bursts on a stalled or jittered
        context fall back to the scalar path, which handles failover and
        the per-message xorshift draw.
        """
        if not sizes:
            return []
        if self.fault_injector is not None or self.params.issue_jitter > 0.0:
            return [self.issue(b) for b in sizes]
        services = (self.params.issue_gap
                    + np.asarray(sizes, dtype=np.float64)
                    * self.params.issue_per_byte)
        injector = self.injector
        now = self.sim.now
        departs: list[float] = []
        observe = self.m_inject_queue
        for service in services.tolist():
            depart = injector.occupy(service)
            departs.append(depart)
            if observe is not None:
                observe.observe(max(0.0, depart - service - now))
        self.messages_issued += len(departs)
        self.bytes_issued += int(sum(sizes))
        return departs

    def issue_event(self, wire_bytes: int) -> Event:
        """Like :meth:`issue` but returns the departure event (for waiting
        on local send completion)."""
        service = self.params.issue_gap + wire_bytes * self.params.issue_per_byte
        self.messages_issued += 1
        self.bytes_issued += wire_bytes
        return self.injector.submit(service)

    @property
    def is_shared(self) -> bool:
        return self.sharers > 1


class Nic:
    """A NIC with a fixed pool of hardware contexts."""

    def __init__(self, sim: Simulator, params: NicParams, node_id: int = 0,
                 metrics: Optional[MetricsRegistry] = None):
        if params.num_hardware_contexts < 1:
            raise ValueError("NIC needs at least one hardware context")
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.contexts = [HardwareContext(sim, i, params, metrics=metrics,
                                         node_id=node_id)
                         for i in range(params.num_hardware_contexts)]
        for ctx in self.contexts:
            ctx.nic = self
        self._next = 0

    def attach_fault_injector(self, injector) -> None:
        """Subject every context to ``injector``'s stall windows."""
        for ctx in self.contexts:
            ctx.fault_injector = injector

    def failover_target(self, stalled: HardwareContext
                        ) -> Optional[HardwareContext]:
        """A healthy context to absorb a stalled context's traffic.

        Deterministic preference order: the lowest-index healthy context
        that is already allocated to VCIs (its owners will feel the extra
        contention — graceful degradation, not a free lunch), else the
        lowest-index healthy context at all.
        """
        inj = stalled.fault_injector
        now = self.sim.now
        healthy = [c for c in self.contexts
                   if c is not stalled
                   and (inj is None
                        or inj.stall_until(c._node_id, c.index, now) == 0.0)]
        for ctx in healthy:
            if ctx.sharers > 0:
                return ctx
        return healthy[0] if healthy else None

    def allocate_context(self) -> HardwareContext:
        """Allocate a context round-robin.

        Within the pool, allocation hands out each context once before any
        context is handed out twice, so sharing only begins once the pool
        is exhausted — matching how VCI-enabled MPI libraries create a pool
        of network resources at init and map logical channels onto them
        (Section II-B of the paper).
        """
        ctx = self.contexts[self._next % len(self.contexts)]
        self._next += 1
        ctx.sharers += 1
        ctx._instrument()
        return ctx

    @property
    def num_allocated(self) -> int:
        return self._next

    @property
    def oversubscription(self) -> float:
        """Mean number of VCIs per *used* hardware context."""
        used = [c for c in self.contexts if c.sharers > 0]
        if not used:
            return 0.0
        return sum(c.sharers for c in used) / len(used)

    def load_imbalance(self) -> float:
        """Max/mean of messages issued across used contexts.

        A perfectly balanced mapping gives 1.0. Used by the RMA hashing
        experiment (Fig 6): hash collisions show up as imbalance > 1.
        """
        counts = [c.messages_issued for c in self.contexts if c.messages_issued]
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def total_messages(self) -> int:
        return sum(c.messages_issued for c in self.contexts)
