"""NIC model: hardware contexts with per-message issue gaps.

A :class:`HardwareContext` is the unit of network parallelism — the paper's
"network hardware context" (work queue + doorbell register). Each context
injects at most one message per ``issue_gap`` seconds; the doorbell write
is serialized among the software channels (VCIs) mapped onto it.

A :class:`Nic` owns a fixed pool of contexts. VCIs request contexts through
:meth:`Nic.allocate_context`; when more VCIs exist than contexts, contexts
are shared round-robin — the Omni-Path resource-exhaustion effect of
Lesson 3.
"""

from __future__ import annotations

from typing import Optional

from ..obs.metrics import MetricsRegistry, instrument_lock
from ..sim.core import Event, Simulator
from ..sim.resources import FIFOServer
from ..sim.sync import Lock
from .config import NicParams

__all__ = ["HardwareContext", "Nic"]


class HardwareContext:
    """One NIC hardware context (work queue + doorbell).

    With metrics enabled the context instruments its doorbell lock (the
    Lesson 3 serialization point among sharing VCIs) and records a
    queue-delay histogram for its injector — how long each message sat
    behind earlier injections before departing.
    """

    __slots__ = ("sim", "index", "params", "injector", "doorbell_lock",
                 "messages_issued", "bytes_issued", "sharers",
                 "_jitter_state", "_metrics", "_node_id", "m_inject_queue")

    def __init__(self, sim: Simulator, index: int, params: NicParams,
                 metrics: Optional[MetricsRegistry] = None, node_id: int = 0):
        self.sim = sim
        self.index = index
        self.params = params
        self.injector = FIFOServer(sim, name=f"hwctx{index}.inject")
        #: Serializes doorbell rings from the VCIs sharing this context.
        self.doorbell_lock = Lock(sim, name=f"hwctx{index}.doorbell")
        self.messages_issued = 0
        self.bytes_issued = 0
        #: Number of VCIs mapped onto this context.
        self.sharers = 0
        self._jitter_state = index * 0x9E3779B9 + 1
        self._metrics = metrics
        self._node_id = node_id
        self.m_inject_queue = None

    def _instrument(self) -> None:
        """Create this context's metric series (on first allocation, so a
        160-context pool doesn't flood the registry with unused series)."""
        metrics = self._metrics
        if (self.m_inject_queue is None and metrics is not None
                and metrics.enabled):
            self.m_inject_queue = metrics.histogram(
                "nic.inject.queue_delay", node=self._node_id, ctx=self.index)
            instrument_lock(self.doorbell_lock, metrics, node=self._node_id,
                            ctx=self.index)

    def _jitter(self) -> float:
        """Deterministic per-message timing jitter (failure injection).

        Jitter is applied *inside* the context's FIFO injector, so the
        per-channel ordering MPI's transport relies on is preserved while
        arrival order *across* channels becomes irregular — exactly the
        reordering that logically-parallel communication must tolerate.
        """
        if self.params.issue_jitter <= 0.0:
            return 0.0
        # xorshift32: cheap, deterministic, seeded by context index
        x = self._jitter_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._jitter_state = x
        return self.params.issue_jitter * (x / 0xFFFFFFFF)

    def issue(self, wire_bytes: int) -> float:
        """Queue one message for injection; returns its departure time.

        The context is a serial injector: the message departs at
        ``max(now, previous departure) + gap + bytes * per_byte``.
        """
        service = self.params.issue_gap + self._jitter() \
            + wire_bytes * self.params.issue_per_byte
        depart = self.injector.occupy(service)
        self.messages_issued += 1
        self.bytes_issued += wire_bytes
        if self.m_inject_queue is not None:
            self.m_inject_queue.observe(
                max(0.0, depart - service - self.sim.now))
        return depart

    def issue_event(self, wire_bytes: int) -> Event:
        """Like :meth:`issue` but returns the departure event (for waiting
        on local send completion)."""
        service = self.params.issue_gap + wire_bytes * self.params.issue_per_byte
        self.messages_issued += 1
        self.bytes_issued += wire_bytes
        return self.injector.submit(service)

    @property
    def is_shared(self) -> bool:
        return self.sharers > 1


class Nic:
    """A NIC with a fixed pool of hardware contexts."""

    def __init__(self, sim: Simulator, params: NicParams, node_id: int = 0,
                 metrics: Optional[MetricsRegistry] = None):
        if params.num_hardware_contexts < 1:
            raise ValueError("NIC needs at least one hardware context")
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.contexts = [HardwareContext(sim, i, params, metrics=metrics,
                                         node_id=node_id)
                         for i in range(params.num_hardware_contexts)]
        self._next = 0

    def allocate_context(self) -> HardwareContext:
        """Allocate a context round-robin.

        Within the pool, allocation hands out each context once before any
        context is handed out twice, so sharing only begins once the pool
        is exhausted — matching how VCI-enabled MPI libraries create a pool
        of network resources at init and map logical channels onto them
        (Section II-B of the paper).
        """
        ctx = self.contexts[self._next % len(self.contexts)]
        self._next += 1
        ctx.sharers += 1
        ctx._instrument()
        return ctx

    @property
    def num_allocated(self) -> int:
        return self._next

    @property
    def oversubscription(self) -> float:
        """Mean number of VCIs per *used* hardware context."""
        used = [c for c in self.contexts if c.sharers > 0]
        if not used:
            return 0.0
        return sum(c.sharers for c in used) / len(used)

    def load_imbalance(self) -> float:
        """Max/mean of messages issued across used contexts.

        A perfectly balanced mapping gives 1.0. Used by the RMA hashing
        experiment (Fig 6): hash collisions show up as imbalance > 1.
        """
        counts = [c.messages_issued for c in self.contexts if c.messages_issued]
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def total_messages(self) -> int:
        return sum(c.messages_issued for c in self.contexts)
