"""Wire message records exchanged through the simulated fabric."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["MessageKind", "WireMessage"]

_seq_counter = itertools.count()


class MessageKind(enum.Enum):
    """Protocol-level message types."""

    EAGER = "eager"               # pt2pt payload inlined
    RNDV_RTS = "rndv_rts"         # rendezvous request-to-send (header only)
    RNDV_CTS = "rndv_cts"         # rendezvous clear-to-send
    RNDV_DATA = "rndv_data"       # rendezvous bulk payload
    PARTITION = "partition"       # one partition of a partitioned op
    PART_INIT = "part_init"       # partitioned-op handshake (matched once)
    PART_INIT_ACK = "part_init_ack"
    RMA_PUT = "rma_put"
    RMA_GET_REQ = "rma_get_req"
    RMA_GET_RESP = "rma_get_resp"
    RMA_ACC = "rma_acc"
    RMA_FETCH_OP = "rma_fetch_op"
    RMA_ACK = "rma_ack"           # remote completion acknowledgement
    CTRL = "ctrl"                 # generic control (collectives internals)
    REL_ACK = "rel_ack"           # reliable-transport cumulative ACK
    BACKGROUND = "background"     # injected background-traffic flow unit


#: Header bytes added to every wire message (envelope: context id, rank,
#: tag, seq). Affects bandwidth only for large counts of tiny messages.
HEADER_BYTES = 48


@dataclass
class WireMessage:
    """One message on the wire.

    ``payload`` carries the actual data (a numpy array copy or any Python
    object) so that correctness — not just timing — is simulated; tests
    assert on received values.
    """

    kind: MessageKind
    src_node: int
    dst_node: int
    src_rank: int            # global MPI rank of sender process
    dst_rank: int            # global MPI rank of destination process
    context_id: int          # communicator context id (matching key)
    tag: int
    size: int                # payload bytes (excl. header)
    payload: Any = None
    src_vci: int = 0
    dst_vci: int = 0
    seq: int = field(default_factory=lambda: next(_seq_counter))
    #: Sequence number within the sender's (context, dst_rank) ordered
    #: stream — used to enforce/relax non-overtaking at the receiver.
    stream_seq: int = 0
    #: Free-form protocol fields (rendezvous handles, partition ids, RMA
    #: window/offset, collective phase, ...).
    meta: dict = field(default_factory=dict)
    #: Reliable-transport envelope (set by :mod:`repro.faults.transport`
    #: when a world runs with reliability enabled; None on a lossless
    #: fabric). ``rel_flow`` identifies the FIFO stream the message
    #: belongs to, ``rel_seq`` its position within it, and ``checksum``
    #: covers the payload so corrupted deliveries are detectable.
    rel_flow: Optional[tuple] = None
    rel_seq: Optional[int] = None
    checksum: int = 0

    @property
    def wire_bytes(self) -> int:
        return self.size + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WireMessage {self.kind.value} {self.src_rank}->{self.dst_rank} "
                f"ctx={self.context_id} tag={self.tag} size={self.size}>")
