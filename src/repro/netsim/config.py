"""Cost-model and hardware configuration for the simulated network stack.

All times are **seconds** of simulated time, all sizes **bytes**. Default
magnitudes are chosen to be plausible for the platforms in the paper
(Omni-Path fabric, Skylake/KNL/Broadwell nodes) but the reproduction only
relies on their *relative* structure: software path vs NIC issue gap vs
wire latency. The goal is shape fidelity, not absolute-number fidelity.

The key hardware knob for the paper is ``num_hardware_contexts``: Omni-Path
exposes 160 hardware contexts per NIC (paper, Lesson 3). When more VCIs are
created than there are hardware contexts, VCIs share contexts and contend —
which is exactly how the paper explains hypre's 2x slowdown with the
communicator mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CpuCosts", "NicParams", "FabricParams", "NetworkConfig",
           "OMNIPATH_CONTEXTS"]

#: Number of hardware contexts per Omni-Path HFI (paper, Section III-A).
OMNIPATH_CONTEXTS = 160


@dataclass(frozen=True)
class CpuCosts:
    """Per-operation CPU-side software costs of the MPI library."""

    #: Software path to post a send (argument checking, request setup,
    #: descriptor build) — charged to the calling thread.
    send_post: float = 80e-9
    #: Software path to post a receive.
    recv_post: float = 80e-9
    #: Fixed cost of one matching attempt (queue head inspection).
    match_base: float = 25e-9
    #: Incremental cost per queue element scanned during matching. This is
    #: the O(n) term of Section II-C: n threads sharing one communicator
    #: grow the match queues to depth ~n.
    match_per_element: float = 10e-9
    #: Cost of an uncontended lock acquire (atomic CAS).
    lock_acquire: float = 15e-9
    #: Extra penalty when a lock is handed off contended (cache-line
    #: bounce + wakeup). Charged to the acquiring thread.
    lock_handoff: float = 45e-9
    #: Completing a request (status fill, counters).
    request_completion: float = 30e-9
    #: One poll of the progress engine.
    progress_poll: float = 40e-9
    #: Marking one partition ready (MPI_Pready): a flag write + doorbell.
    pready: float = 35e-9
    #: Checking one partition's arrival (MPI_Parrived).
    parrived: float = 20e-9
    #: Intra-process shared-memory copy setup (threads exchanging halos
    #: through shared memory instead of MPI).
    shm_copy_base: float = 60e-9
    #: Shared-memory copy bandwidth (bytes/second) — streaming large-copy
    #: rate of a modern server socket.
    shm_bandwidth: float = 20e9
    #: Local reduction cost per byte (used by user-driven intranode
    #: collective steps, Lesson 18).
    reduce_per_byte: float = 0.10e-9
    #: Per-communicator probe cost for a polling loop that must iterate
    #: over K communicators (Fig 5): one MPI_Test/Iprobe software path.
    probe: float = 60e-9


@dataclass(frozen=True)
class NicParams:
    """Parameters of one NIC."""

    #: Hardware contexts available on the NIC (Omni-Path: 160).
    num_hardware_contexts: int = OMNIPATH_CONTEXTS
    #: Per-message issue gap of one hardware context (LogGP ``g``): the
    #: context injects at most one message per ``issue_gap`` seconds.
    issue_gap: float = 180e-9
    #: Additional per-byte injection cost (LogGP ``G`` at the sender).
    issue_per_byte: float = 1.0 / 12.5e9
    #: Cost of ringing a context's doorbell (MMIO write) — serialized per
    #: context and charged to the issuing thread.
    doorbell: float = 30e-9
    #: Extra per-post critical-section time when a hardware context is
    #: shared by more than one VCI: software locking around the shared
    #: work queue plus cache-line bouncing ("software overheads of thread
    #: synchronization to access shared network queues", Lesson 3).
    #: Calibrated so that context oversubscription costs roughly 2x on a
    #: halo exchange, matching the paper's hypre-on-Omni-Path report
    #: (PSM2 shared-context locks are notoriously expensive).
    shared_post_penalty: float = 400e-9
    #: Failure injection: maximum extra per-message injection delay
    #: (uniform, deterministic per context). Per-channel FIFO ordering is
    #: preserved; cross-channel arrival order becomes irregular. 0 = off.
    issue_jitter: float = 0.0


@dataclass(frozen=True)
class FabricParams:
    """Parameters of the interconnect between nodes."""

    #: One-way wire latency between any two nodes (seconds).
    latency: float = 0.9e-6
    #: Link bandwidth (bytes/second); 12.5e9 = 100 Gb/s.
    bandwidth: float = 12.5e9
    #: Messages at or below this size use the eager protocol; larger ones
    #: use rendezvous (RTS/CTS handshake adds two extra latencies).
    eager_threshold: int = 16 * 1024
    #: Per-node ingress serialization: a node cannot absorb more than
    #: ``bandwidth`` bytes/second in total.
    model_ingress: bool = True
    #: Per-node egress serialization: all hardware contexts feed one link,
    #: so a node cannot inject more than ``bandwidth`` bytes/second nor
    #: more than one message per ``node_msg_gap`` in aggregate. This is
    #: what eventually flattens the Fig 1(a) message-rate curves.
    model_egress: bool = True
    #: Aggregate per-message gap of the node's link/NIC pipeline
    #: (5 ns = 200 M messages/s ceiling per node).
    node_msg_gap: float = 5e-9


@dataclass(frozen=True)
class NetworkConfig:
    """Bundle of all hardware/cost parameters for an experiment."""

    cpu: CpuCosts = field(default_factory=CpuCosts)
    nic: NicParams = field(default_factory=NicParams)
    fabric: FabricParams = field(default_factory=FabricParams)
    name: str = "default"

    # -- presets ----------------------------------------------------------
    @staticmethod
    def omnipath() -> "NetworkConfig":
        """Omni-Path-like fabric: 160 hardware contexts per NIC."""
        return NetworkConfig(
            nic=NicParams(num_hardware_contexts=OMNIPATH_CONTEXTS),
            name="omnipath",
        )

    @staticmethod
    def abundant(num_contexts: int = 4096) -> "NetworkConfig":
        """A NIC with effectively unlimited hardware contexts.

        Used to separate software-contention effects from
        hardware-resource-exhaustion effects.
        """
        return NetworkConfig(
            nic=NicParams(num_hardware_contexts=num_contexts),
            name=f"abundant[{num_contexts}]",
        )

    @staticmethod
    def scarce(num_contexts: int = 16) -> "NetworkConfig":
        """A NIC with few hardware contexts, to magnify Lesson 3."""
        return NetworkConfig(
            nic=NicParams(num_hardware_contexts=num_contexts),
            name=f"scarce[{num_contexts}]",
        )

    def with_contexts(self, n: int) -> "NetworkConfig":
        """A copy of this config with ``n`` hardware contexts per NIC."""
        return replace(self, nic=replace(self.nic, num_hardware_contexts=n),
                       name=f"{self.name}/ctx={n}")
