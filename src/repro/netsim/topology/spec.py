"""Declarative cluster description: ``ClusterSpec`` and the topology registry.

The redesigned construction API::

    from repro import ClusterSpec, NetworkConfig, World

    world = World(cluster=ClusterSpec(
        nodes=16, threads_per_proc=4,
        topology="fat_tree", k=4,
        network=NetworkConfig.omnipath()))

``topology`` resolves through a small registry protocol: a *builder* is
any callable ``builder(nodes, params, **kwargs) -> Topology | None``
registered under a name with :func:`register_topology`. ``None`` means
"no link graph" — the World then uses the legacy single-hop
:class:`~repro.netsim.fabric.Fabric`, which is exactly what the built-in
``direct`` topology returns (hence byte-identical timing with the old
``World(cfg=...)`` path). The built-ins cover ``direct``, ``fat_tree``,
``dragonfly``, and ``torus``; applications may register their own.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol

from ...errors import TopologyError
from ..config import FabricParams, NetworkConfig
from .generators import dragonfly, fat_tree, torus
from .graph import Topology

__all__ = ["ClusterSpec", "TopologyBuilder", "register_topology",
           "topology_names"]


class TopologyBuilder(Protocol):
    """The registry protocol: build a topology for ``nodes`` hosts.

    ``params`` carries the fabric's default per-hop pricing; builders may
    ignore it (links priced ``None`` inherit it at bind time anyway).
    Returning ``None`` selects the legacy single-hop fabric.
    """

    def __call__(self, nodes: int, params: FabricParams,
                 **kwargs: Any) -> Optional[Topology]:
        ...


_REGISTRY: dict[str, TopologyBuilder] = {}


def register_topology(name: str, builder: TopologyBuilder) -> None:
    """Register ``builder`` under ``name`` (overwrites earlier bindings)."""
    if not name or not isinstance(name, str):
        raise TopologyError(f"topology name must be a non-empty string: {name!r}")
    _REGISTRY[name] = builder


def topology_names() -> tuple[str, ...]:
    """All registered topology names, sorted."""
    return tuple(sorted(_REGISTRY))


def _build_direct(nodes: int, params: FabricParams,
                  **kwargs: Any) -> Optional[Topology]:
    """The legacy single-hop fabric (no link graph)."""
    if kwargs:
        raise TopologyError(
            f"direct topology takes no parameters, got {sorted(kwargs)}")
    return None


def _build_fat_tree(nodes: int, params: FabricParams, k: int = 4,
                    **kwargs: Any) -> Topology:
    """``fat_tree(k)`` — capacity ``k**3/4`` hosts."""
    return fat_tree(k, **kwargs)


def _build_dragonfly(nodes: int, params: FabricParams, a: int = 4,
                     p: int = 2, h: int = 2, **kwargs: Any) -> Topology:
    """``dragonfly(a, p, h)`` — capacity ``(a*h+1)*a*p`` hosts."""
    return dragonfly(a, p, h, **kwargs)


def _build_torus(nodes: int, params: FabricParams,
                 dims: tuple[int, ...] = (4, 4), **kwargs: Any) -> Topology:
    """``torus(dims)`` — capacity ``prod(dims)`` hosts."""
    return torus(dims, **kwargs)


register_topology("direct", _build_direct)
register_topology("fat_tree", _build_fat_tree)
register_topology("dragonfly", _build_dragonfly)
register_topology("torus", _build_torus)


class ClusterSpec:
    """A declarative description of the simulated machine.

    Bundles the cluster's shape (``nodes``, ``procs_per_node``,
    ``threads_per_proc``), its interconnect (``topology`` name plus
    topology parameters such as ``k=4`` or ``dims=(4, 4)``), and the
    network pricing (``network``, a
    :class:`~repro.netsim.config.NetworkConfig`). Topology parameters
    are validated eagerly — an unknown name or an undersized topology
    fails at spec construction, not mid-run.

    One spec builds one world: the topology object carries per-link
    queue state once bound, so :meth:`build_topology` returns a fresh
    graph on every call.
    """

    def __init__(self, nodes: int = 2, procs_per_node: int = 1,
                 threads_per_proc: int = 1, topology: str = "direct",
                 network: Optional[NetworkConfig] = None,
                 **params: Any):
        if nodes < 1 or procs_per_node < 1 or threads_per_proc < 1:
            raise TopologyError("cluster dimensions must be positive")
        if topology not in _REGISTRY:
            raise TopologyError(
                f"unknown topology {topology!r}; registered: "
                f"{', '.join(topology_names())}")
        self.nodes = nodes
        self.procs_per_node = procs_per_node
        self.threads_per_proc = threads_per_proc
        self.topology = topology
        self.network = network or NetworkConfig()
        self.params = dict(params)
        # Fail fast: building the graph validates the generator
        # parameters and the capacity against `nodes`.
        self.build_topology()

    def build_topology(self) -> Optional[Topology]:
        """Build a fresh, unbound topology graph (``None`` for direct)."""
        builder = _REGISTRY[self.topology]
        try:
            topo = builder(self.nodes, self.network.fabric, **self.params)
        except TypeError as exc:
            raise TopologyError(
                f"bad parameters for topology {self.topology!r}: {exc}"
            ) from None
        if topo is not None and topo.num_hosts < self.nodes:
            raise TopologyError(
                f"{topo.name} has {topo.num_hosts} host ports, cannot "
                f"place {self.nodes} nodes")
        return topo

    def describe(self) -> str:
        """One-line human summary of the spec."""
        extra = "".join(f", {k}={v!r}" for k, v in sorted(self.params.items()))
        return (f"ClusterSpec(nodes={self.nodes}, "
                f"procs_per_node={self.procs_per_node}, "
                f"threads_per_proc={self.threads_per_proc}, "
                f"topology={self.topology!r}{extra}, "
                f"network={self.network.name!r})")

    def __repr__(self) -> str:
        return self.describe()
