"""Topology generators: fat tree, dragonfly, torus.

Each generator returns a fully routed :class:`~.graph.Topology` whose
host capacity may exceed the cluster actually placed on it (a
``fat_tree(k=4)`` always has 16 host ports even if only 4 nodes attach).
Routes are static and deterministic — D-mod-k for the fat tree, minimal
(direct-gateway) paths for the dragonfly, dimension-order with shortest
wrap for the torus — so two runs of one workload traverse identical
links in identical order.

Link ``bandwidth``/``latency`` default to ``None`` and inherit the
fabric's :class:`~repro.netsim.config.FabricParams` per hop at bind
time; pass explicit values to price a topology's links differently from
the host NIC links.
"""

from __future__ import annotations

import math
from typing import Optional

from ...errors import TopologyError
from .graph import Topology, host_vertex

__all__ = ["fat_tree", "dragonfly", "torus"]


def fat_tree(k: int, bandwidth: Optional[float] = None,
             latency: Optional[float] = None) -> Topology:
    """A k-ary fat tree with D-mod-k routing (k pods, ``k**3/4`` hosts).

    Structure (Al-Fares et al.): ``k`` pods of ``k/2`` edge and ``k/2``
    aggregation switches, ``(k/2)**2`` core switches, ``k/2`` hosts per
    edge switch. Up-paths use destination-mod-k port selection — the
    deterministic ECMP variant — so distinct destinations spread over
    distinct core switches while one (src, dst) pair always takes one
    path.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat_tree arity k must be even and >= 2, got {k}")
    half = k // 2
    hosts_per_pod = half * half
    capacity = k * hosts_per_pod
    topo = Topology(f"fat_tree(k={k})", num_hosts=capacity)

    def edge_name(p: int, e: int) -> str:
        return f"p{p}.e{e}"

    def agg_name(p: int, a: int) -> str:
        return f"p{p}.a{a}"

    def core_name(c: int) -> str:
        return f"core{c}"

    for p in range(k):
        for i in range(half):
            topo.add_switch(edge_name(p, i))
            topo.add_switch(agg_name(p, i))
    for c in range(half * half):
        topo.add_switch(core_name(c))

    for host in range(capacity):
        p, e = host // hosts_per_pod, (host % hosts_per_pod) // half
        topo.add_duplex(host_vertex(host), edge_name(p, e), bandwidth, latency)
    for p in range(k):
        for e in range(half):
            for a in range(half):
                topo.add_duplex(edge_name(p, e), agg_name(p, a),
                                bandwidth, latency)
        for a in range(half):
            for c in range(a * half, (a + 1) * half):
                topo.add_duplex(agg_name(p, a), core_name(c),
                                bandwidth, latency)

    for dst in range(capacity):
        dp = dst // hosts_per_pod
        de = (dst % hosts_per_pod) // half
        # D-mod-k port selection for the two up-hops.
        up_agg = dst % half
        up_core_off = (dst // half) % half
        for host in range(capacity):
            if host == dst:
                continue
            p, e = host // hosts_per_pod, (host % hosts_per_pod) // half
            topo.set_next_hop(host_vertex(host), dst,
                              topo.link(host_vertex(host), edge_name(p, e)))
        for p in range(k):
            for e in range(half):
                ename = edge_name(p, e)
                if p == dp and e == de:
                    nxt = topo.link(ename, host_vertex(dst))
                else:
                    nxt = topo.link(ename, agg_name(p, up_agg))
                topo.set_next_hop(ename, dst, nxt)
            for a in range(half):
                aname = agg_name(p, a)
                if p == dp:
                    nxt = topo.link(aname, edge_name(p, de))
                else:
                    nxt = topo.link(aname, core_name(a * half + up_core_off))
                topo.set_next_hop(aname, dst, nxt)
        for c in range(half * half):
            topo.set_next_hop(core_name(c), dst,
                              topo.link(core_name(c), agg_name(dp, c // half)))
    return topo


def dragonfly(a: int, p: int, h: int, bandwidth: Optional[float] = None,
              latency: Optional[float] = None) -> Topology:
    """A maximal dragonfly: ``a*h + 1`` groups, minimal routing.

    ``a`` routers per group (fully connected intra-group), ``p`` hosts
    per router, ``h`` global links per router. Every group pair is joined
    by exactly one global link (the balanced configuration of Kim et
    al.), so minimal routes are at most router → gateway → remote
    gateway → router: three switch hops.
    """
    if a < 1 or p < 1 or h < 1:
        raise TopologyError(
            f"dragonfly needs a, p, h >= 1, got a={a} p={p} h={h}")
    groups = a * h + 1
    capacity = groups * a * p
    topo = Topology(f"dragonfly(a={a},p={p},h={h})", num_hosts=capacity)

    def router(g: int, r: int) -> str:
        return f"g{g}.r{r}"

    def port_toward(src_g: int, dst_g: int) -> int:
        """Global-port index group ``src_g`` uses to reach ``dst_g``."""
        return dst_g - 1 if dst_g > src_g else dst_g

    def gateway(src_g: int, dst_g: int) -> int:
        """Router in ``src_g`` owning the global link toward ``dst_g``."""
        return port_toward(src_g, dst_g) // h

    for g in range(groups):
        for r in range(a):
            topo.add_switch(router(g, r))
    for host in range(capacity):
        g, r = host // (a * p), (host % (a * p)) // p
        topo.add_duplex(host_vertex(host), router(g, r), bandwidth, latency)
    for g in range(groups):
        for r1 in range(a):
            for r2 in range(r1 + 1, a):
                topo.add_duplex(router(g, r1), router(g, r2),
                                bandwidth, latency)
    for g1 in range(groups):
        for g2 in range(g1 + 1, groups):
            topo.add_duplex(router(g1, gateway(g1, g2)),
                            router(g2, gateway(g2, g1)),
                            bandwidth, latency)

    for dst in range(capacity):
        dg, dr = dst // (a * p), (dst % (a * p)) // p
        for host in range(capacity):
            if host == dst:
                continue
            g, r = host // (a * p), (host % (a * p)) // p
            topo.set_next_hop(host_vertex(host), dst,
                              topo.link(host_vertex(host), router(g, r)))
        for g in range(groups):
            for r in range(a):
                rname = router(g, r)
                if g == dg:
                    if r == dr:
                        nxt = topo.link(rname, host_vertex(dst))
                    else:
                        nxt = topo.link(rname, router(g, dr))
                else:
                    gw = gateway(g, dg)
                    if r == gw:
                        nxt = topo.link(rname, router(dg, gateway(dg, g)))
                    else:
                        nxt = topo.link(rname, router(g, gw))
                topo.set_next_hop(rname, dst, nxt)
    return topo


def torus(dims: tuple[int, ...], bandwidth: Optional[float] = None,
          latency: Optional[float] = None) -> Topology:
    """An n-dimensional torus with dimension-order routing.

    One switch (and one host port) per lattice point; wraparound links in
    every dimension of size > 2 (size-2 dimensions collapse the two
    directions into one duplex link). Routes correct one dimension at a
    time, lowest dimension first, taking the shorter way around the ring
    (ties go forward) — the classic deadlock-free dimension-order walk.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(
            f"torus dims must be a non-empty tuple of sizes >= 1, got {dims}")
    capacity = math.prod(dims)
    topo = Topology(f"torus({'x'.join(map(str, dims))})", num_hosts=capacity)

    def coords(index: int) -> tuple[int, ...]:
        out = []
        for d in reversed(dims):
            out.append(index % d)
            index //= d
        return tuple(reversed(out))

    def index(coord: tuple[int, ...]) -> int:
        out = 0
        for c, d in zip(coord, dims):
            out = out * d + c
        return out

    def switch(coord: tuple[int, ...]) -> str:
        return "s" + "_".join(map(str, coord))

    def neighbors(coord: tuple[int, ...]) -> list[tuple[int, ...]]:
        out = []
        for axis, n in enumerate(dims):
            if n == 1:
                continue
            steps = {1, n - 1}  # +1 and -1 mod n; identical when n == 2
            for step in sorted(steps):
                nb = list(coord)
                nb[axis] = (coord[axis] + step) % n
                out.append(tuple(nb))
        return out

    all_coords = [coords(i) for i in range(capacity)]
    for coord in all_coords:
        topo.add_switch(switch(coord))
    for i, coord in enumerate(all_coords):
        topo.add_duplex(host_vertex(i), switch(coord), bandwidth, latency)
    for coord in all_coords:
        for nb in neighbors(coord):
            topo.add_link(switch(coord), switch(nb), bandwidth, latency)

    def step_toward(coord: tuple[int, ...],
                    goal: tuple[int, ...]) -> tuple[int, ...]:
        for axis, n in enumerate(dims):
            if coord[axis] == goal[axis]:
                continue
            forward = (goal[axis] - coord[axis]) % n
            backward = (coord[axis] - goal[axis]) % n
            step = 1 if forward <= backward else n - 1
            nxt = list(coord)
            nxt[axis] = (coord[axis] + step) % n
            return tuple(nxt)
        return coord

    for dst in range(capacity):
        goal = all_coords[dst]
        for host in range(capacity):
            if host == dst:
                continue
            topo.set_next_hop(
                host_vertex(host), dst,
                topo.link(host_vertex(host), switch(all_coords[host])))
        for coord in all_coords:
            sname = switch(coord)
            if coord == goal:
                nxt = topo.link(sname, host_vertex(dst))
            else:
                nxt = topo.link(sname, switch(step_toward(coord, goal)))
            topo.set_next_hop(sname, dst, nxt)
    return topo
