"""The interconnect graph: hosts, switches, directed links, static routes.

A :class:`Topology` is a pure description — vertices, directed
:class:`Link` objects, and a next-hop table mapping ``(vertex, dst
host)`` to the link to take. Generators (:mod:`.generators`) build these
tables offline; the :class:`~repro.netsim.topology.routed.RoutedFabric`
then *binds* the topology to a simulator, giving every link a
:class:`~repro.sim.resources.FIFOServer` so per-link serialization and
queueing accrue as messages traverse it.

Hosts are the fabric's node ids (``0 .. num_hosts-1``) and appear in the
graph as vertices named ``h<i>``; switches carry generator-chosen names
(``pod0.edge1``, ``core3``, ...). Routes are *static and deterministic*:
one path per (src, dst) pair, computed once and cached, so simulated
timings stay reproducible byte-for-byte.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...errors import TopologyError
from ...sim.core import Simulator
from ...sim.resources import FIFOServer
from ..config import FabricParams

__all__ = ["Link", "Topology", "host_vertex"]


def host_vertex(node_id: int) -> str:
    """The graph vertex name for fabric node ``node_id``."""
    return f"h{node_id}"


class Link:
    """One directed link: an edge of the interconnect graph.

    ``bandwidth``/``latency`` may be left ``None`` by generators; binding
    the topology to a fabric fills them from the fabric's
    :class:`~repro.netsim.config.FabricParams` (so one topology shape can
    be priced under different network configs). ``server`` is the link's
    FIFO queue, created at bind time; ``messages``/``bytes`` count the
    traffic the link carried.
    """

    __slots__ = ("name", "src", "dst", "bandwidth", "latency", "server",
                 "messages", "bytes")

    def __init__(self, src: str, dst: str,
                 bandwidth: Optional[float] = None,
                 latency: Optional[float] = None):
        self.name = f"{src}->{dst}"
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.server: Optional[FIFOServer] = None
        self.messages = 0
        self.bytes = 0

    def __repr__(self) -> str:
        return f"<Link {self.name}>"


class Topology:
    """A named interconnect graph with per-destination next-hop routes.

    Construction protocol (used by the generators)::

        topo = Topology("fat_tree(k=4)", num_hosts=16)
        topo.add_switch("pod0.edge0")
        link = topo.add_link("h0", "pod0.edge0")
        topo.set_next_hop("h0", dst=5, link=link)

    ``route(src, dst)`` then walks the next-hop table into a tuple of
    links, validating on the way that the path terminates at the
    destination host without revisiting a vertex.
    """

    def __init__(self, name: str, num_hosts: int):
        if num_hosts < 1:
            raise TopologyError(f"topology needs >= 1 host, got {num_hosts}")
        self.name = name
        self.num_hosts = num_hosts
        self.switches: list[str] = []
        self._vertices: set[str] = {host_vertex(i) for i in range(num_hosts)}
        self._links: dict[str, Link] = {}
        self._next_hop: dict[tuple[str, int], Link] = {}
        self._routes: dict[tuple[int, int], tuple[Link, ...]] = {}
        self._bound = False

    # -- construction ---------------------------------------------------
    def add_switch(self, name: str) -> str:
        """Declare a switch vertex; returns its name."""
        if name in self._vertices:
            raise TopologyError(f"duplicate vertex {name!r}")
        self._vertices.add(name)
        self.switches.append(name)
        return name

    def add_link(self, src: str, dst: str,
                 bandwidth: Optional[float] = None,
                 latency: Optional[float] = None) -> Link:
        """Add a directed link ``src -> dst``; returns it."""
        for v in (src, dst):
            if v not in self._vertices:
                raise TopologyError(f"link endpoint {v!r} is not a vertex")
        link = Link(src, dst, bandwidth, latency)
        if link.name in self._links:
            raise TopologyError(f"duplicate link {link.name}")
        self._links[link.name] = link
        return link

    def add_duplex(self, a: str, b: str,
                   bandwidth: Optional[float] = None,
                   latency: Optional[float] = None) -> tuple[Link, Link]:
        """Add both directions of a full-duplex link between ``a``, ``b``."""
        return (self.add_link(a, b, bandwidth, latency),
                self.add_link(b, a, bandwidth, latency))

    def set_next_hop(self, vertex: str, dst: int, link: Link) -> None:
        """Route traffic for host ``dst`` standing at ``vertex`` via ``link``."""
        if link.src != vertex:
            raise TopologyError(
                f"next hop at {vertex!r} must leave that vertex, got {link.name}")
        self._next_hop[(vertex, dst)] = link

    # -- introspection --------------------------------------------------
    def links(self) -> Iterator[Link]:
        """All links, in deterministic (name-sorted) order."""
        for name in sorted(self._links):
            yield self._links[name]

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (raises if absent)."""
        try:
            return self._links[f"{src}->{dst}"]
        except KeyError:
            raise TopologyError(f"no link {src}->{dst} in {self.name}") from None

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    def describe(self) -> str:
        """One-line human summary."""
        return (f"{self.name}: {self.num_hosts} hosts, "
                f"{len(self.switches)} switches, {self.num_links} links")

    # -- routing --------------------------------------------------------
    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """The static path from host ``src`` to host ``dst`` as links.

        Cached per pair. ``src == dst`` yields the empty path. Raises
        :class:`~repro.errors.TopologyError` on missing next hops, paths
        that revisit a vertex (routing loop), or paths that end anywhere
        but the destination host.
        """
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        for h in key:
            if not 0 <= h < self.num_hosts:
                raise TopologyError(
                    f"host {h} out of range for {self.name} "
                    f"({self.num_hosts} hosts)")
        goal = host_vertex(dst)
        vertex = host_vertex(src)
        path: list[Link] = []
        visited = {vertex}
        while vertex != goal:
            link = self._next_hop.get((vertex, dst))
            if link is None:
                raise TopologyError(
                    f"{self.name}: no next hop toward host {dst} "
                    f"at {vertex!r}")
            path.append(link)
            vertex = link.dst
            if vertex in visited:
                raise TopologyError(
                    f"{self.name}: routing loop toward host {dst} "
                    f"revisits {vertex!r}")
            visited.add(vertex)
        result = tuple(path)
        self._routes[key] = result
        return result

    def validate(self) -> None:
        """Check every host pair routes successfully (O(hosts²) walks)."""
        for src in range(self.num_hosts):
            for dst in range(self.num_hosts):
                self.route(src, dst)

    # -- binding --------------------------------------------------------
    def bind(self, sim: Simulator, params: FabricParams) -> None:
        """Attach FIFO queues to every link and price unset links.

        Links whose generator left ``bandwidth``/``latency`` as ``None``
        inherit ``params.bandwidth`` / ``params.latency`` — the fabric's
        parameters are interpreted *per hop* on a routed topology.
        Idempotent per topology object; a topology can only be bound to
        one simulator (reusing the object across worlds would alias
        queue state).
        """
        if self._bound:
            raise TopologyError(
                f"topology {self.name!r} is already bound to a simulator; "
                "build a fresh ClusterSpec/topology per World")
        for link in self.links():
            if link.bandwidth is None:
                link.bandwidth = params.bandwidth
            if link.latency is None:
                link.latency = params.latency
            link.server = FIFOServer(sim, name=f"link.{link.name}")
        self._bound = True
