"""Pluggable interconnect topologies: switches, links, static routing.

See docs/topology.md for the model. The public surface:

- :class:`~.spec.ClusterSpec` — declarative cluster description consumed
  by ``World(cluster=...)``;
- :func:`~.spec.register_topology` / :func:`~.spec.topology_names` — the
  registry protocol behind ``ClusterSpec(topology="...")``;
- generators :func:`~.generators.fat_tree`,
  :func:`~.generators.dragonfly`, :func:`~.generators.torus`;
- :class:`~.graph.Topology` / :class:`~.graph.Link` — the graph model;
- :class:`~.routed.RoutedFabric` — the hop-by-hop fabric.
"""

from .generators import dragonfly, fat_tree, torus
from .graph import Link, Topology, host_vertex
from .routed import RoutedFabric
from .spec import (
    ClusterSpec,
    TopologyBuilder,
    register_topology,
    topology_names,
)

__all__ = [
    "ClusterSpec",
    "Link",
    "RoutedFabric",
    "Topology",
    "TopologyBuilder",
    "dragonfly",
    "fat_tree",
    "host_vertex",
    "register_topology",
    "topology_names",
    "torus",
]
