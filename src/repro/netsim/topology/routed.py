"""A fabric that routes messages hop-by-hop through a topology graph.

:class:`RoutedFabric` keeps the legacy :class:`~repro.netsim.fabric.Fabric`
contract — ``transmit(msg, depart_time)`` after NIC egress, delivery via
the registered node handler — but replaces the single latency +
bandwidth charge with a walk of the topology's static route: every link
on the path serializes the message at the link's bandwidth behind
whatever traffic already occupies it (store-and-forward), then adds the
link's propagation latency. Congestion therefore *emerges*: incast
saturates a host's last link, bisection-limited traffic queues on core
links, and adaptive nothing — routes are static, so runs stay
deterministic.

Per-link queueing delays feed ``topo.link.queue_delay`` histograms and
the tracer gets one ``topo.link.hop`` instant per hop (both observer-only
— enabled instruments never shift simulated timings).
"""

from __future__ import annotations

from typing import Optional

from ...errors import TopologyError
from ...obs.metrics import MetricsRegistry
from ...sim.core import Simulator
from ...sim.trace import Tracer
from ..config import FabricParams
from ..fabric import LINK_HOP, DeliveryHandler, Fabric
from ..message import WireMessage
from .graph import Topology

__all__ = ["RoutedFabric"]


class RoutedFabric(Fabric):
    """A :class:`Fabric` whose messages traverse an explicit link graph.

    The node-level egress/ingress model (NIC aggregation at the hosts)
    is inherited unchanged; what changes is the path *between* the
    hosts: ``_schedule_arrival`` walks ``topology.route(src, dst)``
    instead of charging one flat latency. The fault-injector path is
    inherited too — dropped, duplicated, and delayed messages route
    through the same links.
    """

    def __init__(self, sim: Simulator, params: FabricParams,
                 topology: Topology,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        super().__init__(sim, params, metrics=metrics, tracer=tracer)
        self.topology = topology
        topology.bind(sim, params)
        self._max_hops_cache = 0
        self._h_links: dict[str, object] = {}
        if self.metrics is not None and self.metrics.enabled:
            for link in topology.links():
                self._h_links[link.name] = self.metrics.histogram(
                    "topo.link.queue_delay", link=link.name)

    def register_node(self, node_id: int, handler: DeliveryHandler) -> None:
        """Attach a node, checking it has a host port on the topology."""
        if not 0 <= node_id < self.topology.num_hosts:
            raise TopologyError(
                f"node {node_id} exceeds {self.topology.name} host "
                f"capacity {self.topology.num_hosts}")
        super().register_node(node_id, handler)

    def _schedule_arrival(self, msg: WireMessage, depart_time: float,
                          wire_time: float) -> None:
        """Walk the static route, charging each link, then host ingress."""
        tracer = self.tracer
        trace_on = tracer is not None and tracer.enabled
        t = depart_time
        for link in self.topology.route(msg.src_node, msg.dst_node):
            service = msg.wire_bytes / link.bandwidth
            t, queued = self._serialize(link.server, t, service)
            link.messages += 1
            link.bytes += msg.wire_bytes
            h = self._h_links.get(link.name)
            if h is not None:
                h.observe(queued)
            if trace_on:
                tracer.emit(LINK_HOP, {
                    "link": link.name, "bytes": msg.wire_bytes,
                    "queued": queued, "src_rank": msg.src_rank,
                    "dst_rank": msg.dst_rank,
                })
            t += link.latency
        arrival = t + wire_time
        if self.params.model_ingress:
            arrival, queued = self._serialize(self._ingress[msg.dst_node],
                                              t, wire_time)
            h = self._h_ingress.get(msg.dst_node)
            if h is not None:
                h.observe(queued)
        self._enqueue_arrival(msg, arrival)

    def latency_for(self, wire_bytes: int) -> float:
        """Unloaded latency bound: the topology's longest route.

        Used by the reliable transport to size retransmission timers; a
        per-hop walk of the worst-case path keeps timers from firing
        while a healthy multi-hop delivery is still in flight.
        """
        hops = self._max_hops()
        per_hop = self.params.latency + wire_bytes / self.params.bandwidth
        return hops * per_hop + wire_bytes / self.params.bandwidth

    def _max_hops(self) -> int:
        """Longest registered host-pair route length (cached)."""
        if self._max_hops_cache:
            return self._max_hops_cache
        hosts = sorted(self._handlers) or [0]
        longest = 1
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    longest = max(longest,
                                  len(self.topology.route(src, dst)))
        self._max_hops_cache = longest
        return longest
