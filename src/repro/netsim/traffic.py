"""Seeded background-traffic injectors: mice, elephants, bursts, clients.

The paper's experiments run one application on an otherwise idle fabric;
real MPI+threads deployments share NICs, VCIs and links with whatever
else the machine is doing. This module injects that "whatever else" as
*background flows* — streams of :data:`~repro.netsim.message.MessageKind.BACKGROUND`
wire messages issued through the same VCI locks, doorbells, hardware
contexts and fabric links as application traffic, so background load is
visible as real contention (lock wait, injector serialization, link
queueing) rather than as a synthetic latency fudge.

A :class:`TrafficShape` declares the load; :func:`install_traffic` turns
it into simulated sender tasks on a built :class:`~repro.runtime.world.World`.
All randomness (flow endpoints, inter-arrival gaps, heavy-tailed sizes)
comes from ``numpy`` generators seeded by ``(seed, flow_index)``, so the
same ``(shape, seed)`` pair replays the identical packet schedule —
byte-identical state digests — on every run.

Four flow kinds:

- ``mice`` — many small messages with exponential inter-arrival gaps at
  ``rate`` msgs/sec per flow: datacenter chatter.
- ``elephants`` — each flow sends its messages back to back, paced only
  by the NIC injector and the fabric: a bulk transfer.
- ``bursty`` — on/off source: ``burst_on`` seconds of mice-style load,
  then ``burst_off`` seconds of silence, repeating.
- ``requests`` — exponential arrivals with Pareto(``alpha``)-distributed
  sizes, the heavy-tailed mix of a many-client request stream.

Background messages carry no payload and never touch MPI matching: the
receiving library absorbs them in a counting sink handler. On a lossy
world they are sequenced and recovered by the reliable transport like any
other message — background retransmission storms are part of the chaos.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from ..errors import TrafficConfigError
from .message import MessageKind, WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.world import World

__all__ = ["TRAFFIC_KINDS", "TrafficShape", "TrafficSession",
           "install_traffic"]

#: The supported background-flow generators.
TRAFFIC_KINDS = ("mice", "elephants", "bursty", "requests")

#: Background context id (never collides with communicator contexts).
BACKGROUND_CONTEXT = -2


@dataclass(frozen=True)
class TrafficShape:
    """Declarative description of one world's background load.

    Validation is eager: a shape with out-of-range values raises
    :class:`~repro.errors.TrafficConfigError` at construction, so invalid
    scenarios die at spec time rather than mid-campaign.
    """

    #: Flow generator: one of :data:`TRAFFIC_KINDS`.
    kind: str = "mice"
    #: Concurrent background flows (client streams). 0 disables traffic.
    flows: int = 4
    #: Messages each flow sends over its lifetime.
    msgs_per_flow: int = 16
    #: Payload bytes per message (mean size for ``requests``).
    size: int = 256
    #: Target message rate per flow in msgs/sec (``mice``/``bursty``/
    #: ``requests``; ``elephants`` ignore it and send back to back).
    rate: float = 1e6
    #: Simulated time the background load switches on.
    start: float = 0.0
    #: ``bursty``: on-period seconds (messages flow at ``rate``).
    burst_on: float = 20e-6
    #: ``bursty``: off-period seconds (silence).
    burst_off: float = 80e-6
    #: ``requests``: Pareto tail exponent for message sizes (smaller =
    #: heavier tail).
    alpha: float = 1.5
    #: VCIs the flows spread across (flow ``i`` uses VCI ``i % vcis``) —
    #: ``vcis=1`` piles every flow onto VCI 0, maximizing lock contention
    #: with the application.
    vcis: int = 1

    def __post_init__(self):
        if self.kind not in TRAFFIC_KINDS:
            raise TrafficConfigError(
                f"unknown traffic kind {self.kind!r}; choose from "
                f"{TRAFFIC_KINDS}")
        if self.flows < 0:
            raise TrafficConfigError(
                f"flows must be non-negative, got {self.flows!r}")
        if self.msgs_per_flow < 1:
            raise TrafficConfigError(
                f"msgs_per_flow must be >= 1, got {self.msgs_per_flow!r}")
        if self.size < 1:
            raise TrafficConfigError(
                f"size must be >= 1 byte, got {self.size!r}")
        if not self.rate > 0.0:
            raise TrafficConfigError(
                f"rate must be positive, got {self.rate!r}")
        if not self.start >= 0.0:
            raise TrafficConfigError(
                f"start must be non-negative, got {self.start!r}")
        if not (self.burst_on > 0.0 and self.burst_off >= 0.0):
            raise TrafficConfigError(
                f"burst periods must be positive (on) / non-negative "
                f"(off), got on={self.burst_on!r}, off={self.burst_off!r}")
        if not self.alpha > 0.0:
            raise TrafficConfigError(
                f"alpha must be positive, got {self.alpha!r}")
        if self.vcis < 1:
            raise TrafficConfigError(
                f"vcis must be >= 1, got {self.vcis!r}")

    def describe(self) -> str:
        """One-line human summary of the shape."""
        return (f"{self.kind} x{self.flows} flows, "
                f"{self.msgs_per_flow} msgs/flow, {self.size}B, "
                f"rate={self.rate:g}/s")

    def with_(self, **kwargs: Any) -> "TrafficShape":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """Serializable form; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TrafficShape":
        """Rebuild a shape from its ``to_dict()`` form."""
        known = {f for f in TrafficShape.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise TrafficConfigError(
                f"unknown traffic shape keys: {sorted(unknown)}")
        return TrafficShape(**data)


class TrafficSession:
    """Live state of one world's installed background traffic.

    Holds the per-world counters (captured into snapshot state trees, so
    traffic progress participates in byte-identity checks) and the flow
    table chosen by the seeded planner.
    """

    def __init__(self, world: "World", shape: TrafficShape, seed: int):
        self.world = world
        self.shape = shape
        self.seed = int(seed)
        #: ``(src_rank, dst_rank, vci)`` per flow, fixed at install time.
        self.flow_table: list[tuple[int, int, int]] = []
        self.sent = 0
        self.delivered = 0
        self.bytes_sent = 0

    def on_background(self, msg: WireMessage) -> None:
        """Library sink handler: count and absorb one background arrival."""
        self.delivered += 1

    def summary(self) -> dict[str, int]:
        """Counters for reports and state capture."""
        return {"flows": len(self.flow_table), "sent": self.sent,
                "delivered": self.delivered, "bytes_sent": self.bytes_sent}


def _flow_task(session: TrafficSession, index: int,
               src: int, dst: int, vci_index: int
               ) -> Generator[Any, Any, int]:
    """One background flow: a simulated sender thread on rank ``src``.

    Issues every message through the thread-side VCI path (lock,
    doorbell, hardware context) so the flow contends like an application
    thread; gaps between messages follow the shape's arrival process.
    """
    world = session.world
    shape = session.shape
    sim = world.sim
    lib = world.procs[src].lib
    dst_node = world.procs[dst].node.node_id
    vci = lib.vci_pool.get(vci_index)
    rng = np.random.default_rng((session.seed, index))
    if shape.start > 0.0:
        yield sim.timeout(shape.start)
    # Desynchronize flow starts so "many clients" do not fire in phase.
    yield sim.timeout(float(rng.random()) / shape.rate)
    burst_left = shape.burst_on
    for n in range(shape.msgs_per_flow):
        size = shape.size
        if shape.kind == "requests":
            # Pareto(alpha) scaled so the mean stays near `size`.
            draw = float(rng.pareto(shape.alpha)) + 1.0
            size = max(1, int(shape.size * draw / 2.0))
        msg = WireMessage(
            kind=MessageKind.BACKGROUND,
            src_node=lib.node.node_id, dst_node=dst_node,
            src_rank=src, dst_rank=dst,
            context_id=BACKGROUND_CONTEXT, tag=index, size=size,
            payload=None, src_vci=vci_index, dst_vci=vci_index)
        yield from lib.issue_from_thread(vci, msg)
        session.sent += 1
        session.bytes_sent += size
        if n + 1 == shape.msgs_per_flow:
            break
        if shape.kind == "elephants":
            continue  # back to back: the NIC injector is the pacer
        gap = float(rng.exponential(1.0 / shape.rate))
        if shape.kind == "bursty":
            burst_left -= gap
            if burst_left <= 0.0:
                gap += shape.burst_off
                burst_left = shape.burst_on
        if gap > 0.0:
            yield sim.timeout(gap)
    return shape.msgs_per_flow


def install_traffic(world: "World", shape: Optional[TrafficShape],
                    seed: int = 0) -> list[Any]:
    """Install ``shape``'s background flows on a built world.

    Registers the BACKGROUND sink handler on every rank, plans the flow
    table from ``seed`` (endpoints are always inter-node), spawns one
    sender task per flow and returns the task list — callers include the
    tasks in their ``run_all`` gather so flows (and any retransmission
    recovery they trigger on a lossy fabric) play out fully.

    Returns ``[]`` for ``shape=None``, zero flows, or a single-process
    world (background traffic models *network* load).
    """
    if shape is None or shape.flows == 0 or world.num_procs < 2:
        return []
    session = TrafficSession(world, shape, seed)
    world.traffic = session
    for proc in world.procs:
        proc.lib.handlers[MessageKind.BACKGROUND] = session.on_background
    rng = np.random.default_rng((session.seed, 0x7AFF1C))
    tasks = []
    for index in range(shape.flows):
        src = int(rng.integers(world.num_procs))
        dst = int(rng.integers(world.num_procs - 1))
        if dst >= src:
            dst += 1
        vci_index = index % shape.vcis
        session.flow_table.append((src, dst, vci_index))
        task = world.procs[src].spawn(
            _flow_task(session, index, src, dst, vci_index),
            name=f"bg.flow{index}.r{src}->r{dst}")
        tasks.append(task)
    return tasks
