"""Application adapters: the bridge from a ScenarioSpec to a driver run.

Each of the seven paper application proxies (plus one deliberately racy
demo program) is wrapped in an :class:`AppAdapter` that knows how to turn
the generic scenario fields (``nodes``, ``threads``, ``app_params``) into
the app's own config dataclass and invoke its driver with the shared
chaos keyword block. Adapters validate eagerly — building the config (and
letting its ``__post_init__`` complain) without running anything — so the
campaign sampler can reject impossible combinations before simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..errors import MpiUsageError, ScenarioError

if TYPE_CHECKING:  # pragma: no cover
    from .spec import ScenarioSpec

__all__ = ["AppAdapter", "APP_REGISTRY", "get_app", "app_names"]


@dataclass(frozen=True)
class AppAdapter:
    """One runnable application in the scenario space."""

    #: Registry name (the spec's ``app`` field).
    name: str
    #: Mechanisms the app supports (spec ``mechanism`` must be one).
    mechanisms: tuple[str, ...]
    #: ``runner(spec) -> result`` — builds the config and runs the driver.
    runner: Callable[["ScenarioSpec"], Any]
    #: ``builder(spec) -> config`` — builds (validates) without running.
    builder: Callable[["ScenarioSpec"], Any]
    #: Whether the default sampler may draw this app (the racy demo app is
    #: opt-in only: it exists to exercise the finding/shrinking path).
    samplable: bool = True

    def validate(self, spec: "ScenarioSpec") -> None:
        """Raise :class:`ScenarioError` if the spec cannot run."""
        try:
            self.builder(spec)
        except MpiUsageError as exc:
            raise ScenarioError(
                f"invalid {self.name} scenario: {exc}") from exc
        except TypeError as exc:
            raise ScenarioError(
                f"invalid {self.name} app_params: {exc}") from exc

    def run(self, spec: "ScenarioSpec") -> Any:
        """Execute the scenario; returns the driver's result object."""
        return self.runner(spec)


def _chaos_kwargs(spec: "ScenarioSpec") -> dict[str, Any]:
    """The shared chaos keyword block every driver accepts."""
    return {
        "faults": spec.faults,
        "transport": spec.transport,
        "traffic": spec.traffic,
        "traffic_seed": spec.traffic_seed,
        "topology": spec.topology,
        "topology_params": dict(spec.topology_params) or None,
    }


# -- stencil ---------------------------------------------------------------

def _build_stencil(spec: "ScenarioSpec"):
    from ..apps.stencil import StencilConfig
    params = dict(spec.app_params)
    points = params.get("stencil_points", 5)
    dim = 2 if points in (5, 9) else 3
    pad = (1,) * (dim - 1)
    params.setdefault("proc_grid", (spec.nodes,) + pad)
    params.setdefault("thread_grid", (spec.threads,) + pad)
    params.setdefault("pnx", 6)
    params.setdefault("pny", 6)
    params.setdefault("iters", 2)
    return StencilConfig(mechanism=spec.mechanism, seed=spec.seed, **params)


def _run_stencil(spec: "ScenarioSpec"):
    from ..apps.stencil import run_stencil
    return run_stencil(_build_stencil(spec), **_chaos_kwargs(spec))


# -- legion event runtime --------------------------------------------------

def _build_legion(spec: "ScenarioSpec"):
    from ..apps.legion import LegionConfig
    params = dict(spec.app_params)
    params.setdefault("msgs_per_thread", 4)
    return LegionConfig(num_nodes=spec.nodes, task_threads=spec.threads,
                        mechanism=spec.mechanism, **params)


def _run_legion(spec: "ScenarioSpec"):
    from ..apps.legion import run_legion
    return run_legion(_build_legion(spec), seed=spec.seed,
                      **_chaos_kwargs(spec))


# -- legion circuit proxy --------------------------------------------------

def _build_circuit(spec: "ScenarioSpec"):
    from ..apps.legion import CircuitConfig
    params = dict(spec.app_params)
    params.setdefault("wires_per_thread", 2)
    params.setdefault("timesteps", 3)
    return CircuitConfig(num_nodes=spec.nodes, task_threads=spec.threads,
                         mechanism=spec.mechanism, **params)


def _run_circuit(spec: "ScenarioSpec"):
    from ..apps.legion import run_circuit
    return run_circuit(_build_circuit(spec), seed=spec.seed,
                       **_chaos_kwargs(spec))


# -- graph community detection ---------------------------------------------

def _build_graph(spec: "ScenarioSpec"):
    from ..apps.graph import GraphConfig
    params = dict(spec.app_params)
    params.setdefault("graph_vertices", 48)
    params.setdefault("iters", 2)
    return GraphConfig(num_nodes=spec.nodes, threads_per_proc=spec.threads,
                       mechanism=spec.mechanism, seed=spec.seed, **params)


def _run_graph(spec: "ScenarioSpec"):
    from ..apps.graph import run_graph
    return run_graph(_build_graph(spec), **_chaos_kwargs(spec))


# -- nwchem block-sparse RMA -----------------------------------------------

def _build_nwchem(spec: "ScenarioSpec"):
    from ..apps.nwchem import NwchemConfig
    params = dict(spec.app_params)
    params.setdefault("tiles_per_proc", 4)
    params.setdefault("tile_dim", 4)
    params.setdefault("tasks_per_thread", 2)
    return NwchemConfig(num_nodes=spec.nodes, threads_per_proc=spec.threads,
                        mechanism=spec.mechanism, seed=spec.seed, **params)


def _run_nwchem(spec: "ScenarioSpec"):
    from ..apps.nwchem import run_nwchem
    return run_nwchem(_build_nwchem(spec), **_chaos_kwargs(spec))


# -- vasp threaded allreduce -----------------------------------------------

def _build_vasp(spec: "ScenarioSpec"):
    from ..apps.vasp import VaspConfig
    params = dict(spec.app_params)
    params.setdefault("elems", 16 * spec.threads)
    params.setdefault("repeats", 1)
    return VaspConfig(num_nodes=spec.nodes, threads_per_proc=spec.threads,
                      mechanism=spec.mechanism, seed=spec.seed, **params)


def _run_vasp(spec: "ScenarioSpec"):
    from ..apps.vasp import run_vasp
    return run_vasp(_build_vasp(spec), **_chaos_kwargs(spec))


# -- device offload --------------------------------------------------------

def _build_device(spec: "ScenarioSpec"):
    from ..apps.device import DeviceConfig
    if spec.nodes != 2:
        raise MpiUsageError("the device proxy models a 2-node exchange")
    params = dict(spec.app_params)
    params.setdefault("count", 16)
    params.setdefault("timesteps", 3)
    return DeviceConfig(num_nodes=2, blocks=spec.threads,
                        mechanism=spec.mechanism, **params)


def _run_device(spec: "ScenarioSpec"):
    from ..apps.device import run_device
    return run_device(_build_device(spec), seed=spec.seed,
                      **_chaos_kwargs(spec))


# -- racer: a deliberately broken program ----------------------------------

def _build_racer(spec: "ScenarioSpec"):
    if spec.nodes < 2:
        raise MpiUsageError("racer needs 2 nodes")
    if spec.app_params:
        raise MpiUsageError("racer takes no app_params")
    return None


def _run_racer(spec: "ScenarioSpec"):
    """A two-rank program with a textbook MPI+threads defect.

    Two spawned threads poke ``req.test()`` on the *same* Isend request
    without synchronization — the shared-request race of CHK101. The data
    still arrives (the race is on completion polling, not the payload),
    so this app always *finishes*; only the analyzer flags it. It exists
    to give campaigns a guaranteed finding to shrink, and is excluded
    from the default sampler (``samplable=False``).
    """
    from ..apps.chaos import chaos_cluster, install_traffic
    from ..runtime.world import World
    world = World(cluster=chaos_cluster(spec.nodes, max(2, spec.threads),
                                        None, spec.topology,
                                        dict(spec.topology_params) or None),
                  seed=spec.seed, faults=spec.faults,
                  transport=spec.transport)
    got = np.zeros(4)

    def rank0(proc):
        req = yield from proc.comm_world.Isend(np.arange(4.0), dest=1, tag=0)

        def poker():
            req.test()
            yield proc.sim.timeout(0)

        t1 = proc.spawn(poker(), name="poker1")
        t2 = proc.spawn(poker(), name="poker2")
        yield proc.sim.all_of([t1, t2])
        yield from req.wait()
        return proc.sim.now

    def rank1(proc):
        yield from proc.comm_world.Recv(got, source=0, tag=0)
        return proc.sim.now

    def idle(proc):
        yield proc.sim.timeout(0)
        return proc.sim.now

    tasks = [world.procs[0].spawn(rank0(world.procs[0])),
             world.procs[1].spawn(rank1(world.procs[1]))]
    tasks += [world.procs[r].spawn(idle(world.procs[r]))
              for r in range(2, world.num_procs)]
    bg = install_traffic(world, spec.traffic, spec.traffic_seed)
    ends = world.run_all(tasks + bg, max_steps=None)[:len(tasks)]
    return SimpleNamespace(correct=bool((got == np.arange(4.0)).all()),
                           wall_time=max(ends))


APP_REGISTRY: dict[str, AppAdapter] = {a.name: a for a in (
    AppAdapter("stencil",
               ("original", "tags", "communicators", "endpoints",
                "partitioned"),
               _run_stencil, _build_stencil),
    AppAdapter("legion", ("original", "communicators", "endpoints"),
               _run_legion, _build_legion),
    AppAdapter("circuit", ("original", "communicators", "endpoints"),
               _run_circuit, _build_circuit),
    AppAdapter("graph", ("original", "tags", "communicators", "endpoints"),
               _run_graph, _build_graph),
    AppAdapter("nwchem", ("window", "window-relaxed", "endpoints"),
               _run_nwchem, _build_nwchem),
    AppAdapter("vasp", ("funneled", "existing", "endpoints", "partitioned"),
               _run_vasp, _build_vasp),
    AppAdapter("device",
               ("host-driven", "device-partitioned", "device-mpi"),
               _run_device, _build_device),
    AppAdapter("racer", ("default",), _run_racer, _build_racer,
               samplable=False),
)}


def get_app(name: str) -> AppAdapter:
    """Look up an adapter; raises :class:`ScenarioError` if unknown."""
    try:
        return APP_REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown app {name!r}; choose from "
            f"{sorted(APP_REGISTRY)}") from None


def app_names(samplable_only: bool = False) -> list[str]:
    """Registered app names, optionally only the sampler-eligible ones."""
    return sorted(name for name, a in APP_REGISTRY.items()
                  if a.samplable or not samplable_only)
