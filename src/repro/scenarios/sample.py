"""Weighted scenario sampler: thousands of valid specs from one seed.

``sample_scenarios(seed, n)`` draws from the cross-product of application
x mechanism x cluster shape x topology x fault plan x transport tuning x
background traffic, with weights biased toward the paper's interesting
regions (lossy fabrics with tight retry budgets, routed topologies under
background load) while keeping every scenario small enough that a
single-core host can run hundreds per minute. Sampling is pure: the same
``(seed, n, apps)`` always yields the same spec list, which is what makes
campaigns resumable and replayable.

Draws that land on an invalid combination (the spaces overlap only
partially — e.g. ``vasp`` needs ``elems`` divisible by the thread count)
are discarded and redrawn; :class:`ScenarioSpec`'s eager validation is
the single source of truth for validity.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ScenarioError
from ..faults.plan import FaultPlan
from ..faults.transport import TransportParams
from ..netsim.traffic import TRAFFIC_KINDS, TrafficShape
from .apps import APP_REGISTRY, app_names
from .spec import ScenarioSpec

__all__ = ["sample_scenarios", "sample_one"]

#: Sampler revision: bump when the draw sequence changes so campaign
#: checkpoints from older samplers are never silently mixed in.
SAMPLER_VERSION = 1

_APP_WEIGHTS = {
    "stencil": 0.22, "legion": 0.13, "circuit": 0.13, "graph": 0.13,
    "nwchem": 0.13, "vasp": 0.13, "device": 0.13,
}


def _choice(rng: np.random.Generator, options: Sequence, weights=None):
    """Weighted choice returning a plain Python object."""
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
    idx = rng.choice(len(options), p=weights)
    return options[int(idx)]


def _draw_dims(rng: np.random.Generator, app: str) -> tuple[int, int]:
    """(nodes, threads) sized for a 1-core host."""
    if app == "device":
        nodes = 2
    else:
        nodes = int(_choice(rng, [2, 3, 4], [0.5, 0.3, 0.2]))
    threads = int(_choice(rng, [1, 2, 4], [0.2, 0.5, 0.3]))
    if app == "racer":
        threads = max(2, threads)
    return nodes, threads


def _draw_topology(rng: np.random.Generator,
                   nodes: int) -> tuple[str, dict]:
    """Topology + params with capacity for ``nodes`` ranks."""
    name = _choice(rng, ["direct", "fat_tree", "dragonfly", "torus"],
                   [0.55, 0.15, 0.15, 0.15])
    if name == "fat_tree":
        return name, {"k": 4}                 # capacity 16 hosts
    if name == "dragonfly":
        return name, {}                       # defaults: 72 hosts
    if name == "torus":
        dims = (2, 2) if nodes <= 4 else (4, 4)
        return name, {"dims": dims}
    return "direct", {}


def _draw_faults(rng: np.random.Generator) -> Optional[FaultPlan]:
    """None ~35% of the time; otherwise a small lossy plan."""
    if rng.random() < 0.35:
        return None
    kw: dict = {}
    rates = {"drop": 0.35, "dup": 0.2, "corrupt": 0.2, "delay": 0.25}
    for kind, prob in rates.items():
        if rng.random() < prob:
            kw[kind] = float(_choice(rng, [0.02, 0.05, 0.1, 0.2],
                                     [0.35, 0.35, 0.2, 0.1]))
    if "delay" in kw:
        kw["delay_max"] = float(_choice(rng, [5e-6, 20e-6], [0.7, 0.3]))
    if not kw:  # ensure the plan actually does something
        kw["drop"] = 0.05
    return FaultPlan(**kw)


def _draw_transport(rng: np.random.Generator,
                    faults: Optional[FaultPlan]) -> Optional[TransportParams]:
    """Occasionally tighten the retry budget on lossy fabrics."""
    if faults is None or rng.random() < 0.7:
        return None
    return TransportParams(
        rto=float(_choice(rng, [12e-6, 30e-6], [0.7, 0.3])),
        max_retries=int(_choice(rng, [3, 6, 16], [0.3, 0.3, 0.4])))


def _draw_traffic(rng: np.random.Generator) -> Optional[TrafficShape]:
    """None ~40% of the time; otherwise a small background load."""
    if rng.random() < 0.4:
        return None
    return TrafficShape(
        kind=_choice(rng, list(TRAFFIC_KINDS)),
        flows=int(_choice(rng, [1, 2, 4], [0.3, 0.4, 0.3])),
        msgs_per_flow=int(_choice(rng, [4, 8, 16], [0.4, 0.4, 0.2])),
        size=int(_choice(rng, [64, 256, 1024], [0.4, 0.4, 0.2])),
        vcis=int(_choice(rng, [1, 2], [0.7, 0.3])))


def _draw_app_params(rng: np.random.Generator, app: str,
                     threads: int) -> dict:
    """Small app-specific knobs (all values plain Python scalars)."""
    if app == "stencil":
        return {"pnx": int(_choice(rng, [4, 6, 8])),
                "pny": int(_choice(rng, [4, 6, 8])),
                "iters": int(_choice(rng, [1, 2, 3])),
                "stencil_points": 5}
    if app == "legion":
        return {"msgs_per_thread": int(_choice(rng, [2, 4, 6])),
                "payload": 8}
    if app == "circuit":
        return {"wires_per_thread": int(_choice(rng, [2, 4])),
                "timesteps": int(_choice(rng, [2, 3, 4]))}
    if app == "graph":
        return {"graph_vertices": int(_choice(rng, [24, 48, 64])),
                "iters": int(_choice(rng, [1, 2, 3])),
                "churn": float(_choice(rng, [0.0, 0.3, 0.5]))}
    if app == "nwchem":
        return {"tiles_per_proc": 4, "tile_dim": 4,
                "tasks_per_thread": int(_choice(rng, [1, 2, 3]))}
    if app == "vasp":
        return {"elems": threads * int(_choice(rng, [8, 16, 32])),
                "repeats": int(_choice(rng, [1, 2]))}
    if app == "device":
        return {"count": 16,
                "timesteps": int(_choice(rng, [2, 3, 4]))}
    return {}


def sample_one(rng: np.random.Generator,
               apps: Sequence[str]) -> ScenarioSpec:
    """One draw from the scenario space (may raise ScenarioError)."""
    weights = [_APP_WEIGHTS.get(a, 0.1) for a in apps]
    app = _choice(rng, list(apps), weights)
    mechanism = _choice(rng, list(APP_REGISTRY[app].mechanisms))
    nodes, threads = _draw_dims(rng, app)
    topology, topo_params = _draw_topology(rng, nodes)
    faults = _draw_faults(rng)
    return ScenarioSpec(
        app=app, mechanism=mechanism,
        seed=int(rng.integers(1 << 30)),
        nodes=nodes, threads=threads,
        topology=topology, topology_params=topo_params,
        app_params=_draw_app_params(rng, app, threads),
        faults=faults,
        transport=_draw_transport(rng, faults),
        traffic=_draw_traffic(rng),
        traffic_seed=int(rng.integers(1 << 20)))


def sample_scenarios(seed: int, n: int,
                     apps: Optional[Sequence[str]] = None
                     ) -> list[ScenarioSpec]:
    """``n`` valid scenarios, fully determined by ``(seed, n, apps)``.

    ``apps`` restricts the draw to a subset of registered (samplable)
    app names; invalid names raise :class:`ScenarioError` immediately.
    """
    if n < 0:
        raise ScenarioError(f"n must be >= 0, got {n}")
    if apps is None:
        apps = app_names(samplable_only=True)
    else:
        apps = list(apps)
        unknown = [a for a in apps if a not in APP_REGISTRY]
        if unknown:
            raise ScenarioError(f"unknown apps: {unknown}")
        if not apps:
            raise ScenarioError("apps must not be empty")
    rng = np.random.default_rng(seed)
    specs: list[ScenarioSpec] = []
    rejected = 0
    while len(specs) < n:
        try:
            spec = sample_one(rng, apps)
        except ScenarioError:
            rejected += 1
            if rejected > 100 * max(1, n):
                raise ScenarioError(
                    "sampler rejection rate absurd — the draw space is "
                    "broken (did an adapter's validation change?)")
            continue
        specs.append(spec.with_(name=f"c{seed}-{len(specs):04d}"))
    return specs
