"""Scenario DSL and chaos-fuzzing campaigns.

The robustness counterpart of the benchmark sweeps: a declarative
:class:`ScenarioSpec` composes application x mechanism x topology x
fault plan x transport tuning x background traffic into one YAML-round-
trippable document; :func:`sample_scenarios` draws thousands of valid
specs from a weighted space; :func:`run_campaign` executes them under
the dynamic analyzer with crash-safe checkpoints; and every failure is
delta-debugged down to a minimal, byte-exactly-replayable YAML artifact
(:func:`shrink_scenario` / :func:`verify_artifact`).

See ``docs/scenarios.md`` for the workflow and the CLI
(``python -m repro campaign run|resume|report|replay``).
"""

from .apps import APP_REGISTRY, AppAdapter, app_names, get_app
from .campaign import (
    campaign_report,
    load_manifest,
    render_report,
    run_campaign,
    summarize_outcomes,
)
from .executor import (
    STATUSES,
    outcome_signature,
    run_scenario,
    run_scenario_dict,
    run_scenarios,
)
from .sample import sample_one, sample_scenarios
from .shrink import (
    ShrinkResult,
    load_artifact,
    shrink_scenario,
    verify_artifact,
    write_artifact,
)
from .spec import ScenarioSpec

__all__ = [
    "APP_REGISTRY", "AppAdapter", "app_names", "get_app",
    "ScenarioSpec", "sample_one", "sample_scenarios",
    "STATUSES", "outcome_signature", "run_scenario", "run_scenario_dict",
    "run_scenarios",
    "ShrinkResult", "shrink_scenario", "write_artifact", "load_artifact",
    "verify_artifact",
    "run_campaign", "campaign_report", "render_report", "load_manifest",
    "summarize_outcomes",
]
