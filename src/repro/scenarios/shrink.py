"""Delta-debugging shrinker: a failing scenario down to a minimal repro.

Given a scenario whose outcome has a failure signature (``status`` +
``rule``), :func:`shrink_scenario` greedily tries simplifications —
dropping background traffic, zeroing fault rates, collapsing the topology
to the direct fabric, halving sizes, removing nodes and threads — and
accepts a candidate iff its outcome signature is *unchanged*. Because
every run is deterministic, one re-execution per candidate is a sound
oracle; the state digest of the final minimal run is recorded in the
artifact so replays can be verified byte-identically.

The artifact (:func:`write_artifact`) is a self-contained YAML document:
the minimal spec, the expected fingerprint, and the replay command.
:func:`verify_artifact` re-runs it twice and demands byte-identical
outcomes that match the fingerprint.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

import yaml

from ..errors import MpiError, ScenarioError
from .executor import outcome_signature, run_scenario
from .spec import ScenarioSpec

__all__ = ["shrink_scenario", "write_artifact", "load_artifact",
           "verify_artifact", "ShrinkResult"]

ARTIFACT_VERSION = 1

#: Floors below which numeric app params are never shrunk (the smallest
#: configuration each driver accepts and still exercises communication).
_PARAM_FLOORS = {
    "pnx": 4, "pny": 4, "pnz": 2, "iters": 1, "msgs_per_thread": 1,
    "payload": 1, "wires_per_thread": 1, "timesteps": 1,
    "graph_vertices": 16, "graph_degree": 2, "tiles_per_proc": 2,
    "tile_dim": 2, "tasks_per_thread": 1, "elems": 1, "repeats": 1,
    "count": 4, "blocks": 1, "window": 1,
}


class ShrinkResult:
    """Outcome of one shrink campaign."""

    def __init__(self, original: ScenarioSpec, minimal: ScenarioSpec,
                 outcome: dict[str, Any], evals: int, steps: list[str]):
        #: The failing spec the shrink started from.
        self.original = original
        #: The smallest spec still failing with the same signature.
        self.minimal = minimal
        #: The minimal spec's (re-run) outcome.
        self.outcome = outcome
        #: Scenario executions spent shrinking.
        self.evals = evals
        #: Accepted simplification labels, in order.
        self.steps = steps

    @property
    def signature(self) -> tuple[str, Optional[str]]:
        return outcome_signature(self.outcome)


def _half_toward(value: int, floor: int) -> int:
    """One halving step toward (never past) the floor."""
    return max(floor, value // 2)


def _candidates(spec: ScenarioSpec) -> Iterator[tuple[str, ScenarioSpec]]:
    """Ordered simplification attempts: biggest cuts first.

    Yields ``(label, candidate)`` pairs; candidates that fail eager
    validation are skipped by the caller. Order matters: removing whole
    subsystems (traffic, topology, faults) prunes the space far faster
    than nibbling at sizes.
    """
    if spec.traffic is not None:
        yield "drop-traffic", spec.with_(traffic=None, traffic_seed=0)
        t = spec.traffic
        if t.flows > 1:
            yield "halve-flows", spec.with_(
                traffic=t.with_(flows=_half_toward(t.flows, 1)))
        if t.msgs_per_flow > 1:
            yield "halve-bg-msgs", spec.with_(
                traffic=t.with_(
                    msgs_per_flow=_half_toward(t.msgs_per_flow, 1)))
    if spec.topology != "direct":
        yield "direct-topology", spec.with_(topology="direct",
                                            topology_params={})
    if spec.faults is not None:
        f = spec.faults
        if f.stalls:
            yield "drop-stalls", spec.with_(faults=f.with_(stalls=()))
        if f.links:
            yield "drop-links", spec.with_(faults=f.with_(links=()))
        for rate in ("dup", "corrupt", "delay", "drop"):
            value = getattr(f, rate)
            if value > 0:
                zeroed = f.with_(**{rate: 0.0})
                if not zeroed.lossless:
                    yield f"zero-{rate}", spec.with_(faults=zeroed)
                else:
                    # the last nonzero rate: try removing faults entirely
                    yield "drop-faults", spec.with_(faults=None,
                                                    transport=None)
    for key in sorted(spec.app_params):
        value = spec.app_params[key]
        floor = _PARAM_FLOORS.get(key)
        if floor is not None and isinstance(value, int) and value > floor:
            params = dict(spec.app_params)
            params[key] = _half_toward(value, floor)
            yield f"halve-{key}", spec.with_(app_params=params)
    if spec.nodes > 2:
        yield "halve-nodes", spec.with_(nodes=_half_toward(spec.nodes, 2))
    if spec.threads > 1:
        yield "halve-threads", spec.with_(
            threads=_half_toward(spec.threads, 1))


def shrink_scenario(spec: ScenarioSpec,
                    outcome: Optional[dict[str, Any]] = None,
                    max_evals: int = 150,
                    runner: Callable[[ScenarioSpec], dict[str, Any]]
                    = run_scenario) -> ShrinkResult:
    """Greedy ddmin over :func:`_candidates`, signature-preserving.

    ``outcome`` is the spec's known outcome (re-run if omitted); it must
    have a failing signature. ``runner`` is injectable for tests. Each
    accepted simplification restarts the candidate scan, so cheap big
    cuts are retried after every success; the loop ends when a full scan
    yields no acceptable candidate or the eval budget runs out.
    """
    if outcome is None:
        outcome = runner(spec)
    signature = outcome_signature(outcome)
    if signature[0] == "ok":
        raise ScenarioError("nothing to shrink: the scenario passes")
    best, best_outcome = spec, outcome
    evals = 0
    steps: list[str] = []
    improved = True
    while improved and evals < max_evals:
        improved = False
        for label, candidate in _candidates(best):
            if evals >= max_evals:
                break
            try:
                candidate_outcome = runner(candidate)
            except MpiError:
                continue  # invalid or broken candidate: not a shrink
            evals += 1
            if outcome_signature(candidate_outcome) == signature:
                best, best_outcome = candidate, candidate_outcome
                steps.append(label)
                improved = True
                break
    if best is spec:
        # Re-run the original so the artifact's outcome (digest included)
        # is a fresh execution, not whatever dict the caller passed in.
        best_outcome = runner(spec)
        evals += 1
    return ShrinkResult(original=spec, minimal=best, outcome=best_outcome,
                        evals=evals, steps=steps)


# -- artifacts -------------------------------------------------------------

def write_artifact(path: str, result: ShrinkResult) -> None:
    """Write a self-contained minimal-repro YAML document."""
    doc = {
        "repro_artifact": ARTIFACT_VERSION,
        "signature": {"status": result.outcome["status"],
                      "rule": result.outcome["rule"]},
        "fingerprint": {"digest": result.outcome["digest"],
                        "detail": result.outcome["detail"],
                        "checks": result.outcome["checks"]},
        "scenario": result.minimal.to_dict(),
        "shrink": {"evals": result.evals, "steps": result.steps,
                   "original": result.original.to_dict()},
        "replay": f"python -m repro campaign replay {path}",
    }
    with open(path, "w", encoding="utf-8") as fh:
        yaml.safe_dump(doc, fh, sort_keys=True, default_flow_style=False)


def load_artifact(path: str) -> dict[str, Any]:
    """Parse and structurally validate an artifact document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = yaml.safe_load(fh)
    except OSError as exc:
        raise ScenarioError(f"cannot read artifact {path!r}: {exc}") from exc
    except yaml.YAMLError as exc:
        raise ScenarioError(f"unparseable artifact {path!r}: {exc}") from exc
    if not isinstance(doc, dict) or "scenario" not in doc:
        raise ScenarioError(f"{path!r} is not a repro artifact")
    if doc.get("repro_artifact") != ARTIFACT_VERSION:
        raise ScenarioError(
            f"artifact version {doc.get('repro_artifact')!r} unsupported "
            f"(expected {ARTIFACT_VERSION})")
    return doc


def verify_artifact(path: str,
                    runner: Callable[[ScenarioSpec], dict[str, Any]]
                    = run_scenario) -> dict[str, Any]:
    """Replay an artifact twice; both runs must match it byte for byte.

    Returns ``{"ok": bool, "outcome": <first replay>, "problems": [...]}``.
    ``ok`` requires (1) the two replays to be byte-identical dicts and
    (2) signature + state digest to equal the artifact's fingerprint.
    """
    doc = load_artifact(path)
    spec = ScenarioSpec.from_dict(doc["scenario"])
    first = runner(spec)
    second = runner(spec)
    problems: list[str] = []
    if first != second:
        problems.append("replay is not deterministic: two runs differ")
    want_sig = (doc["signature"]["status"], doc["signature"]["rule"])
    if outcome_signature(first) != want_sig:
        problems.append(
            f"signature changed: artifact {want_sig}, "
            f"replay {outcome_signature(first)}")
    want_digest = doc["fingerprint"].get("digest")
    if want_digest is not None and first["digest"] != want_digest:
        problems.append(
            f"state digest changed: artifact {want_digest[:16]}..., "
            f"replay {str(first['digest'])[:16]}...")
    return {"ok": not problems, "outcome": first, "problems": problems}
