"""Campaign runner: sampled chaos sweeps with resume, report and replay.

A *campaign* is ``n`` sampled scenarios executed under the analyzer and
fault injector, with every completed scenario checkpointed atomically the
moment it finishes (via :func:`repro.bench.parallel.run_points`). Kill
the process at any time — ``resume`` re-samples the identical scenario
list from the manifest and runs only the missing points, producing
byte-identical results to an uninterrupted run.

Every failing scenario is handed to the delta-debugging shrinker; the
minimal repro is written as a self-contained YAML artifact and then
*verified* (two replays, byte-identical, fingerprint match) before the
campaign will vouch for it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Optional, Sequence

from ..bench.parallel import run_points
from ..errors import ScenarioError
from .executor import run_scenario
from .sample import SAMPLER_VERSION, sample_scenarios
from .shrink import shrink_scenario, verify_artifact, write_artifact
from .spec import ScenarioSpec

__all__ = ["run_campaign", "campaign_report", "render_report",
           "load_manifest", "summarize_outcomes"]

_MANIFEST = "campaign.json"

#: Test hook: crash the process (``os._exit(9)``) after this many
#: scenarios have executed in-process — simulates kill -9 mid-campaign
#: for the resume tests. Counted per process, serial path only.
_CRASH_ENV = "REPRO_CAMPAIGN_CRASH_AFTER"
_executed_in_process = 0


def _scenario_point(spec: dict) -> dict[str, Any]:
    """Module-level point function (pool workers import it by name)."""
    global _executed_in_process
    limit = os.environ.get(_CRASH_ENV)
    if limit is not None and _executed_in_process >= int(limit):
        os._exit(9)
    outcome = run_scenario(ScenarioSpec.from_dict(spec))
    _executed_in_process += 1
    return outcome


def _atomic_write_json(path: str, data: Any) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def load_manifest(out_dir: str) -> dict[str, Any]:
    """Read a campaign directory's manifest."""
    path = os.path.join(out_dir, _MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise ScenarioError(
            f"{out_dir!r} has no campaign manifest ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"corrupt manifest {path!r}: {exc}") from exc
    if manifest.get("sampler_version") != SAMPLER_VERSION:
        raise ScenarioError(
            f"campaign was sampled by sampler v"
            f"{manifest.get('sampler_version')}, this build is v"
            f"{SAMPLER_VERSION}; re-run instead of resuming")
    return manifest


def run_campaign(out_dir: str, seed: int = 0, n: int = 100,
                 jobs: int = 1,
                 apps: Optional[Sequence[str]] = None,
                 resume: bool = False,
                 shrink: bool = True,
                 max_shrink_evals: int = 120,
                 progress: Optional[Callable[[str], None]] = None,
                 runner: Callable[..., list] = run_points
                 ) -> dict[str, Any]:
    """Run (or resume) a campaign; returns the summary dict.

    ``out_dir`` layout::

        campaign.json       manifest: seed, n, apps, sampler version
        points/point-*.json one checkpoint per completed scenario
        artifacts/*.yaml    one verified minimal repro per failure
        summary.json        the returned summary

    With ``resume=True`` the manifest's (seed, n, apps) override the
    arguments, so a resumed campaign always matches its original sample.
    """
    say = progress or (lambda _line: None)
    os.makedirs(out_dir, exist_ok=True)
    manifest_path = os.path.join(out_dir, _MANIFEST)
    if resume:
        manifest = load_manifest(out_dir)
        seed, n = manifest["seed"], manifest["n"]
        apps = manifest["apps"]
    else:
        if os.path.exists(manifest_path):
            old = load_manifest(out_dir)
            if (old["seed"], old["n"]) != (seed, n):
                raise ScenarioError(
                    f"{out_dir!r} already holds a different campaign "
                    f"(seed={old['seed']}, n={old['n']}); use a fresh "
                    "directory or pass resume")
        manifest = {"seed": int(seed), "n": int(n),
                    "apps": sorted(apps) if apps else None,
                    "sampler_version": SAMPLER_VERSION}
        _atomic_write_json(manifest_path, manifest)

    specs = sample_scenarios(seed, n, apps=apps)
    say(f"campaign: {len(specs)} scenarios (seed={seed})")
    points = [{"spec": spec.to_dict()} for spec in specs]
    outcomes = runner(_scenario_point, points, jobs=jobs,
                      checkpoint_dir=os.path.join(out_dir, "points"),
                      resume=resume)

    failures = [(index, specs[index], outcome)
                for index, outcome in enumerate(outcomes)
                if outcome["status"] != "ok"]
    say(f"campaign: {len(failures)} failing / {len(outcomes)} run")

    artifacts: list[dict[str, Any]] = []
    if shrink and failures:
        artifact_dir = os.path.join(out_dir, "artifacts")
        os.makedirs(artifact_dir, exist_ok=True)
        for index, spec, outcome in failures:
            result = shrink_scenario(spec, outcome,
                                     max_evals=max_shrink_evals)
            name = (f"fail-{index:04d}-{outcome['status']}-"
                    f"{(outcome['rule'] or 'none').replace(' ', '')}.yaml")
            path = os.path.join(artifact_dir, name)
            write_artifact(path, result)
            verdict = verify_artifact(path)
            say(f"  shrunk #{index} ({outcome['status']}/{outcome['rule']}) "
                f"in {result.evals} evals -> {name}"
                + ("" if verdict["ok"] else "  [VERIFY FAILED]"))
            artifacts.append({
                "index": index, "path": path,
                "status": outcome["status"], "rule": outcome["rule"],
                "evals": result.evals, "steps": result.steps,
                "verified": verdict["ok"],
                "problems": verdict["problems"],
            })

    summary = summarize_outcomes(manifest, outcomes, artifacts)
    _atomic_write_json(os.path.join(out_dir, "summary.json"), summary)
    return summary


def summarize_outcomes(manifest: dict, outcomes: list[dict],
                       artifacts: list[dict]) -> dict[str, Any]:
    """Aggregate outcome dicts into the campaign summary document.

    Shared by the local campaign runner and the serve API's campaign
    result endpoint, so a served campaign's report JSON has exactly the
    shape (and sort order) of a local ``summary.json``.
    """
    by_status: dict[str, int] = {}
    by_rule: dict[str, int] = {}
    by_app: dict[str, dict[str, int]] = {}
    for outcome in outcomes:
        status = outcome["status"]
        by_status[status] = by_status.get(status, 0) + 1
        if outcome.get("rule"):
            by_rule[outcome["rule"]] = by_rule.get(outcome["rule"], 0) + 1
        app = outcome["spec"]["app"]
        per = by_app.setdefault(app, {})
        per[status] = per.get(status, 0) + 1
    return {
        "manifest": manifest,
        "total": len(outcomes),
        "by_status": dict(sorted(by_status.items())),
        "by_rule": dict(sorted(by_rule.items())),
        "by_app": {a: dict(sorted(c.items()))
                   for a, c in sorted(by_app.items())},
        "failures": sum(count for status, count in by_status.items()
                        if status != "ok"),
        "artifacts": artifacts,
        "all_verified": all(a["verified"] for a in artifacts),
    }


def campaign_report(out_dir: str) -> dict[str, Any]:
    """Progress/summary of a campaign directory, finished or not.

    Reads only the manifest and the per-point checkpoints, so it works on
    a half-finished (or killed) campaign without running anything.
    """
    from ..bench.parallel import _PENDING, _PointStore
    manifest = load_manifest(out_dir)
    specs = sample_scenarios(manifest["seed"], manifest["n"],
                             apps=manifest["apps"])
    store = _PointStore(os.path.join(out_dir, "points"))
    done: list[dict] = []
    pending = 0
    for spec in specs:
        cached = store.load({"spec": spec.to_dict()})
        if cached is _PENDING:
            pending += 1
        else:
            done.append(cached)
    summary = summarize_outcomes(manifest, done, _load_artifact_index(out_dir))
    summary["pending"] = pending
    return summary


def _load_artifact_index(out_dir: str) -> list[dict]:
    path = os.path.join(out_dir, "summary.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh).get("artifacts", [])
    except (OSError, json.JSONDecodeError):
        return []


def render_report(summary: dict[str, Any]) -> str:
    """Human rendering of a campaign summary."""
    manifest = summary["manifest"]
    lines = [f"campaign seed={manifest['seed']} n={manifest['n']} "
             f"(sampler v{manifest['sampler_version']})",
             f"  run: {summary['total']}"
             + (f"  pending: {summary['pending']}"
                if summary.get("pending") else "")]
    for status, count in summary["by_status"].items():
        lines.append(f"  {status:10s} {count:5d}")
    if summary["by_rule"]:
        lines.append("  rules: " + ", ".join(
            f"{rule} x{count}" for rule, count in summary["by_rule"].items()))
    lines.append("  by app:")
    for app, counts in summary["by_app"].items():
        rendered = " ".join(f"{status}={count}"
                            for status, count in counts.items())
        lines.append(f"    {app:10s} {rendered}")
    for art in summary.get("artifacts", []):
        state = "verified" if art["verified"] else "VERIFY FAILED"
        lines.append(f"  artifact #{art['index']}: "
                     f"{art['status']}/{art['rule']} "
                     f"({art['evals']} evals, {state})")
        lines.append(f"    {art['path']}")
    return "\n".join(lines)
