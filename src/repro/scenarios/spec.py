"""Declarative scenario specs: one YAML document = one reproducible run.

A :class:`ScenarioSpec` composes everything that defines a chaos-campaign
run — which application proxy and mechanism, the cluster shape and
interconnect topology, the fault plan, the reliable-transport tuning, and
the background-traffic shape — plus the seeds that make the whole thing
replay byte-identically. Specs are eagerly validated at construction
(unknown apps, impossible mechanisms, malformed fault plans and traffic
shapes all fail before any simulation starts) and round-trip exactly
through ``to_dict``/``from_dict`` and YAML, which is what makes shrunken
failure artifacts self-contained: the YAML in the artifact *is* the
repro.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Optional

import yaml

from ..errors import (
    FaultPlanError,
    MpiError,
    ScenarioError,
    TopologyError,
    TrafficConfigError,
)
from ..faults.plan import FaultPlan
from ..faults.transport import TransportParams
from ..netsim.topology import ClusterSpec
from ..netsim.traffic import TrafficShape

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined chaos scenario.

    Everything a run needs is in the spec: the same spec always produces
    the same simulation (same event order, same state digests), so specs
    are both the campaign sampler's output and the shrinker's search
    space.
    """

    #: Registered application adapter name (see :mod:`repro.scenarios.apps`).
    app: str
    #: Communication mechanism, one of the app's supported set.
    mechanism: str
    #: Master seed: world RNG streams and the fault injector.
    seed: int = 0
    #: Cluster nodes (one MPI rank per node, as in the paper's runs).
    nodes: int = 2
    #: Threads per rank.
    threads: int = 2
    #: Interconnect topology name (``direct`` = legacy single-hop fabric).
    topology: str = "direct"
    #: Topology generator parameters (``k``, ``dims``, ...).
    topology_params: dict[str, Any] = field(default_factory=dict)
    #: App-specific size/iteration knobs (adapter defaults fill the rest).
    app_params: dict[str, Any] = field(default_factory=dict)
    #: Fault plan, or None for a lossless fabric.
    faults: Optional[FaultPlan] = None
    #: Reliable-transport tuning override (None = library defaults).
    transport: Optional[TransportParams] = None
    #: Background-traffic shape, or None for an idle fabric.
    traffic: Optional[TrafficShape] = None
    #: Seed of the background-flow planner and arrival processes.
    traffic_seed: int = 0
    #: Optional human-readable label (never affects execution).
    name: str = ""

    def __post_init__(self):
        from .apps import get_app  # late: apps imports this module
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ScenarioError(f"seed must be an int, got {self.seed!r}")
        if self.nodes < 1 or self.threads < 1:
            raise ScenarioError(
                f"nodes/threads must be positive, got nodes={self.nodes}, "
                f"threads={self.threads}")
        for which, value in (("faults", self.faults),
                             ("transport", self.transport),
                             ("traffic", self.traffic)):
            expected = {"faults": FaultPlan, "transport": TransportParams,
                        "traffic": TrafficShape}[which]
            if value is not None and not isinstance(value, expected):
                raise ScenarioError(
                    f"{which} must be a {expected.__name__} or None, got "
                    f"{type(value).__name__}")
        adapter = get_app(self.app)  # raises ScenarioError if unknown
        if self.mechanism not in adapter.mechanisms:
            raise ScenarioError(
                f"app {self.app!r} has no mechanism {self.mechanism!r}; "
                f"choose from {adapter.mechanisms}")
        try:
            # Builds (and discards) the topology graph: validates the
            # generator parameters and host capacity eagerly.
            ClusterSpec(nodes=self.nodes, threads_per_proc=self.threads,
                        topology=self.topology, **self.topology_params)
        except TopologyError as exc:
            raise ScenarioError(f"bad topology for scenario: {exc}") from exc
        adapter.validate(self)

    # -- construction ------------------------------------------------------
    def with_(self, **kwargs: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (fully re-validated)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human summary."""
        bits = [f"{self.app}/{self.mechanism}",
                f"{self.nodes}x{self.threads}", f"seed={self.seed}"]
        if self.topology != "direct":
            bits.append(self.topology)
        if self.faults is not None:
            bits.append(self.faults.describe())
        if self.traffic is not None:
            bits.append(f"bg:{self.traffic.kind}x{self.traffic.flows}")
        return " ".join(bits)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form; round-trips exactly through :meth:`from_dict`."""
        return {
            "app": self.app, "mechanism": self.mechanism, "seed": self.seed,
            "nodes": self.nodes, "threads": self.threads,
            "topology": self.topology,
            "topology_params": _plain(self.topology_params),
            "app_params": _plain(self.app_params),
            "faults": self.faults.to_dict() if self.faults else None,
            "transport": asdict(self.transport) if self.transport else None,
            "traffic": self.traffic.to_dict() if self.traffic else None,
            "traffic_seed": self.traffic_seed,
            "name": self.name,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ScenarioSpec":
        """Rebuild (and re-validate) a spec from its ``to_dict()`` form."""
        if not isinstance(data, dict):
            raise ScenarioError(
                f"scenario must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(ScenarioSpec)}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown scenario keys: {sorted(unknown)}")
        data = dict(data)
        try:
            if data.get("faults") is not None:
                data["faults"] = FaultPlan.from_dict(data["faults"])
            if data.get("transport") is not None:
                data["transport"] = TransportParams(**data["transport"])
            if data.get("traffic") is not None:
                data["traffic"] = TrafficShape.from_dict(data["traffic"])
        except (FaultPlanError, TrafficConfigError, TypeError) as exc:
            raise ScenarioError(f"bad scenario component: {exc}") from exc
        # YAML has no tuples: rehydrate list-valued topology params (torus
        # dims) into the tuples the generators expect.
        params = dict(data.get("topology_params") or {})
        for key, value in params.items():
            if isinstance(value, list):
                params[key] = tuple(value)
        data["topology_params"] = params
        data["app_params"] = dict(data.get("app_params") or {})
        try:
            return ScenarioSpec(**data)
        except MpiError:
            raise
        except TypeError as exc:
            raise ScenarioError(f"malformed scenario: {exc}") from exc

    def to_yaml(self) -> str:
        """The spec as a YAML document (stable key order)."""
        return yaml.safe_dump(self.to_dict(), sort_keys=True,
                              default_flow_style=False)

    @staticmethod
    def from_yaml(text: str) -> "ScenarioSpec":
        """Parse a spec from :meth:`to_yaml` output."""
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"unparseable scenario YAML: {exc}") from exc
        return ScenarioSpec.from_dict(data)

    def save(self, path: str) -> None:
        """Write the spec as a YAML file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_yaml())

    @staticmethod
    def load(path: str) -> "ScenarioSpec":
        """Read a spec from a YAML file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return ScenarioSpec.from_yaml(fh.read())
        except OSError as exc:
            raise ScenarioError(
                f"cannot read scenario file {path!r}: {exc}") from exc


def _plain(mapping: dict[str, Any]) -> dict[str, Any]:
    """Copy with numpy scalars and tuples reduced to YAML-native types."""
    out: dict[str, Any] = {}
    for key, value in mapping.items():
        if isinstance(value, tuple):
            value = list(value)
        elif hasattr(value, "item") and not isinstance(value, (str, bytes)):
            value = value.item()
        out[key] = value
    return out
