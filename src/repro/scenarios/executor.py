"""Scenario execution: one spec in, one classified outcome out.

``run_scenario`` wraps a driver run in the dynamic analyzer
(:mod:`repro.check`) and the snapshot recorder (:mod:`repro.snap`), then
reduces whatever happened to a small JSON-serializable *outcome* dict.
The outcome's ``(status, rule)`` pair is the failure *signature* the
shrinker preserves, and its ``digest`` is the end-of-run state digest that
makes replay verification byte-exact: two runs of the same spec must
produce byte-identical outcome dicts, digest included.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..check import CheckConfig, checking
from ..errors import CheckError, MpiError, ScenarioError, TransportError
from ..sim.core import SimulationError
from ..snap import SnapController, capture_state, recording, state_digest
from .apps import get_app
from .spec import ScenarioSpec

__all__ = ["run_scenario", "run_scenario_dict", "run_scenarios",
           "scenario_executor", "outcome_signature", "STATUSES"]

#: Every status an outcome can carry, healthiest first.
STATUSES = ("ok", "finding", "incorrect", "transport", "deadlock", "crash")

#: Snapshot cadence for campaign runs: one slice boundary per scenario at
#: most (scenarios are tiny); the recorder exists to collect the Worlds,
#: not to checkpoint densely.
_CAMPAIGN_INTERVAL = 200_000


def outcome_signature(outcome: dict[str, Any]) -> tuple[str, Optional[str]]:
    """The (status, rule) pair the shrinker must preserve."""
    return (outcome["status"], outcome.get("rule"))


def _first_line(exc: BaseException) -> str:
    text = str(exc) or type(exc).__name__
    return text.splitlines()[0][:240]


def run_scenario(spec: ScenarioSpec,
                 interval: int = _CAMPAIGN_INTERVAL,
                 digest: bool = True) -> dict[str, Any]:
    """Run one scenario under the analyzer + recorder; classify the result.

    Returns a plain-data outcome dict::

        {"status":   "ok" | "finding" | "incorrect" | "transport"
                     | "deadlock" | "crash",
         "rule":     None | "CHK###" | "data-mismatch" | exception name,
         "detail":   first line of the message (or ""),
         "checks":   {"CHK101": 2, ...},          # all analyzer hits
         "digest":   end-of-run state digest (None if uncapturable),
         "wall_time": simulated seconds (None unless the driver returned),
         "spec":     spec.to_dict()}

    Deterministic: the same spec yields a byte-identical dict. Statuses
    past ``ok`` are ordered by blame — an analyzer finding outranks
    nothing, but a crash/deadlock/transport failure outranks a finding
    recorded on the way down.
    """
    if not isinstance(spec, ScenarioSpec):
        raise ScenarioError(
            f"run_scenario needs a ScenarioSpec, got {type(spec).__name__}")
    adapter = get_app(spec.app)
    status: str = "ok"
    rule: Optional[str] = None
    detail = ""
    wall: Optional[float] = None
    with checking(CheckConfig(mode="warn", emit_warnings=False)) as session:
        with recording(SnapController(interval=interval)) as ctrl:
            try:
                result = adapter.run(spec)
                wall = getattr(result, "wall_time", None)
                if getattr(result, "correct", True) is False:
                    status, rule = "incorrect", "data-mismatch"
                    detail = "driver self-check reported wrong data"
            except TransportError as exc:
                status, rule, detail = ("transport", "TransportError",
                                        _first_line(exc))
            except CheckError as exc:
                status = "finding"
                rule = exc.violation.rule_id if getattr(
                    exc, "violation", None) else "CheckError"
                detail = _first_line(exc)
            except SimulationError as exc:
                status, rule, detail = ("deadlock", "SimulationError",
                                        _first_line(exc))
            except (MpiError, ArithmeticError, ValueError, KeyError,
                    IndexError, AssertionError, RuntimeError) as exc:
                status, rule, detail = ("crash", type(exc).__name__,
                                        _first_line(exc))
        report = session.report()
        checks = report.counts()
        if status == "ok" and not report.clean:
            # Analyzer findings only take the blame when the run itself
            # survived; otherwise they stay visible in ``checks``.
            status = "finding"
            rule = next(iter(sorted(checks)))
            detail = report.violations[0].describe()[:240]
        state_dig: Optional[str] = None
        if digest and ctrl.worlds:
            try:
                state_dig = state_digest(capture_state(ctrl.worlds[-1]))
            except MpiError as exc:
                detail = detail or f"digest failed: {_first_line(exc)}"
        session.close()
    return {
        "status": status,
        "rule": rule,
        "detail": detail,
        "checks": checks,
        "digest": state_dig,
        "wall_time": wall,
        "spec": spec.to_dict(),
    }


def run_scenario_dict(spec: dict) -> dict[str, Any]:
    """Run one scenario from its dict form; JSON-canonical outcome.

    The plain-data twin of :func:`run_scenario` used wherever outcomes
    cross a process or wire boundary (campaign checkpoints, the serve
    worker protocol): the returned dict is exactly what JSON storage or
    a socket frame would read back, so in-process, checkpointed and
    served executions of the same spec are byte-identical.
    """
    from ..bench.memo import json_roundtrip
    return json_roundtrip(run_scenario(ScenarioSpec.from_dict(spec)))


def _scenario_prefix(spec: dict) -> dict[str, Any]:
    """A scenario *is* its warm-up prefix: run it, return the outcome."""
    return run_scenario(ScenarioSpec.from_dict(spec))


def _scenario_tail(outcome: dict[str, Any]) -> dict[str, Any]:
    """No tail parameters: the prefix's outcome is the result."""
    return outcome


def _scenario_digest(outcome: dict[str, Any]) -> str:
    """Fingerprint = spec key + end-of-run digest.

    The spec key keeps two *different* scenarios distinct even when
    neither produced a capturable state digest (crash/deadlock runs
    would otherwise collide on a shared sentinel).
    """
    from ..bench.parallel import point_key
    return (point_key(outcome["spec"]) + "-"
            + (outcome.get("digest") or "none"))


def scenario_executor(cache_dir: Optional[str] = None):
    """The memoized scenario executor (same machinery as the Fig 1(a)
    sweep, :class:`repro.bench.memo.WarmPrefixExecutor`).

    Each spec is its own warm-up prefix, fingerprinted by the outcome's
    end-of-run state digest; with ``cache_dir`` set, a repeated campaign
    over the same specs re-simulates nothing — every outcome is served
    from the persistent result cache, and the cache self-invalidates on
    SNAP/STATE format version bumps.
    """
    from ..bench.memo import WarmPrefixExecutor
    return WarmPrefixExecutor(_scenario_prefix, _scenario_tail,
                              prefix_keys=("spec",), cache_dir=cache_dir,
                              digest_fn=_scenario_digest)


def run_scenarios(specs: Sequence[ScenarioSpec | dict],
                  cache_dir: Optional[str] = None,
                  stats: Optional["Any"] = None) -> list[dict[str, Any]]:
    """Run a batch of scenarios through the memoized executor.

    Returns outcome dicts in spec order, JSON-canonicalized (tuples in
    the spec read back as lists) so cold, warm-cache and forked runs are
    byte-identical to each other. Pass a
    :class:`repro.bench.memo.MemoStats` as ``stats`` to observe cache
    behaviour; ``stats.warmups_simulated == 0`` on a fully warm cache.
    """
    points = [{"spec": s.to_dict() if isinstance(s, ScenarioSpec) else s}
              for s in specs]
    return scenario_executor(cache_dir).run(points, stats=stats)
