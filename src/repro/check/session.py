"""Process-wide checker session: defaults and the live-checker registry.

Programs under ``python -m repro check <program>`` are ordinary scripts
that build their own :class:`~repro.runtime.world.World`; the CLI cannot
pass ``check=`` through them. Instead it installs a *session default*
here, and ``World(check=None)`` consults it. Every :class:`Checker`
registers itself on construction so the CLI (and the corpus tests) can
collect reports from all Worlds a program created, however many.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .checker import Checker, CheckConfig
    from .report import CheckReport

__all__ = ["checking", "default_check", "set_default_check",
           "register", "live_checkers", "collect_report"]

_default_config: Optional["CheckConfig"] = None
_live: list["Checker"] = []


def set_default_check(config: Optional["CheckConfig"]) -> None:
    """Install (or clear, with ``None``) the session-default CheckConfig."""
    global _default_config
    _default_config = config


def default_check() -> Optional["CheckConfig"]:
    """The CheckConfig a ``World(check=None)`` should adopt, if any."""
    return _default_config


def register(checker: "Checker") -> None:
    """Called by every Checker on construction."""
    _live.append(checker)


def live_checkers() -> list["Checker"]:
    return list(_live)


def collect_report(since: int = 0) -> "CheckReport":
    """Finalize and merge every checker registered at index >= ``since``."""
    from .report import CheckReport
    report = CheckReport([], mode=(_default_config.mode
                                   if _default_config else "warn"))
    for checker in _live[since:]:
        report = report.merge(checker.finalize())
    return report


class Session:
    """Handle returned by :func:`checking`: collects this block's reports."""

    def __init__(self, mark: int):
        self._mark = mark

    def report(self) -> "CheckReport":
        return collect_report(since=self._mark)

    def close(self) -> None:
        """Drop this block's checkers from the process-wide registry.

        Every Checker pins its Simulator (and through it the whole World)
        in ``_live`` forever; a campaign running thousands of scenarios in
        one process must release them. Call after the final
        :meth:`report` — closed sessions report empty. Safe to call more
        than once, and safe with nested sessions (an inner close only
        drops checkers registered at or after the inner mark).
        """
        del _live[self._mark:]


@contextmanager
def checking(config: Optional["CheckConfig"] = None) -> Iterator[Session]:
    """Enable checking-by-default for every World built in this block.

    >>> with checking(CheckConfig(mode="warn")) as session:
    ...     main()                      # builds Worlds with check=None
    >>> print(session.report().render())
    """
    from .checker import CheckConfig
    prev = _default_config
    set_default_check(config or CheckConfig())
    try:
        yield Session(mark=len(_live))
    finally:
        set_default_check(prev)
