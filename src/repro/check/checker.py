"""The dynamic correctness analyzer: hooks, state machines, verdicts.

One :class:`Checker` observes one :class:`~repro.sim.core.Simulator`. It is
installed by ``World(check=CheckConfig(...))`` as ``sim.checker`` and fed
by narrow hook sites in the kernel (task spawn/resume), the sync
primitives (lock, barrier, gate, mailbox), and the MPI layer
(channels, requests, partitioned protocol, RMA windows).

Design constraints, in order:

1. **Observer-only**: hooks never schedule events or charge simulated
   time, so a checked run's simulated timings are byte-identical to an
   unchecked run (tested). The only behavioural difference is opt-in:
   raise mode turns detections into :class:`~repro.errors.CheckError`.
2. **Zero-cost when off**: every hook site guards on
   ``sim.checker is not None``; with no checker the added work is one
   attribute load per site (benchmarked in ``benchmarks/bench_kernel.py``).
3. **Epoch-cheap when on**: per-object access checks use the FastTrack
   epoch shortcut (see :mod:`repro.check.hb`); full vector-clock
   snapshots happen only at release points.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import CheckError
from ..sim.core import AllOf, Process, Simulator
from .hb import Access, LockOrderGraph, TaskClock
from .report import CheckReport, CheckWarning, Violation

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.comm import Communicator
    from ..mpi.request import Request
    from ..sim.sync import Barrier, Gate, Lock, Mailbox

__all__ = ["CheckConfig", "Checker"]

#: Library-internal request kinds that persist by design and must not be
#: reported as leaks (the partitioned-init marker sits in the posted queue
#: for the lifetime of the persistent operation).
_INTERNAL_REQUEST_KINDS = frozenset({"precv-init"})

#: Cap on per-rule detail in the finalize leak scans.
_LEAK_DETAIL_LIMIT = 10


@dataclass(frozen=True)
class CheckConfig:
    """Configuration for the dynamic checker.

    ``mode="warn"`` records violations (and emits :class:`CheckWarning`)
    while letting the run continue on a safe path; ``mode="raise"`` turns
    the first detection into a :class:`~repro.errors.CheckError` inside
    the offending task. Rules marked *hard* in the catalog and the
    finalize-time scans (lock cycles, leaks) always only record.
    """

    mode: str = "warn"
    #: Happens-before race rules (CHK101, CHK102, CHK108).
    races: bool = True
    #: Lock-order cycle detection (CHK103).
    lock_order: bool = True
    #: MPI semantics state machines (CHK104-CHK107, CHK111).
    semantics: bool = True
    #: Finalize leak scans (CHK109, CHK110).
    leaks: bool = True
    #: Emit a Python ``CheckWarning`` per violation in warn mode.
    emit_warnings: bool = True
    #: Stop recording detail beyond this many violations (counts continue).
    max_violations: int = 10_000

    def __post_init__(self) -> None:
        if self.mode not in ("warn", "raise"):
            raise ValueError(f"check mode must be 'warn' or 'raise', "
                             f"got {self.mode!r}")


class Checker:
    """Dynamic analysis state for one simulator."""

    def __init__(self, sim: Simulator, config: Optional[CheckConfig] = None):
        self.sim = sim
        self.config = config or CheckConfig()
        self.violations: list[Violation] = []
        self.dropped = 0
        self._finalized = False
        #: Observer called with each :class:`Violation` as it is recorded
        #: (before warn/raise handling). Used by ``repro replay
        #: --to-finding`` to stop a recorded run at the exact step a rule
        #: fires; observers must not mutate checker or simulation state.
        self.on_violation: Optional[Callable[[Violation], None]] = None
        # -- happens-before state --------------------------------------
        self._tasks: dict[int, TaskClock] = {}
        self._lock_clocks: dict[int, dict[int, int]] = {}
        self._gate_clocks: dict[int, dict[int, int]] = {}
        self._barrier_pending: dict[int, dict[int, int]] = {}
        self._barrier_release: dict[int, dict[int, int]] = {}
        self._mailbox_clocks: dict[int, deque] = {}
        # -- lock-order graph ------------------------------------------
        self._lock_graph = LockOrderGraph()
        self._held: dict[int, list[tuple[int, str]]] = {}
        # -- channels (CHK102) -----------------------------------------
        self._channels: dict[tuple, Access] = {}
        # -- requests (CHK101, CHK109) ---------------------------------
        self._live_requests: dict[int, dict[str, Any]] = {}
        self._req_access: dict[int, Access] = {}
        self._req_joins: dict[int, dict[int, int]] = {}
        # -- RMA (CHK107, CHK108, CHK110) ------------------------------
        self._windows: list[Any] = []
        self._rma_epochs: dict[int, dict[str, Any]] = {}
        self._rma_last_write: dict[tuple, tuple[Access, int, int]] = {}
        self._rma_last_read: dict[tuple, tuple[Access, int, int]] = {}
        from . import session
        session.register(self)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def violation(self, rule_id: str, message: str, *,
                  task: Optional[str] = None, rank: Optional[int] = None,
                  vci: Optional[int] = None, hard: bool = False,
                  **extra: Any) -> Violation:
        """Record one violation; raise in raise mode (unless ``hard``).

        ``hard=True`` marks detections whose call site must raise its own
        library error regardless of mode (the simulation cannot continue
        safely), and finalize-time scans (there is no task to raise in).
        """
        st = self.sim._active_process
        v = Violation(rule_id, message, time=self.sim.now,
                      task=task or (st.name if st is not None else None),
                      rank=rank, vci=vci, extra=extra)
        if len(self.violations) < self.config.max_violations:
            self.violations.append(v)
        else:
            self.dropped += 1
        if self.on_violation is not None:
            self.on_violation(v)
        if hard:
            return v
        if self.config.mode == "raise":
            raise CheckError(v.describe(), violation=v)
        if self.config.emit_warnings:
            warnings.warn(v.describe(), CheckWarning, stacklevel=3)
        return v

    # ------------------------------------------------------------------
    # task / clock plumbing
    # ------------------------------------------------------------------
    def _task(self, proc: Process) -> TaskClock:
        st = self._tasks.get(proc._pid)
        if st is None:
            st = TaskClock(proc._pid, proc.name)
            self._tasks[proc._pid] = st
        return st

    def _active(self) -> Optional[TaskClock]:
        proc = self.sim._active_process
        if proc is None:
            return None
        return self._task(proc)

    def _snapshot(self) -> Optional[dict[int, int]]:
        st = self._active()
        return st.snapshot() if st is not None else None

    # -- kernel hooks ----------------------------------------------------
    def on_spawn(self, proc: Process) -> None:
        """A task was spawned: it inherits its spawner's clock."""
        parent = self.sim._active_process
        pstate = self._tasks.get(parent._pid) if parent is not None else None
        self._tasks[proc._pid] = TaskClock(proc._pid, proc.name,
                                           parent=pstate)

    def on_resume(self, proc: Process, trigger: Any) -> None:
        """A task resumed: joining a finished task merges its clock."""
        if isinstance(trigger, Process):
            other = self._tasks.get(trigger._pid)
            if other is not None:
                self._task(proc).join(other.clock)
        elif isinstance(trigger, AllOf):
            children = trigger._children
            if children:
                st = self._task(proc)
                for ev in children:
                    if isinstance(ev, Process):
                        other = self._tasks.get(ev._pid)
                        if other is not None:
                            st.join(other.clock)

    # -- sync-primitive hooks --------------------------------------------
    def lock_acquired(self, lock: "Lock") -> None:
        """Join the releaser's clock; record lock-order edges for held locks."""
        st = self._active()
        if st is None:
            return
        st.join(self._lock_clocks.get(id(lock)))
        if self.config.lock_order:
            held = self._held.setdefault(st.pid, [])
            lid = id(lock)
            for hid, hname in held:
                if hid != lid:
                    self._lock_graph.add(hid, hname, lid, lock.name,
                                         st.name, self.sim.now)
            held.append((lid, lock.name))

    def lock_released(self, lock: "Lock") -> None:
        """Publish this task's clock for the next acquirer; pop held state."""
        st = self._active()
        if st is None:
            return
        self._lock_clocks[id(lock)] = st.snapshot()
        held = self._held.get(st.pid)
        if held:
            lid = id(lock)
            for i in range(len(held) - 1, -1, -1):
                if held[i][0] == lid:
                    del held[i]
                    break

    def gate_opened(self, gate: "Gate") -> None:
        snap = self._snapshot()
        if snap is not None:
            self._gate_clocks[id(gate)] = snap

    def gate_passed(self, gate: "Gate") -> None:
        st = self._active()
        if st is not None:
            st.join(self._gate_clocks.get(id(gate)))

    def barrier_arrive(self, barrier: "Barrier") -> None:
        """Merge this arriver's clock into the barrier's pending snapshot."""
        snap = self._snapshot()
        if snap is None:
            return
        pending = self._barrier_pending.setdefault(id(barrier), {})
        for pid, c in snap.items():
            if pending.get(pid, 0) < c:
                pending[pid] = c

    def barrier_release(self, barrier: "Barrier") -> None:
        """Called by the last arriver: publish the merged clock."""
        self._barrier_release[id(barrier)] = \
            self._barrier_pending.pop(id(barrier), {})

    def barrier_depart(self, barrier: "Barrier") -> None:
        st = self._active()
        if st is not None:
            st.join(self._barrier_release.get(id(barrier)))

    def mailbox_put(self, mailbox: "Mailbox") -> None:
        # FIFO clock queue mirrors item order across both the queued and
        # the direct-handoff path; a put from a non-task context (NIC
        # callback) contributes an empty clock to keep the queues aligned.
        snap = self._snapshot()
        self._mailbox_clocks.setdefault(id(mailbox),
                                        deque()).append(snap or {})

    def mailbox_got(self, mailbox: "Mailbox") -> None:
        """Join the clock the matching put published (FIFO pairing)."""
        clocks = self._mailbox_clocks.get(id(mailbox))
        if not clocks:
            return
        clock = clocks.popleft()
        st = self._active()
        if st is not None:
            st.join(clock)

    def meet_arrive(self, meeting: Any) -> None:
        """Merge this participant's clock into the meeting's shared clock."""
        snap = self._snapshot()
        if snap is None:
            return
        if meeting.hb_clock is None:
            meeting.hb_clock = {}
        merged = meeting.hb_clock
        for pid, c in snap.items():
            if merged.get(pid, 0) < c:
                merged[pid] = c

    def meet_depart(self, meeting: Any) -> None:
        st = self._active()
        if st is not None:
            st.join(meeting.hb_clock)

    # ------------------------------------------------------------------
    # point-to-point channels (CHK102, CHK104 context)
    # ------------------------------------------------------------------
    def on_channel_send(self, comm: "Communicator", dest: int, tag: int,
                        context_id: int) -> Optional[dict[int, int]]:
        """A send is being posted; returns the sender clock snapshot to
        ride in the message meta (for the receive-completion join)."""
        st = self._active()
        if st is None:
            return None
        if self.config.races and not comm.hints.allow_overtaking:
            key = ("s", context_id, comm.rank, dest, tag)
            self._channel_access(key, st, comm, tag, dest, "send")
        return st.snapshot()

    def on_channel_recv(self, comm: "Communicator", source: int, tag: int,
                        context_id: int, vci: Optional[int] = None) -> None:
        """Record a posted-receive channel access (CHK102 collision check)."""
        st = self._active()
        if st is None or not self.config.races:
            return
        if comm.hints.allow_overtaking:
            return
        key = ("r", context_id, comm.rank, source, tag)
        self._channel_access(key, st, comm, tag, source, "recv", vci=vci)

    def _channel_access(self, key: tuple, st: TaskClock,
                        comm: "Communicator", tag: int, peer: int,
                        direction: str, vci: Optional[int] = None) -> None:
        last = self._channels.get(key)
        if last is not None and last.pid != st.pid and not st.saw(last):
            self.violation(
                "CHK102",
                f"tasks {last.task!r} and {st.name!r} both {direction} on "
                f"channel (comm {comm.name!r} ctx={key[1]}, tag={tag}, "
                f"peer={peer}) with no ordering edge between them — "
                f"message order on this channel is undefined",
                rank=comm.lib.rank, vci=vci, comm=comm.name, tag=tag,
                peer=peer, other_task=last.task)
        self._channels[key] = st.access(self.sim.now)

    # ------------------------------------------------------------------
    # requests (CHK101, CHK109)
    # ------------------------------------------------------------------
    def on_request_new(self, req: "Request") -> None:
        if req.kind in _INTERNAL_REQUEST_KINDS:
            return
        st = self._active()
        self._live_requests[req.rid] = {
            "kind": req.kind, "time": self.sim.now,
            "task": st.name if st is not None else None,
        }

    def on_msg_join(self, req: "Request", hb: dict[int, int]) -> None:
        """The message completing ``req`` carried the sender's clock."""
        j = self._req_joins.get(req.rid)
        if j is None:
            self._req_joins[req.rid] = dict(hb)
        else:
            for pid, c in hb.items():
                if j.get(pid, 0) < c:
                    j[pid] = c

    def on_request_complete(self, req: "Request") -> None:
        self._live_requests.pop(req.rid, None)
        st = self._active()
        if st is not None:
            self.on_msg_join(req, st.snapshot())

    def on_request_access(self, req: "Request") -> None:
        """wait/test/cancel entered on ``req`` by the active task."""
        st = self._active()
        if st is None:
            return
        if self.config.races and req.kind not in _INTERNAL_REQUEST_KINDS:
            last = self._req_access.get(req.rid)
            if last is not None and last.pid != st.pid and not st.saw(last):
                self.violation(
                    "CHK101",
                    f"tasks {last.task!r} and {st.name!r} both wait/test "
                    f"request #{req.rid} ({req.kind}) with no "
                    f"happens-before edge; MPI forbids concurrent "
                    f"completion calls on one request",
                    vci=req.vci.index if req.vci is not None else None,
                    rid=req.rid, other_task=last.task)
            self._req_access[req.rid] = st.access(self.sim.now)

    def on_request_join(self, req: "Request") -> None:
        """``req`` observed complete: join the completion-side clock."""
        st = self._active()
        if st is not None:
            st.join(self._req_joins.get(req.rid))

    # ------------------------------------------------------------------
    # RMA (CHK107, CHK108, CHK110)
    # ------------------------------------------------------------------
    def register_window(self, win: Any) -> None:
        self._windows.append(win)

    def _epoch_state(self, win: Any) -> dict[str, Any]:
        st = self._rma_epochs.get(id(win))
        if st is None:
            st = {"locked": set(), "used": False}
            self._rma_epochs[id(win)] = st
        return st

    def on_rma_sync(self, win: Any, op: str, target: Optional[int]) -> None:
        """Track lock/unlock epoch transitions on a window (CHK107)."""
        if not self.config.semantics:
            return
        ep = self._epoch_state(win)
        locked: set = ep["locked"]
        token = "all" if target is None else target
        if op == "lock":
            ep["used"] = True
            if token in locked:
                self.violation(
                    "CHK107",
                    f"double Lock of target {token} on window "
                    f"{win.win_id} (epoch already open)",
                    rank=win.comm.lib.rank, win=win.win_id, target=target)
            else:
                locked.add(token)
        elif op == "unlock":
            if token not in locked:
                self.violation(
                    "CHK107",
                    f"Unlock of target {token} on window {win.win_id} "
                    f"without a matching Lock",
                    rank=win.comm.lib.rank, win=win.win_id, target=target)
            else:
                locked.discard(token)

    def on_rma_op(self, win: Any, op: str, target: int, disp: int,
                  count: int, *, atomic: bool, write: bool) -> None:
        """Check epoch discipline (CHK107) and overlapping-range races (CHK108)."""
        ep = self._epoch_state(win)
        if self.config.semantics and ep["used"] and \
                target not in ep["locked"] and "all" not in ep["locked"]:
            # Mixed discipline: this handle opens explicit epochs but
            # issued an operation outside any. Flush-only handles (the
            # paper's NWChem pattern) never set "used" and are exempt.
            self.violation(
                "CHK107",
                f"{op} to target {target} outside any epoch on window "
                f"{win.win_id}, which elsewhere uses explicit Lock/Unlock "
                f"epochs",
                rank=win.comm.lib.rank, win=win.win_id, target=target)
        if not self.config.races or atomic:
            return
        st = self._active()
        if st is None:
            return
        key = (id(win), target)
        lo, hi = disp, disp + count
        conflict = self._rma_last_write.get(key)
        if write and conflict is None:
            conflict = self._rma_last_read.get(key)
        if conflict is not None:
            last, llo, lhi = conflict
            if last.pid != st.pid and llo < hi and lo < lhi \
                    and not st.saw(last):
                self.violation(
                    "CHK108",
                    f"nonatomic {op} to window {win.win_id} target "
                    f"{target} [{lo}, {hi}) conflicts with task "
                    f"{last.task!r}'s access [{llo}, {lhi}) — no "
                    f"happens-before edge between them",
                    rank=win.comm.lib.rank, win=win.win_id, target=target,
                    other_task=last.task)
        rec = (st.access(self.sim.now), lo, hi)
        if write:
            self._rma_last_write[key] = rec
        else:
            self._rma_last_read[key] = rec

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self) -> CheckReport:
        """Run the end-of-run scans and return the report (idempotent)."""
        if not self._finalized:
            self._finalized = True
            if self.config.lock_order:
                self._scan_lock_cycles()
            if self.config.leaks:
                self._scan_request_leaks()
                self._scan_window_leaks()
        return CheckReport(self.violations, mode=self.config.mode)

    @property
    def report(self) -> CheckReport:
        return self.finalize()

    def _scan_lock_cycles(self) -> None:
        for cycle in self._lock_graph.cycles():
            self.violation(
                "CHK103",
                "lock acquisition order forms a cycle (potential "
                "deadlock): " + self._lock_graph.describe_cycle(cycle),
                hard=True, edges=len(cycle))

    def _scan_request_leaks(self) -> None:
        leaked = sorted(self._live_requests.items())
        for rid, info in leaked[:_LEAK_DETAIL_LIMIT]:
            self.violation(
                "CHK109",
                f"request #{rid} ({info['kind']}, created at "
                f"t={info['time']:.9f} by {info['task']!r}) never "
                f"completed before finalize",
                hard=True, rid=rid, kind=info["kind"])
        if len(leaked) > _LEAK_DETAIL_LIMIT:
            self.violation(
                "CHK109",
                f"... and {len(leaked) - _LEAK_DETAIL_LIMIT} more leaked "
                f"request(s)",
                hard=True, count=len(leaked) - _LEAK_DETAIL_LIMIT)

    def _scan_window_leaks(self) -> None:
        for win in self._windows:
            pending = {t: n for t, n in win._outstanding.items() if n}
            if pending:
                total = sum(pending.values())
                self.violation(
                    "CHK110",
                    f"window {win.win_id} (rank {win.comm.rank}) has "
                    f"{total} unflushed operation(s) to target(s) "
                    f"{sorted(pending)} at finalize",
                    hard=True, rank=win.comm.lib.rank, win=win.win_id,
                    outstanding=total)
