"""repro.check: an MPI+threads correctness analyzer for the simulator.

Two sides, one rule catalog (:mod:`repro.check.rules`):

- **dynamic** — enable with ``World(check=CheckConfig(...))`` (or wrap a
  whole program with ``python -m repro check program.py``). A
  vector-clock happens-before engine, a lock-order graph and an MPI
  semantics validator observe the simulated run and report races on
  shared MPI objects, potential deadlocks, hint violations, partitioned
  and RMA protocol errors, and leaked resources — with rank/VCI/simulated
  time context. Observer-only: simulated timings are byte-identical with
  the checker on or off.
- **static** — ``python -m repro analyze program.py`` runs the
  interprocedural analyzer (:mod:`repro.check.static_`) over a driver's
  AST without executing it: race/lifecycle/collective rules S301-S312
  (the static twins of the CHK catalog) plus the VCI-mappability
  advisor (S313-S315). ``python -m repro lint`` runs the repository's
  own AST lint (host nondeterminism in simulated paths, raw
  trace-category strings, hygiene rules).

See ``docs/checking.md`` and ``docs/static-analysis.md`` for the rule
catalogs and suppression syntax.
"""

from __future__ import annotations

from .checker import CheckConfig, Checker
from .lint import Finding, run_lint
from .report import CheckReport, CheckWarning, Violation
from .rules import ALL_RULES, CHK_EQUIVALENT, DYNAMIC_RULES, LINT_RULES, \
    STATIC_FOR_DYNAMIC, STATIC_RULES, Rule, rule
from .session import checking, collect_report, default_check, \
    set_default_check
from .static_ import StaticFinding, StaticReport, analyze_path, \
    analyze_paths, analyze_source, to_sarif

__all__ = [
    "CheckConfig",
    "Checker",
    "CheckReport",
    "CheckWarning",
    "Violation",
    "Rule",
    "rule",
    "ALL_RULES",
    "DYNAMIC_RULES",
    "LINT_RULES",
    "STATIC_RULES",
    "CHK_EQUIVALENT",
    "STATIC_FOR_DYNAMIC",
    "Finding",
    "run_lint",
    "StaticFinding",
    "StaticReport",
    "analyze_path",
    "analyze_paths",
    "analyze_source",
    "to_sarif",
    "checking",
    "collect_report",
    "default_check",
    "set_default_check",
]
