"""repro.check: an MPI+threads correctness analyzer for the simulator.

Two sides, one rule catalog (:mod:`repro.check.rules`):

- **dynamic** — enable with ``World(check=CheckConfig(...))`` (or wrap a
  whole program with ``python -m repro check program.py``). A
  vector-clock happens-before engine, a lock-order graph and an MPI
  semantics validator observe the simulated run and report races on
  shared MPI objects, potential deadlocks, hint violations, partitioned
  and RMA protocol errors, and leaked resources — with rank/VCI/simulated
  time context. Observer-only: simulated timings are byte-identical with
  the checker on or off.
- **static** — ``python -m repro lint`` runs the repository's own AST
  lint (host nondeterminism in simulated paths, raw trace-category
  strings, hygiene rules).

See ``docs/checking.md`` for the rule catalog and suppression syntax.
"""

from __future__ import annotations

from .checker import CheckConfig, Checker
from .lint import Finding, run_lint
from .report import CheckReport, CheckWarning, Violation
from .rules import ALL_RULES, DYNAMIC_RULES, LINT_RULES, Rule, rule
from .session import checking, collect_report, default_check, \
    set_default_check

__all__ = [
    "CheckConfig",
    "Checker",
    "CheckReport",
    "CheckWarning",
    "Violation",
    "Rule",
    "rule",
    "ALL_RULES",
    "DYNAMIC_RULES",
    "LINT_RULES",
    "Finding",
    "run_lint",
    "checking",
    "collect_report",
    "default_check",
    "set_default_check",
]
