"""Violations and the CheckReport (text + JSON rendering).

Companion to :mod:`repro.faults.report`: where that module answers "what
went wrong on the wire", this one answers "what did the application do
that MPI's contract forbids". The same report object backs the
``python -m repro check`` CLI, `World.check_report()` and the test suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from .rules import rule

__all__ = ["Violation", "CheckReport", "CheckWarning"]


class CheckWarning(UserWarning):
    """Python warning emitted for each violation in warn mode."""


@dataclass(frozen=True)
class Violation:
    """One detected correctness violation, with simulation context."""

    rule_id: str
    message: str
    #: Simulated time of detection in seconds (finalize-scan violations
    #: carry the end-of-run time).
    time: float = 0.0
    #: Name of the simulated task that triggered the detection, if any.
    task: Optional[str] = None
    rank: Optional[int] = None
    vci: Optional[int] = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def rule_name(self) -> str:
        return rule(self.rule_id).name

    def describe(self) -> str:
        """One-line human rendering used by reports and exceptions."""
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.vci is not None:
            where.append(f"vci {self.vci}")
        if self.task:
            where.append(f"task {self.task!r}")
        ctx = ", ".join(where)
        loc = f" [{ctx}]" if ctx else ""
        return (f"{self.rule_id} ({self.rule_name}) at t={self.time:.9f}"
                f"{loc}: {self.message}")

    def to_dict(self) -> dict[str, Any]:
        """Serialize the violation for the JSON report."""
        d: dict[str, Any] = {
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
            "time": self.time,
        }
        if self.task is not None:
            d["task"] = self.task
        if self.rank is not None:
            d["rank"] = self.rank
        if self.vci is not None:
            d["vci"] = self.vci
        if self.extra:
            d["extra"] = dict(self.extra)
        return d


class CheckReport:
    """Aggregated result of one checked run (or several merged runs)."""

    def __init__(self, violations: list[Violation], mode: str = "warn",
                 finalized: bool = True):
        self.violations = list(violations)
        self.mode = mode
        self.finalized = finalized

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violation count per rule id, sorted by id."""
        out: dict[str, int] = {}
        for v in sorted(self.violations, key=lambda v: v.rule_id):
            out[v.rule_id] = out.get(v.rule_id, 0) + 1
        return out

    def by_rule(self, rule_id: str) -> list[Violation]:
        return [v for v in self.violations if v.rule_id == rule_id]

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Combine two reports (used by the CLI across several Worlds)."""
        return CheckReport(self.violations + other.violations,
                           mode=self.mode,
                           finalized=self.finalized and other.finalized)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "mode": self.mode,
            "clean": self.clean,
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, limit: int = 50) -> str:
        """Plain-text report in the house style of the faults report."""
        if self.clean:
            return "== check ==\nno violations detected"
        lines = [f"== check: {len(self.violations)} violation(s) =="]
        for rid, n in self.counts().items():
            lines.append(f"  {rid} ({rule(rid).name}): {n}")
        lines.append("")
        for v in self.violations[:limit]:
            lines.append("  " + v.describe())
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CheckReport {len(self.violations)} violation(s) "
                f"mode={self.mode}>")
